//! The paper's abstract-level claims, asserted end to end:
//! "Combined, WaveCore and MBS reduce DRAM traffic by 75%, improve
//! performance by 53%, and save 26% system energy for modern deep CNN
//! training compared to conventional training mechanisms and accelerators."

use mbs::core::{ExecConfig, HardwareConfig};
use mbs::wavecore::WaveCore;

/// Geometric-mean helper.
fn gmean(values: &[f64]) -> f64 {
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[test]
fn abstract_headline_numbers() {
    let wc = WaveCore::new(HardwareConfig::default());
    let deep: Vec<_> = mbs::cnn::networks::evaluation_suite()
        .into_iter()
        .filter(|n| n.name() != "AlexNet")
        .collect();

    let mut traffic_reduction = Vec::new();
    let mut speedup = Vec::new();
    let mut energy_saving = Vec::new();
    for net in &deep {
        let base = wc.simulate(net, ExecConfig::Baseline);
        let mbs2 = wc.simulate(net, ExecConfig::Mbs2);
        traffic_reduction.push(1.0 - mbs2.dram_bytes as f64 / base.dram_bytes as f64);
        speedup.push(base.time_s / mbs2.time_s);
        energy_saving.push(1.0 - mbs2.energy_j() / base.energy_j());
    }

    // Paper: ~75% traffic reduction (4.0x), ~53% performance improvement,
    // ~26% energy saving, averaged over the deep CNNs.
    let t = traffic_reduction.iter().sum::<f64>() / traffic_reduction.len() as f64;
    assert!((0.60..0.85).contains(&t), "mean traffic reduction {t}");

    let s = gmean(&speedup);
    assert!((1.35..2.3).contains(&s), "gmean speedup {s}");

    let e = energy_saving.iter().sum::<f64>() / energy_saving.len() as f64;
    assert!((0.18..0.50).contains(&e), "mean energy saving {e}");
}

#[test]
fn per_network_bands_from_section1() {
    // §1: "MBS saves DRAM accesses by 78%, 71%, 74%, improves training
    // performance by 66%, 36%, 40% ... for ResNet50, Inception v3 and v4".
    let wc = WaveCore::new(HardwareConfig::default());
    let cases = [
        ("ResNet50", 0.78, 0.66),
        ("InceptionV3", 0.71, 0.36),
        ("InceptionV4", 0.74, 0.40),
    ];
    for (name, paper_traffic, paper_speedup) in cases {
        let net = mbs::cnn::networks::evaluation_suite()
            .into_iter()
            .find(|n| n.name() == name)
            .expect("network in suite");
        let base = wc.simulate(&net, ExecConfig::ArchOpt);
        let mbs2 = wc.simulate(&net, ExecConfig::Mbs2);
        let traffic = 1.0 - mbs2.dram_bytes as f64 / base.dram_bytes as f64;
        let speed = base.time_s / mbs2.time_s - 1.0;
        // Shape check: within +-0.15 absolute of the paper's reductions and
        // the speedup at least the same sign/regime.
        assert!(
            (traffic - paper_traffic).abs() < 0.15,
            "{name}: traffic reduction {traffic} vs paper {paper_traffic}"
        );
        assert!(
            speed > paper_speedup * 0.5,
            "{name}: speedup gain {speed} vs paper {paper_speedup}"
        );
    }
}

#[test]
fn lpddr4_viability_claim() {
    // §1: "even with 60% less memory bandwidth, training performance is
    // still 24% above the baseline design" (LPDDR4 vs HBM2-baseline).
    use mbs::core::MemoryKind;
    let net = mbs::cnn::networks::resnet(50);
    let base_hbm = WaveCore::new(HardwareConfig::default()).simulate(&net, ExecConfig::Baseline);
    let mbs_lp = WaveCore::new(HardwareConfig::default().with_memory(MemoryKind::Lpddr4))
        .simulate(&net, ExecConfig::Mbs2);
    let gain = base_hbm.time_s / mbs_lp.time_s - 1.0;
    assert!(gain > 0.2, "LPDDR4+MBS2 vs HBM2 baseline gain {gain}");
}
