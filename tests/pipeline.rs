//! End-to-end integration: network IR → MBS schedule → traffic model →
//! WaveCore simulation, checking cross-crate coherence.

use mbs::cnn::networks::{resnet, toy};
use mbs::core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
use mbs::wavecore::WaveCore;

#[test]
fn schedule_traffic_and_simulation_agree_on_bytes() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    for cfg in ExecConfig::all() {
        let schedule = MbsScheduler::new(&net, &hw, cfg).schedule();
        let traffic = analyze(&net, &schedule, hw.global_buffer_bytes);
        let report = WaveCore::new(hw).simulate_scheduled(&net, &schedule);
        // The simulator reports chip-level bytes = cores x per-core bytes.
        assert_eq!(
            report.dram_bytes,
            traffic.dram_bytes() * hw.cores as u64,
            "{cfg}"
        );
    }
}

#[test]
fn every_network_simulates_under_every_config() {
    let hw = HardwareConfig::default();
    let wc = WaveCore::new(hw);
    for net in mbs::cnn::networks::evaluation_suite() {
        for cfg in ExecConfig::all() {
            let r = wc.simulate(&net, cfg);
            assert!(r.time_s > 0.0, "{} {cfg}", net.name());
            assert!(r.energy_j() > 0.0, "{} {cfg}", net.name());
            assert!(r.dram_bytes > 0, "{} {cfg}", net.name());
            assert!(
                (0.0..=1.0).contains(&r.utilization),
                "{} {cfg}: {}",
                net.name(),
                r.utilization
            );
        }
    }
}

#[test]
fn layer_records_cover_every_layer_of_every_network() {
    let hw = HardwareConfig::default();
    for net in mbs::cnn::networks::evaluation_suite() {
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
        let traffic = analyze(&net, &schedule, hw.global_buffer_bytes);
        assert_eq!(traffic.layers.len(), net.layers().count(), "{}", net.name());
    }
}

#[test]
fn traffic_reports_serialize_to_json() {
    let net = toy::tiny_resnet(1, 8);
    let hw = HardwareConfig::default();
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    let traffic = analyze(&net, &schedule, hw.global_buffer_bytes);
    let json = serde_json::to_string(&traffic).expect("serialize");
    let back: mbs::core::TrafficReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.dram_bytes(), traffic.dram_bytes());

    let report = WaveCore::new(hw).simulate_scheduled(&net, &schedule);
    let json = serde_json::to_string(&report).expect("serialize");
    let back: mbs::wavecore::StepReport = serde_json::from_str(&json).expect("deserialize");
    assert!((back.time_s - report.time_s).abs() < 1e-15);
}

#[test]
fn bigger_buffers_never_hurt_mbs() {
    let net = resnet(50);
    let mut last = u64::MAX;
    for mib in [5usize, 10, 20, 40] {
        let hw = HardwareConfig::default().with_global_buffer(mib * 1024 * 1024);
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
        let t = analyze(&net, &s, hw.global_buffer_bytes).dram_bytes();
        assert!(t <= last, "{mib} MiB: {t} > {last}");
        last = t;
    }
}

#[test]
fn group_count_shrinks_as_buffer_grows() {
    let net = resnet(50);
    let small = HardwareConfig::default().with_global_buffer(5 * 1024 * 1024);
    let large = HardwareConfig::default().with_global_buffer(64 * 1024 * 1024);
    let gs = MbsScheduler::new(&net, &small, ExecConfig::Mbs2).schedule();
    let gl = MbsScheduler::new(&net, &large, ExecConfig::Mbs2).schedule();
    // With a big enough buffer everything collapses toward fewer, larger
    // sub-batch groups.
    assert!(gl.groups().len() <= gs.groups().len());
    assert!(
        gl.groups().iter().map(|g| g.sub_batch).max()
            >= gs.groups().iter().map(|g| g.sub_batch).max()
    );
}
