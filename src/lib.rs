//! # MBS: Mini-batch Serialization for CNN training
//!
//! A Rust reproduction of *“Mini-batch Serialization: CNN Training with
//! Inter-layer Data Reuse”* (Lym et al., MLSys 2019): the MBS scheduling
//! algorithm, a byte-exact CNN-training DRAM-traffic model, the WaveCore
//! systolic-array accelerator simulator, and a from-scratch CPU training
//! substrate demonstrating GN+MBS training equivalence.
//!
//! This facade crate re-exports the workspace crates:
//!
//! - [`cnn`] — network IR + zoo (ResNet, Inception v3/v4, AlexNet),
//! - [`core`] — the MBS scheduler and traffic model,
//! - [`wavecore`] — the accelerator simulator (timing/energy/utilization),
//! - [`tensor`] — dense f32 tensor ops (GEMM, im2col convolution),
//! - [`train`] — the training substrate (BN/GN, MBS serialized executor),
//! - [`serve`] — the dynamic-batching inference front-end (frozen model
//!   handles, cache-budget batch sizing, thread-per-core request loop,
//!   priority admission control with deadline shedding, panic-supervised
//!   workers, and validated hot model swap).
//!
//! # Quickstart
//!
//! ```
//! use mbs::cnn::networks::resnet;
//! use mbs::core::{ExecConfig, HardwareConfig, MbsScheduler};
//!
//! let net = resnet(50);
//! let hw = HardwareConfig::default();
//! let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
//! assert!(schedule.groups().len() >= 1);
//! ```

pub use mbs_cnn as cnn;
pub use mbs_core as core;
pub use mbs_serve as serve;
pub use mbs_tensor as tensor;
pub use mbs_train as train;
pub use mbs_wavecore as wavecore;
