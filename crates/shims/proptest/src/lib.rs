//! Offline stand-in for `proptest`: seeded random-input property testing
//! with the API subset the MBS test suites use.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with its generated inputs via
//!   the normal assertion message; inputs are reproducible because every
//!   case's RNG is seeded from the test name and case index.
//! - Strategies are plain generator objects ([`Strategy::generate`]); there
//!   is no value tree.
//! - `PROPTEST_CASES` overrides the per-test case count, as upstream.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one `(test, case)` pair — stable across runs and platforms.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0100_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }

    /// Raw 64-bit word (for custom strategies).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Test-runner configuration (subset of `proptest::test_runner`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize, f32, f64);

// Tuple strategies (upstream implements these up to 12 elements; the
// suites here need a few).
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifiers accepted by [`vec()`](vec()): a fixed `usize` or
    /// a half-open `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy with a fixed or ranged length.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Skips the current case when its precondition fails (moves on to the
/// next generated input rather than rejecting globally, which is enough
/// for the low rejection rates the suites have).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.resolved_cases() {
                    let mut __rng =
                        $crate::TestRng::deterministic(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.5f32..1.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(0u32..10, 2usize..5),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            let _: bool = b;
        }

        #[test]
        fn prop_map_applies(doubled in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = TestRng::deterministic("t", 3).next_u64();
        let b = TestRng::deterministic("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, TestRng::deterministic("t", 4).next_u64());
    }
}
