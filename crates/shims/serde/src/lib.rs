//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace carries a
//! small serialization framework under the `serde` package name: a JSON-ish
//! [`Value`] tree, [`Serialize`]/[`Deserialize`] traits mapping types to and
//! from it, and derive macros (re-exported from the sibling `serde_derive`
//! shim) for structs with named fields and enums with unit, newtype, tuple,
//! and struct variants — exactly the shapes the MBS crates declare.
//!
//! The wire format (produced by the `serde_json` shim) matches serde's
//! defaults for those shapes: structs are objects, unit enum variants are
//! strings, data-carrying variants are externally tagged single-key
//! objects. Attribute-driven customization (`#[serde(...)]`) is not
//! supported.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (kept exact so `u64` counters round-trip).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

/// Shared null used as the fallback for absent object fields.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's fields, yielding `Null` when absent so
/// `Option` fields deserialize to `None`.
pub fn obj_get<'a>(fields: &'a [(String, Value)], key: &str) -> &'a Value {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Externally-tagged enum accessor: a single-key object yields
/// `(tag, payload)`.
pub fn variant(v: &Value) -> Option<(&str, &Value)> {
    match v {
        Value::Obj(fields) if fields.len() == 1 => Some((fields[0].0.as_str(), &fields[0].1)),
        _ => None,
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// An error carrying a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting shape mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(i) => *i,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_arr().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_value(arr.get($n).unwrap_or(&NULL))?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for stable output (HashMap order is nondeterministic).
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).to_value(), Value::Int(3));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::Int(3)).unwrap(), Some(3));
    }

    #[test]
    fn obj_get_falls_back_to_null() {
        let fields = vec![("a".to_string(), Value::Bool(true))];
        assert_eq!(obj_get(&fields, "a"), &Value::Bool(true));
        assert_eq!(obj_get(&fields, "missing"), &Value::Null);
    }

    #[test]
    fn u64_values_stay_exact() {
        let big = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), big);
    }
}
