//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace ships a minimal, API-compatible subset of `rand` covering
//! exactly what the MBS crates use: a seedable `StdRng`, `gen_range` over
//! integer and float ranges, and slice shuffling. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across platforms,
//! which is all the training substrate needs (seeded init, seeded data).
//!
//! It is **not** the real `rand` crate: streams differ from upstream
//! `StdRng`, and only the listed APIs exist. Swap the path dependency for
//! the crates.io package if the environment ever gains registry access.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (generic over the element type so
/// unsuffixed literals infer from the call site, as with the real crate).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = match ((hi - lo) as u64).checked_add(1) {
                    // Full-width range: every word is a valid sample.
                    None => return rng.next_u64() as $t,
                    Some(span) => span,
                };
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 24 mantissa bits so `unit` is exact and strictly below 1.
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's raw xoshiro256++ state, for exact
        /// serialization (checkpointing). Restoring the returned words
        /// with [`StdRng::from_state`] continues the stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state previously captured with
        /// [`StdRng::state`]. The stream continues exactly where the
        /// captured generator left off.
        ///
        /// An all-zero state is the xoshiro fixed point (the stream would
        /// be all zeros forever), so it is replaced by the seed-0
        /// expansion — [`super::SeedableRng::seed_from_u64`] never
        /// produces it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle, deterministic in the generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _ = a.gen_range(0usize..100);
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut z = StdRng::from_state([0; 4]);
        // The fixed-point state would emit zeros forever; the guard
        // substitutes a live generator instead.
        let draws: Vec<u64> = (0..4).map(|_| z.gen_range(0u64..=u64::MAX)).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
