//! Offline stand-in for `criterion`: wall-clock micro-benchmark harness
//! with the subset of the API the MBS bench crate uses (`bench_function`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! Two environment knobs:
//!
//! - `MBS_BENCH_QUICK=1` — short warmup/measurement windows so the whole
//!   suite finishes in seconds (used by CI and the `bench` bin).
//! - `MBS_BENCH_JSON=<path>` — append every measurement to a JSON report
//!   when the harness finishes.
//!
//! Statistics are deliberately simple (mean over a fixed time window plus
//! min); there is no outlier rejection or regression analysis.

use std::time::{Duration, Instant};

use serde::Serialize;

/// One recorded measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Full benchmark id (`group/function/param`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Benchmark-id pair, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Re-export of the standard opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
pub struct Criterion {
    quick: bool,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("MBS_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        Self {
            quick,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// A harness with explicitly chosen quick/full mode (bypasses the env
    /// knob; used by the `bench` bin).
    pub fn with_quick(quick: bool) -> Self {
        Self {
            quick,
            results: Vec::new(),
        }
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.quick);
        f(&mut bencher);
        self.record(name.to_string(), &bencher);
        self
    }

    /// Opens a named group; ids inside the group are prefixed with its name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints a summary table and honors `MBS_BENCH_JSON`.
    pub fn final_summary(&self) {
        for m in &self.results {
            println!(
                "{:<48} mean {:>12.1} ns   min {:>12.1} ns   ({} iters)",
                m.name, m.mean_ns, m.min_ns, m.iters
            );
        }
        if let Ok(path) = std::env::var("MBS_BENCH_JSON") {
            if let Ok(text) = serde_json::to_string_pretty(&self.results) {
                if let Err(e) = std::fs::write(&path, text) {
                    eprintln!("warning: could not write {path}: {e}");
                }
            }
        }
    }

    fn record(&mut self, name: String, bencher: &Bencher) {
        if let Some(m) = bencher.result(name.clone()) {
            println!("{:<48} mean {:>12.1} ns", m.name, m.mean_ns);
            self.results.push(m);
        } else {
            eprintln!("warning: bench `{name}` never called iter()");
        }
    }
}

/// A group of related benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` against `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}/{}", self.name, id.function, id.parameter);
        let mut bencher = Bencher::new(self.criterion.quick);
        f(&mut bencher, input);
        self.criterion.record(full, &bencher);
        self
    }

    /// Runs a plain benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = Bencher::new(self.criterion.quick);
        f(&mut bencher);
        self.criterion.record(full, &bencher);
        self
    }

    /// Ends the group (kept for API compatibility; dropping works too).
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    window: Duration,
    measured: Option<(f64, f64, u64)>, // (mean_ns, min_ns, iters)
}

impl Bencher {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                warmup: Duration::from_millis(5),
                window: Duration::from_millis(40),
                measured: None,
            }
        } else {
            Self {
                warmup: Duration::from_millis(150),
                window: Duration::from_millis(700),
                measured: None,
            }
        }
    }

    /// Times `f` repeatedly over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup until the window elapses (at least one call).
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= self.warmup {
                break;
            }
        }
        let mut iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let measure_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos() as f64;
            min_ns = min_ns.min(dt);
            iters += 1;
            if measure_start.elapsed() >= self.window {
                break;
            }
        }
        let mean_ns = measure_start.elapsed().as_nanos() as f64 / iters as f64;
        self.measured = Some((mean_ns, min_ns, iters));
    }

    fn result(&self, name: String) -> Option<Measurement> {
        self.measured.map(|(mean_ns, min_ns, iters)| Measurement {
            name,
            mean_ns,
            min_ns,
            iters,
        })
    }
}

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_measurement() {
        let mut c = Criterion::with_quick(true);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].iters > 0);
        assert!(c.measurements()[0].mean_ns > 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::with_quick(true);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("f", 7), &3usize, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert_eq!(c.measurements()[0].name, "grp/f/7");
    }
}
