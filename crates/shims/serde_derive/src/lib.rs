//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the serde
//! shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote` —
//! the environment has no registry access). Supports the shapes the MBS
//! crates actually declare:
//!
//! - structs with named fields,
//! - enums whose variants are unit, tuple (any arity), or struct-like.
//!
//! Generics and `#[serde(...)]` attributes are unsupported and produce a
//! compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    body: Body,
}

/// Derives `serde::Serialize` for named-field structs and simple enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for named-field structs and simple enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

fn parse(input: TokenStream) -> Parsed {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute (incl. doc comments): skip the bracket group,
                // and the `!` of inner attributes if present.
                if let Some(TokenTree::Punct(q)) = iter.peek() {
                    if q.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) / pub(super)
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
                let is_enum = id.to_string() == "enum";
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("expected type name after `struct`/`enum`, got {other:?}"),
                };
                match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let body = if is_enum {
                            Body::Enum(parse_variants(g.stream()))
                        } else {
                            Body::Struct(parse_fields(g.stream()))
                        };
                        return Parsed { name, body };
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        panic!("serde shim derive does not support generics (type `{name}`)")
                    }
                    other => panic!(
                        "serde shim derive supports only brace-bodied structs/enums \
                         (type `{name}`, got {other:?})"
                    ),
                }
            }
            _ => {}
        }
    }
    panic!("serde shim derive: no struct or enum found in input");
}

/// Parses `name: Type, ...` field lists, returning the field names.
/// Tracks angle-bracket depth so commas inside `HashMap<K, V>` don't split.
fn parse_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        fields.push(name);
    }
    fields
}

/// Skips one type (until a top-level `,` or end of stream).
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant (also consumes `= discriminant`).
        skip_type(&mut iter);
        variants.push(Variant { name, kind });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_type(&mut iter);
        count += 1;
    }
    count
}

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.body {
        Body::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new(); {pushes} ::serde::Value::Obj(__fields)"
            )
        }
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),")
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Arr(vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{ \
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new(); {pushes} \
                                 ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Obj(__inner))]) }},"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.body {
        Body::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::obj_get(__obj, {f:?}))?,"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_obj().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Str(__s) = __v {{ \
                     match __s.as_str() {{ {unit_arms} _ => {{}} }} }}"
                )
            };
            let tagged_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => return ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         __arr.get({i}).unwrap_or(&::serde::NULL))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ let __arr = __inner.as_arr().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for {name}::{vn}\"))?; \
                                 return ::std::result::Result::Ok({name}::{vn}({items})); }},"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::obj_get(__obj, {f:?}))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{ let __obj = __inner.as_obj().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for {name}::{vn}\"))?; \
                                 return ::std::result::Result::Ok({name}::{vn} {{ {inits} }}); }},"
                            )
                        }
                        VariantKind::Unit => unreachable!(),
                    }
                })
                .collect();
            let tagged_block = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::std::option::Option::Some((__tag, __inner)) = \
                     ::serde::variant(__v) {{ match __tag {{ {tagged_arms} _ => {{}} }} }}"
                )
            };
            format!(
                "{unit_block} {tagged_block} \
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"unrecognized variant for {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
