//! Offline stand-in for `serde_json`: JSON text ⇄ the serde shim's
//! [`Value`] tree.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the shim's
//! `Serialize`/`Deserialize` traits. Numbers keep integers exact (i128
//! internally) so `u64` cycle counters survive a round trip; non-finite
//! floats serialize as `null`, matching serde_json's default behavior.

pub use serde::{Error, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors the real `serde_json` API.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
///
/// # Errors
///
/// Currently infallible; the `Result` mirrors the real `serde_json` API.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; ensure a
                // decimal point or exponent so the value re-parses as float.
                let s = format!("{f:?}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected value at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let text = to_string(&vec![1i32, 2, 3]).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<i32> = from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn floats_round_trip() {
        let xs = vec![1.5f64, -0.25, 1e-9, 3.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&vec![1i32]).unwrap();
        assert_eq!(text, "[\n  1\n]");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\" \\ tab\t".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Vec<f64>> = from_str(" [ [1.0, 2.0] , [] ] ").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.0], vec![]]);
    }
}
