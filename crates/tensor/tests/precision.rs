//! Property tests of the bf16 precision layer: conversion round-trips
//! (round-to-nearest-even, NaN/±0/subnormal edges) and the bf16 GEMM's
//! equivalence guarantees.

use proptest::prelude::*;

use mbs_tensor::ops::kernel;
use mbs_tensor::ops::{gemm_fused_prec, Epilogue, MatSrc};
use mbs_tensor::prec::{bf16_to_f32, f32_to_bf16, Bf16Tensor, Precision};
use mbs_tensor::Tensor;

/// The next bf16-representable value at or above/below `v` by scanning the
/// two candidate codes around truncation — the reference RNE oracle.
fn rne_reference(v: f32) -> u16 {
    if v.is_nan() {
        return f32_to_bf16(v); // NaN handling checked separately
    }
    let bits = v.to_bits();
    let down = (bits >> 16) as u16; // truncation: toward zero in magnitude
    let up = down.wrapping_add(1);
    let dv = bf16_to_f32(down);
    // `up` may roll into infinity or flip exponent — decode handles it.
    let uv = bf16_to_f32(up);
    if uv.is_infinite() {
        // Overflow region: IEEE rounds to infinity at and past the
        // midpoint between the largest finite code and its virtual
        // successor (one more ulp, same exponent), not by a distance
        // comparison against infinity.
        let ulp = (dv - bf16_to_f32(down.wrapping_sub(1))).abs();
        let mid = dv.abs() + ulp / 2.0;
        // Tie rounds to even: the infinity code has mantissa zero.
        return if v.abs() >= mid { up } else { down };
    }
    let (dd, du) = ((v - dv).abs(), (uv - v).abs());
    if dd < du {
        down
    } else if du < dd {
        up
    } else if down & 1 == 0 {
        // Tie: even mantissa code wins.
        down
    } else {
        up
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Encoding is round-to-nearest-even for every finite value, including
    /// subnormals: compare against a brute-force two-candidate oracle.
    #[test]
    fn encode_is_round_to_nearest_even(bits in 0u32..u32::MAX) {
        let v = f32::from_bits(bits);
        prop_assume!(v.is_finite());
        prop_assert_eq!(f32_to_bf16(v), rne_reference(v), "v={} bits={:#x}", v, bits);
    }

    /// Decode-then-encode is the identity on every bf16 code that is not a
    /// NaN (NaN codes stay NaN but may gain the quiet bit).
    #[test]
    fn bf16_codes_round_trip_exactly(code in (0u32..0x1_0000).prop_map(|c| c as u16)) {
        let v = bf16_to_f32(code);
        if v.is_nan() {
            prop_assert!(bf16_to_f32(f32_to_bf16(v)).is_nan());
        } else {
            prop_assert_eq!(f32_to_bf16(v), code);
        }
    }

    /// Round-trip relative error is bounded by half a bf16 ulp (2^-8) for
    /// normal values, and NaN/zero signs survive.
    #[test]
    fn round_trip_error_is_half_ulp(bits in 0u32..u32::MAX) {
        let v = f32::from_bits(bits);
        let back = bf16_to_f32(f32_to_bf16(v));
        if v.is_nan() {
            prop_assert!(back.is_nan());
            prop_assert_eq!(back.is_sign_negative(), v.is_sign_negative());
        } else if v == 0.0 {
            prop_assert_eq!(back, 0.0);
            prop_assert_eq!(back.is_sign_negative(), v.is_sign_negative());
        } else if back.is_finite() && !v.is_subnormal() {
            prop_assert!((back - v).abs() <= v.abs() / 256.0, "v={} back={}", v, back);
        }
    }

    /// Tensor compress/decompress round-trips within the same half-ulp
    /// bound, element-wise, and halves the resident bytes.
    #[test]
    fn tensor_compression_is_elementwise_rne(
        data in proptest::collection::vec(-100.0f32..100.0, 24),
    ) {
        let t = Tensor::from_vec(&[4, 6], data);
        let packed = Bf16Tensor::compress(&t);
        prop_assert_eq!(packed.bytes() * 2, t.len() * 4);
        let back = packed.decompress();
        for (&b, &v) in back.data().iter().zip(t.data()) {
            prop_assert_eq!(b.to_bits(), bf16_to_f32(f32_to_bf16(v)).to_bits());
        }
    }
}

#[test]
fn bf16_gemm_agrees_across_kernels_on_representable_data() {
    // Packed bf16 bytes use one conversion rule on every ISA, so on
    // losslessly-representable data every kernel must produce the same
    // (f32-exact) result the f32 path does.
    let (m, n, k) = (40, 24, 64);
    let a: Vec<f32> = (0..m * k).map(|v| ((v * 13) % 17) as f32 - 8.0).collect();
    let b: Vec<f32> = (0..k * n).map(|v| ((v * 11) % 13) as f32 - 6.0).collect();
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: k,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: n,
    };
    for kern in kernel::available() {
        let mut c32 = vec![0.0f32; m * n];
        let mut c16 = vec![0.0f32; m * n];
        gemm_fused_prec(
            &asrc,
            &bsrc,
            &mut c32,
            m,
            n,
            k,
            1,
            kern,
            &Epilogue::None,
            Precision::F32,
        );
        gemm_fused_prec(
            &asrc,
            &bsrc,
            &mut c16,
            m,
            n,
            k,
            2,
            kern,
            &Epilogue::None,
            Precision::Bf16,
        );
        assert_eq!(c32, c16, "{}", kern.name);
    }
}
