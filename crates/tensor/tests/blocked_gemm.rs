//! Property tests pinning the packed blocked GEMM core and the fused
//! convolution paths against their naive references, across
//! non-tile-divisible shapes, padding, stride, thread counts, and every
//! SIMD micro-kernel available on this CPU.

use proptest::prelude::*;

use mbs_tensor::ops::kernel;
use mbs_tensor::ops::pack::{gemm_with_kernel, gemm_with_threads, Im2colGeom, MatSrc};
use mbs_tensor::ops::{
    col2im, col2im_t, conv2d, conv2d_backward_data, conv2d_backward_weights, conv2d_naive, im2col,
    matmul, matmul_a_bt, matmul_at_b, matmul_naive, Conv2dCfg,
};
use mbs_tensor::Tensor;

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

/// Max |a - b| with a tolerance scaled by the reduction depth.
fn assert_close(a: &Tensor, b: &Tensor, k: usize, what: &str) {
    let tol = 1e-5 * (k as f32).max(1.0) * 4.0;
    let diff = a.max_abs_diff(b);
    assert!(diff < tol, "{what}: diff {diff} tol {tol}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The blocked core matches the naive triple loop on shapes that are
    /// deliberately not multiples of MR/NR/MC/KC/NC.
    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..70,
        k in 1usize..140,
        n in 1usize..40,
        seed in 0usize..1000,
    ) {
        let a = Tensor::from_vec(
            &[m, k],
            (0..m * k).map(|v| ((v * 31 + seed) % 17) as f32 / 4.0 - 2.0).collect(),
        );
        let b = Tensor::from_vec(
            &[k, n],
            (0..k * n).map(|v| ((v * 13 + seed * 7) % 19) as f32 / 4.0 - 2.0).collect(),
        );
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), k, "matmul");
    }

    /// Transposed-view variants equal transpose-then-multiply.
    #[test]
    fn transposed_variants_match_naive(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..30,
    ) {
        let av = Tensor::from_vec(&[m, k], (0..m * k).map(|v| (v % 11) as f32 - 5.0).collect());
        let bv = Tensor::from_vec(&[k, n], (0..k * n).map(|v| (v % 7) as f32 - 3.0).collect());
        let reference = matmul_naive(&av, &bv);

        let mut at = Tensor::zeros(&[k, m]);
        for i in 0..m {
            for p in 0..k {
                at.set(&[p, i], av.get(&[i, p]));
            }
        }
        assert_close(&matmul_at_b(&at, &bv), &reference, k, "matmul_at_b");

        let mut bt = Tensor::zeros(&[n, k]);
        for p in 0..k {
            for j in 0..n {
                bt.set(&[j, p], bv.get(&[p, j]));
            }
        }
        assert_close(&matmul_a_bt(&av, &bt), &reference, k, "matmul_a_bt");
    }

    /// Fused conv forward equals the direct loop nest for every geometry,
    /// including non-square kernels and non-divisible channel counts.
    #[test]
    fn fused_conv_matches_naive(
        x in tensor_strategy(vec![2, 3, 9, 7]),
        w in tensor_strategy(vec![5, 3, 3, 3]),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let a = conv2d_naive(&x, &w, cfg);
        let b = conv2d(&x, &w, cfg);
        assert_close(&a, &b, 27, "conv2d");
    }

    /// Fused weight gradient equals the materialized-im2col reference
    /// (`dW = dy₂dᵀ · im2col(x)` computed with the naive kernel).
    #[test]
    fn fused_weight_grad_matches_reference(
        x in tensor_strategy(vec![2, 2, 6, 6]),
        dy_seed in 0usize..100,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let (ho, wo) = cfg.out_extent(6, 6);
        let co = 4;
        let dy = Tensor::from_vec(
            &[2, co, ho, wo],
            (0..2 * co * ho * wo)
                .map(|v| ((v * 17 + dy_seed) % 13) as f32 / 3.0 - 2.0)
                .collect(),
        );
        let fused = conv2d_backward_weights(&x, &dy, cfg);

        // Reference: materialize im2col and dy rows, multiply naively.
        let cols = im2col(&x, cfg);
        let mut dy_rows = Tensor::zeros(&[2 * ho * wo, co]);
        for ni in 0..2 {
            for o in 0..co {
                for p in 0..ho * wo {
                    dy_rows.set(&[ni * ho * wo + p, o], dy.data()[(ni * co + o) * ho * wo + p]);
                }
            }
        }
        let mut dyt = Tensor::zeros(&[co, 2 * ho * wo]);
        for r in 0..2 * ho * wo {
            for o in 0..co {
                dyt.set(&[o, r], dy_rows.get(&[r, o]));
            }
        }
        let reference = matmul_naive(&dyt, &cols).reshape(&[co, 2, 3, 3]);
        assert_close(&fused, &reference, 2 * ho * wo, "conv2d_backward_weights");
    }

    /// Data gradient equals the materialized reference
    /// (`dX = col2im(dy₂d · W₂d)` with the naive kernel).
    #[test]
    fn data_grad_matches_reference(
        w in tensor_strategy(vec![4, 2, 3, 3]),
        dy_seed in 0usize..100,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let (ho, wo) = cfg.out_extent(6, 6);
        let co = 4;
        let dy = Tensor::from_vec(
            &[2, co, ho, wo],
            (0..2 * co * ho * wo)
                .map(|v| ((v * 23 + dy_seed) % 11) as f32 / 3.0 - 1.5)
                .collect(),
        );
        let fast = conv2d_backward_data(&dy, &w, &[2, 2, 6, 6], cfg);

        let mut dy_rows = Tensor::zeros(&[2 * ho * wo, co]);
        for ni in 0..2 {
            for o in 0..co {
                for p in 0..ho * wo {
                    dy_rows.set(&[ni * ho * wo + p, o], dy.data()[(ni * co + o) * ho * wo + p]);
                }
            }
        }
        let w2d = w.reshape(&[co, 18]);
        let dcols = matmul_naive(&dy_rows, &w2d);
        let reference = col2im(&dcols, 2, 2, 6, 6, cfg);
        assert_close(&fast, &reference, co, "conv2d_backward_data");
    }

    /// Bitwise determinism: the blocked GEMM produces *identical* bits for
    /// 1 thread and any other thread count, for every operand source kind.
    #[test]
    fn gemm_is_bitwise_deterministic_across_threads(
        m in 1usize..200,
        n in 1usize..50,
        k in 1usize..100,
        threads in 2usize..6,
    ) {
        let a: Vec<f32> = (0..m * k).map(|v| (v % 23) as f32 / 7.0 - 1.5).collect();
        let b: Vec<f32> = (0..k * n).map(|v| (v % 19) as f32 / 5.0 - 1.8).collect();
        let asrc = MatSrc::RowMajor { data: &a, stride: k };
        let bsrc = MatSrc::RowMajor { data: &b, stride: n };
        let mut c1 = vec![0.0f32; m * n];
        let mut cn = vec![0.0f32; m * n];
        gemm_with_threads(&asrc, &bsrc, &mut c1, m, n, k, 1);
        gemm_with_threads(&asrc, &bsrc, &mut cn, m, n, k, threads);
        prop_assert_eq!(c1, cn);
    }

    /// The same bitwise guarantee for the fused im2col operand and the
    /// transposed col2im scatter (the two places convolution threads).
    #[test]
    fn fused_conv_gemm_is_bitwise_deterministic(
        x in tensor_strategy(vec![3, 2, 6, 5]),
        threads in 2usize..5,
    ) {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let geom = Im2colGeom::new(3, 2, 6, 5, cfg);
        let w: Vec<f32> = (0..4 * geom.cols()).map(|v| (v % 13) as f32 / 3.0 - 2.0).collect();
        let asrc = MatSrc::Im2col { x: x.data(), geom };
        let bsrc = MatSrc::ColMajor { data: &w, stride: geom.cols() };
        let (m, n, k) = (geom.rows(), 4, geom.cols());
        let mut c1 = vec![0.0f32; m * n];
        let mut cn = vec![0.0f32; m * n];
        gemm_with_threads(&asrc, &bsrc, &mut c1, m, n, k, 1);
        gemm_with_threads(&asrc, &bsrc, &mut cn, m, n, k, threads);
        prop_assert_eq!(&c1, &cn);

        // col2im_t: per-sample scatter must also be thread-invariant.
        let cols_t: Vec<f32> =
            (0..geom.cols() * geom.rows()).map(|v| (v % 9) as f32 - 4.0).collect();
        let d1 = col2im_t(&cols_t, 3, 2, 6, 5, cfg, 1);
        let dn = col2im_t(&cols_t, 3, 2, 6, 5, cfg, threads);
        prop_assert_eq!(d1.data(), dn.data());
    }

    /// Every micro-kernel available on this CPU (AVX-512, AVX2, scalar)
    /// matches the naive triple loop on arbitrary shapes, and for each
    /// kernel the shared-B-panel multi-thread schedule reproduces the
    /// single-thread result bit-for-bit. `m` ranges past 6·MC so
    /// `threads in 2..7` actually spawns up to 6 workers (the GEMM clamps
    /// threads to `m.div_ceil(MC)` row blocks) — exercising the
    /// multi-worker strip partition, remainder distribution, and
    /// empty-share barrier participation.
    #[test]
    fn every_kernel_matches_naive_and_is_thread_invariant(
        m in 1usize..400,
        k in 1usize..150,
        n in 1usize..45,
        threads in 2usize..7,
        seed in 0usize..1000,
    ) {
        let a: Vec<f32> =
            (0..m * k).map(|v| ((v * 31 + seed) % 17) as f32 / 4.0 - 2.0).collect();
        let b: Vec<f32> =
            (0..k * n).map(|v| ((v * 13 + seed * 7) % 19) as f32 / 4.0 - 2.0).collect();
        let asrc = MatSrc::RowMajor { data: &a, stride: k };
        let bsrc = MatSrc::RowMajor { data: &b, stride: n };
        let at = Tensor::from_vec(&[m, k], a.clone());
        let bt = Tensor::from_vec(&[k, n], b.clone());
        let reference = matmul_naive(&at, &bt);
        for kern in kernel::available() {
            let mut c1 = vec![0.0f32; m * n];
            gemm_with_kernel(&asrc, &bsrc, &mut c1, m, n, k, 1, kern);
            let got = Tensor::from_vec(&[m, n], c1.clone());
            assert_close(&got, &reference, k, kern.name);
            let mut cn = vec![0.0f32; m * n];
            gemm_with_kernel(&asrc, &bsrc, &mut cn, m, n, k, threads, kern);
            prop_assert_eq!(&c1, &cn, "{} must be thread-invariant", kern.name);
        }
    }

    /// The fused im2col operand agrees across every kernel and stays
    /// thread-invariant per kernel (the conv paths feed the same packed
    /// strips to whichever kernel is selected).
    #[test]
    fn every_kernel_agrees_on_fused_conv_gemm(
        x in tensor_strategy(vec![2, 3, 7, 6]),
        threads in 2usize..6,
    ) {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let geom = Im2colGeom::new(2, 3, 7, 6, cfg);
        let (m, n, k) = (geom.rows(), 5, geom.cols());
        let w: Vec<f32> = (0..n * k).map(|v| (v % 13) as f32 / 3.0 - 2.0).collect();
        let asrc = MatSrc::Im2col { x: x.data(), geom };
        let bsrc = MatSrc::ColMajor { data: &w, stride: k };
        let mut reference: Option<Vec<f32>> = None;
        for kern in kernel::available() {
            let mut c1 = vec![0.0f32; m * n];
            gemm_with_kernel(&asrc, &bsrc, &mut c1, m, n, k, 1, kern);
            let mut cn = vec![0.0f32; m * n];
            gemm_with_kernel(&asrc, &bsrc, &mut cn, m, n, k, threads, kern);
            prop_assert_eq!(&c1, &cn, "{} im2col thread invariance", kern.name);
            match &reference {
                None => reference = Some(c1),
                Some(want) => {
                    // Different tile shapes round differently (FMA vs
                    // separate mul+add), so cross-kernel equality is only
                    // approximate.
                    let tol = 1e-5 * (k as f32) * 4.0;
                    for (got, want) in c1.iter().zip(want) {
                        prop_assert!(
                            (got - want).abs() < tol,
                            "{}: {} vs {}", kern.name, got, want
                        );
                    }
                }
            }
        }
    }
}

/// Edge tiles: shapes straddling every registered tile boundary (8 and 16
/// wide/tall, ±1) stay correct for every kernel — the packed zero-padding
/// lanes must never leak into C.
#[test]
fn edge_tiles_around_every_tile_boundary() {
    for kern in kernel::available() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (7, 9, 5),
            (8, 8, 8),
            (9, 7, 8),
            (15, 17, 16),
            (16, 16, 16),
            (17, 15, 33),
            (31, 33, 130),
            (63, 257, 129),
            (65, 255, 127),
        ] {
            let a = Tensor::from_vec(
                &[m, k],
                (0..m * k).map(|v| (v % 23) as f32 / 4.0 - 2.5).collect(),
            );
            let b = Tensor::from_vec(
                &[k, n],
                (0..k * n).map(|v| (v % 19) as f32 / 4.0 - 2.0).collect(),
            );
            let mut c = vec![0.0f32; m * n];
            gemm_with_kernel(
                &MatSrc::RowMajor {
                    data: a.data(),
                    stride: k,
                },
                &MatSrc::RowMajor {
                    data: b.data(),
                    stride: n,
                },
                &mut c,
                m,
                n,
                k,
                1,
                kern,
            );
            let got = Tensor::from_vec(&[m, n], c);
            assert_close(
                &got,
                &matmul_naive(&a, &b),
                k,
                &format!("{} ({m},{n},{k})", kern.name),
            );
        }
    }
}

/// The production entry points (`matmul`, `conv2d`, …) run on the
/// process-selected kernel; pin that the selection is stable within a
/// process and is one of the advertised kernels.
#[test]
fn selected_kernel_is_stable_and_registered() {
    let first = kernel::selected();
    assert!(std::ptr::eq(first, kernel::selected()));
    assert!(kernel::available().iter().any(|k| std::ptr::eq(*k, first)));
}

/// NaN/Inf propagation: the old kernels' `a == 0.0` skip is gone.
#[test]
fn non_finite_values_propagate() {
    let a = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
    let b = Tensor::from_vec(&[3, 2], vec![f32::NAN, 1.0, f32::INFINITY, 1.0, 0.5, 1.0]);
    let c = matmul(&a, &b);
    assert!(
        c.data()[0].is_nan(),
        "0·NaN + 0·Inf must be NaN, got {}",
        c.data()[0]
    );
    assert_eq!(c.data()[1], 0.0);
}
