//! Property-based tests of the tensor substrate's operator algebra.

use proptest::prelude::*;

use mbs_tensor::ops::{
    col2im, conv2d, conv2d_backward_data, conv2d_backward_weights, conv2d_naive, im2col, matmul,
    relu, relu_backward, softmax, softmax_xent_backward, Conv2dCfg,
};
use mbs_tensor::Tensor;

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The im2col GEMM convolution equals the direct loop nest.
    #[test]
    fn im2col_conv_equals_naive(
        x in tensor_strategy(vec![2, 3, 6, 6]),
        w in tensor_strategy(vec![4, 3, 3, 3]),
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let a = conv2d_naive(&x, &w, cfg);
        let b = conv2d(&x, &w, cfg);
        prop_assert!(a.max_abs_diff(&b) < 1e-3);
    }

    /// Convolution is linear: conv(x1 + x2) = conv(x1) + conv(x2).
    #[test]
    fn conv_is_linear(
        x1 in tensor_strategy(vec![1, 2, 5, 5]),
        x2 in tensor_strategy(vec![1, 2, 5, 5]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
    ) {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let lhs = conv2d(&x1.add(&x2), &w, cfg);
        let rhs = conv2d(&x1, &w, cfg).add(&conv2d(&x2, &w, cfg));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
    #[test]
    fn col2im_is_adjoint(
        x in tensor_strategy(vec![1, 2, 5, 5]),
        stride in 1usize..3,
        pad in 0usize..2,
        salt in 0usize..100,
    ) {
        let cfg = Conv2dCfg::square(3, stride, pad);
        let cols = im2col(&x, cfg);
        let y = Tensor::from_vec(
            cols.shape(),
            (0..cols.len()).map(|v| ((v * 7 + salt) % 11) as f32 / 5.0 - 1.0).collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, 1, 2, 5, 5, cfg);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2, "lhs {lhs} rhs {rhs}");
    }

    /// The weight- and data-gradient operators satisfy the bilinear adjoint
    /// identity: <conv(x, w), dy> == <w, dW(x, dy)> == <x, dX(dy, w)>.
    #[test]
    fn conv_gradients_are_adjoints(
        x in tensor_strategy(vec![1, 2, 5, 5]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
        dy in tensor_strategy(vec![1, 3, 5, 5]),
    ) {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let y = conv2d(&x, &w, cfg);
        let inner_y: f32 = y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();

        let dw = conv2d_backward_weights(&x, &dy, cfg);
        let inner_w: f32 = w.data().iter().zip(dw.data()).map(|(a, b)| a * b).sum();
        prop_assert!((inner_y - inner_w).abs() < 2e-2, "{inner_y} vs {inner_w}");

        let dx = conv2d_backward_data(&dy, &w, x.shape(), cfg);
        let inner_x: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        prop_assert!((inner_y - inner_x).abs() < 2e-2, "{inner_y} vs {inner_x}");
    }

    /// ReLU is idempotent and its mask routes exactly the positive slots.
    #[test]
    fn relu_properties(x in tensor_strategy(vec![32])) {
        let (y, mask) = relu(&x);
        let (y2, _) = relu(&y);
        prop_assert_eq!(y.data(), y2.data());
        let ones = Tensor::full(&[32], 1.0);
        let dx = relu_backward(&ones, &mask);
        for (i, &v) in x.data().iter().enumerate() {
            prop_assert_eq!(dx.data()[i] == 1.0, v > 0.0);
        }
    }

    /// Softmax rows are probability distributions; its gradient rows sum to
    /// zero (shift invariance of cross-entropy in logit space).
    #[test]
    fn softmax_gradient_rows_sum_to_zero(
        logits in tensor_strategy(vec![3, 5]),
        labels in proptest::collection::vec(0usize..5, 3),
    ) {
        let p = softmax(&logits);
        for i in 0..3 {
            let s: f32 = p.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
        let g = softmax_xent_backward(&p, &labels, 3);
        for i in 0..3 {
            let s: f32 = g.data()[i * 5..(i + 1) * 5].iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {i} grad sum {s}");
        }
    }

    /// Matmul distributes over addition on the right.
    #[test]
    fn matmul_distributes(
        a in tensor_strategy(vec![3, 4]),
        b1 in tensor_strategy(vec![4, 2]),
        b2 in tensor_strategy(vec![4, 2]),
    ) {
        let lhs = matmul(&a, &b1.add(&b2));
        let rhs = matmul(&a, &b1).add(&matmul(&a, &b2));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }
}
