//! Bitwise parity pins for the fused GEMM epilogue.
//!
//! The contract under test: for **every** registered micro-kernel
//! (`scalar-8x8`, `avx2-fma-8x8`, `avx512-fma-16x16` where the CPU has
//! them), every thread count, and shapes that exercise edge tiles, the
//! fused path — bias and ReLU folded into the C write-back, sign mask
//! emitted by the store — is **bitwise identical** to the unfused
//! sequence: GEMM, then a bias pass, then ReLU. Same for the layer-level
//! entry points (`matmul_a_bt_fused_with`, `conv2d_fused_with`) that the
//! `MBS_FUSE` knob toggles between.

use proptest::prelude::*;

use mbs_tensor::ops::kernel;
use mbs_tensor::ops::pack::{gemm_fused_with, gemm_with_kernel, Epilogue, MatSrc};
use mbs_tensor::ops::{
    conv2d_fused_with, matmul_a_bt_fused_with, relu_inplace, Conv2dCfg, MaskSink,
};
use mbs_tensor::Tensor;

fn filled(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|v| (((v * 13 + salt * 7) % 19) as f32 - 9.0) / 5.0)
        .collect()
}

/// Shapes chosen to hit full tiles, edge tiles in both directions, single
/// elements, and multi-depth-panel reductions (k > KC = 128).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (7, 9, 5),
    (16, 16, 16),
    (17, 31, 7),
    (64, 256, 128),
    (65, 257, 129),
    (100, 3, 300),
    (33, 48, 129),
];

/// Unfused reference: GEMM with the same kernel/threads, then a bias row
/// pass, then a scalar ReLU recording its own mask.
#[allow(clippy::too_many_arguments)]
fn reference(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kern: &'static kernel::MicroKernel,
    bias: &[f32],
    relu: bool,
) -> (Vec<f32>, Vec<bool>) {
    let mut c = vec![0.0f32; m * n];
    gemm_with_kernel(a, b, &mut c, m, n, k, threads, kern);
    for row in c.chunks_exact_mut(n) {
        for (v, &bv) in row.iter_mut().zip(bias) {
            *v += bv;
        }
    }
    let mut mask = vec![false; m * n];
    if relu {
        for (v, bit) in c.iter_mut().zip(&mut mask) {
            if *v > 0.0 {
                *bit = true;
            } else {
                *v = 0.0;
            }
        }
    }
    (c, mask)
}

#[test]
fn fused_bias_and_relu_match_unfused_bitwise_for_every_kernel() {
    for kern in kernel::available() {
        for &(m, n, k) in SHAPES {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let bias = filled(n, 3);
            let asrc = MatSrc::RowMajor {
                data: &a,
                stride: k,
            };
            let bsrc = MatSrc::RowMajor {
                data: &b,
                stride: n,
            };
            for threads in [1usize, 2, 5] {
                // Bias only.
                let (want, _) = reference(&asrc, &bsrc, m, n, k, threads, kern, &bias, false);
                let mut got = vec![f32::NAN; m * n];
                gemm_fused_with(
                    &asrc,
                    &bsrc,
                    &mut got,
                    m,
                    n,
                    k,
                    threads,
                    kern,
                    &Epilogue::Bias(&bias),
                );
                assert_eq!(
                    bits(&got),
                    bits(&want),
                    "{} bias ({m},{n},{k}) t={threads}",
                    kern.name
                );

                // Bias + ReLU, with the mask emitted by the store.
                let (want, want_mask) =
                    reference(&asrc, &bsrc, m, n, k, threads, kern, &bias, true);
                let mut got = vec![f32::NAN; m * n];
                let sink = MaskSink::new(m * n);
                gemm_fused_with(
                    &asrc,
                    &bsrc,
                    &mut got,
                    m,
                    n,
                    k,
                    threads,
                    kern,
                    &Epilogue::BiasRelu(&bias, &sink),
                );
                assert_eq!(
                    bits(&got),
                    bits(&want),
                    "{} bias+relu ({m},{n},{k}) t={threads}",
                    kern.name
                );
                let mask = sink.into_mask();
                for (i, &want_bit) in want_mask.iter().enumerate() {
                    assert_eq!(
                        mask.get(i),
                        want_bit,
                        "{} mask bit {i} ({m},{n},{k}) t={threads}",
                        kern.name
                    );
                }
            }
        }
    }
}

#[test]
fn fused_epilogue_is_thread_count_invariant() {
    // The mask sink publishes bits with commutative ORs, so the fused
    // write-back must preserve the GEMM core's bitwise thread-invariance.
    let (m, n, k) = (70, 45, 140);
    let a = filled(m * k, 4);
    let b = filled(k * n, 5);
    let bias = filled(n, 6);
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: k,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: n,
    };
    for kern in kernel::available() {
        let mut c1 = vec![0.0f32; m * n];
        let sink1 = MaskSink::new(m * n);
        gemm_fused_with(
            &asrc,
            &bsrc,
            &mut c1,
            m,
            n,
            k,
            1,
            kern,
            &Epilogue::BiasRelu(&bias, &sink1),
        );
        let mask1 = sink1.into_mask();
        for threads in [2usize, 3, 8] {
            let mut cn = vec![0.0f32; m * n];
            let sinkn = MaskSink::new(m * n);
            gemm_fused_with(
                &asrc,
                &bsrc,
                &mut cn,
                m,
                n,
                k,
                threads,
                kern,
                &Epilogue::BiasRelu(&bias, &sinkn),
            );
            assert_eq!(bits(&c1), bits(&cn), "{} t={threads}", kern.name);
            assert_eq!(mask1, sinkn.into_mask(), "{} mask t={threads}", kern.name);
        }
    }
}

#[test]
fn zero_channel_conv_keeps_fused_unfused_parity() {
    // k = ci·kh·kw = 0: the GEMM epilogue can never fire, so the fused
    // entry point must fall back to the separate-pass path instead of
    // panicking — and both must agree (all-zero conv output, then bias,
    // then ReLU).
    let x = Tensor::zeros(&[2, 0, 5, 5]);
    let w = Tensor::zeros(&[3, 0, 3, 3]);
    let bias = [0.5f32, -1.0, 2.0];
    let cfg = Conv2dCfg::square(3, 1, 1);
    let (y_f, m_f) = conv2d_fused_with(&x, &w, Some(&bias), true, cfg, true);
    let (y_u, m_u) = conv2d_fused_with(&x, &w, Some(&bias), true, cfg, false);
    assert_eq!(bits(y_f.data()), bits(y_u.data()));
    assert_eq!(m_f.unwrap(), m_u.unwrap());
    // Channel 1's bias is negative, so its plane clamps to zero.
    assert_eq!(y_f.get(&[0, 0, 0, 0]), 0.5);
    assert_eq!(y_f.get(&[0, 1, 0, 0]), 0.0);
    assert_eq!(y_f.get(&[1, 2, 4, 4]), 2.0);
}

#[test]
fn nan_sums_clamp_to_zero_with_a_false_mask_bit() {
    // NaN > 0 is false, so a NaN pre-activation must become 0 with its
    // mask bit clear — on the fused path exactly as on `ops::relu`.
    let a = vec![f32::NAN, 1.0];
    let b = vec![1.0f32, 1.0];
    let bias = vec![0.5f32];
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: 1,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: 1,
    };
    for kern in kernel::available() {
        let mut c = vec![7.0f32; 2];
        let sink = MaskSink::new(2);
        gemm_fused_with(
            &asrc,
            &bsrc,
            &mut c,
            2,
            1,
            1,
            1,
            kern,
            &Epilogue::BiasRelu(&bias, &sink),
        );
        let mask = sink.into_mask();
        assert_eq!(c, vec![0.0, 1.5], "{}", kern.name);
        assert!(!mask.get(0) && mask.get(1), "{}", kern.name);
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, len)
        .prop_map(move |data| Tensor::from_vec(&shape, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Linear-forward entry point: fused == unfused, output and mask,
    /// bitwise, on arbitrary shapes.
    #[test]
    fn linear_fused_matches_unfused(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..35,
        relu in proptest::bool::ANY,
        x in (0usize..1000),
    ) {
        let a = Tensor::from_vec(&[m, k], filled(m * k, x));
        let b = Tensor::from_vec(&[n, k], filled(n * k, x + 1));
        let bias = filled(n, x + 2);
        let (y_f, m_f) = matmul_a_bt_fused_with(&a, &b, &bias, relu, true);
        let (y_u, m_u) = matmul_a_bt_fused_with(&a, &b, &bias, relu, false);
        prop_assert_eq!(bits(y_f.data()), bits(y_u.data()));
        match (m_f, m_u) {
            (Some(mf), Some(mu)) => prop_assert_eq!(mf, mu),
            (None, None) => prop_assert!(!relu),
            _ => prop_assert!(false, "mask presence must not depend on fusion"),
        }
    }

    /// The conv-forward entry point: fused == unfused across bias/ReLU
    /// combinations, strides, and padding.
    #[test]
    fn conv_fused_matches_unfused(
        x in tensor_strategy(vec![2, 3, 9, 7]),
        w in tensor_strategy(vec![4, 3, 3, 3]),
        bias in proptest::collection::vec(-1.0f32..1.0, 4),
        with_bias in proptest::bool::ANY,
        relu in proptest::bool::ANY,
        stride in 1usize..3,
    ) {
        let cfg = Conv2dCfg::square(3, stride, 1);
        let b = with_bias.then_some(&bias[..]);
        let (y_f, m_f) = conv2d_fused_with(&x, &w, b, relu, cfg, true);
        let (y_u, m_u) = conv2d_fused_with(&x, &w, b, relu, cfg, false);
        prop_assert_eq!(bits(y_f.data()), bits(y_u.data()));
        match (m_f, m_u) {
            (Some(mf), Some(mu)) => prop_assert_eq!(mf, mu),
            (None, None) => prop_assert!(!relu),
            _ => prop_assert!(false, "mask presence must not depend on fusion"),
        }
    }

    /// Fused conv with ReLU agrees with conv-then-relu_inplace (the
    /// mask-producing composition the layers previously ran).
    #[test]
    fn conv_fused_relu_matches_composition(
        x in tensor_strategy(vec![1, 2, 6, 6]),
        w in tensor_strategy(vec![3, 2, 3, 3]),
    ) {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let (y_f, m_f) = conv2d_fused_with(&x, &w, None, true, cfg, true);
        let mut y_u = mbs_tensor::ops::conv2d(&x, &w, cfg);
        let m_u = relu_inplace(&mut y_u);
        prop_assert_eq!(bits(y_f.data()), bits(y_u.data()));
        prop_assert_eq!(m_f.expect("relu emits a mask"), m_u);
    }
}
