#![warn(missing_docs)]
//! Dense f32 tensor substrate for the MBS training experiments.
//!
//! This is the computational foundation of the Fig. 6 reproduction: a
//! from-scratch CPU implementation of the operators CNN training needs —
//! GEMM, im2col convolution with data and weight gradients (the three
//! GEMMs of the paper's Tab. 1), pooling, ReLU with 1-bit sign masks (the
//! storage trick MBS uses in back propagation), and softmax cross-entropy.
//!
//! # Examples
//!
//! ```
//! use mbs_tensor::ops::{conv2d, Conv2dCfg};
//! use mbs_tensor::Tensor;
//!
//! let x = Tensor::full(&[1, 3, 8, 8], 1.0);
//! let w = Tensor::full(&[4, 3, 3, 3], 0.1);
//! let y = conv2d(&x, &w, Conv2dCfg::square(3, 1, 1));
//! assert_eq!(y.shape(), &[1, 4, 8, 8]);
//! ```

pub mod arena;
pub mod env;
pub mod init;
pub mod ops;
pub mod prec;
pub mod tensor;

pub use tensor::Tensor;
