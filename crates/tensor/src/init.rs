//! Weight initializers.

use rand::rngs::StdRng;
use rand::Rng;

use crate::tensor::Tensor;

/// Kaiming/He normal initialization: `N(0, sqrt(2 / fan_in))`, the standard
/// choice for ReLU networks.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Normal initialization with given mean and standard deviation
/// (Box–Muller; depends only on `rand`'s uniform source).
pub fn normal(shape: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let len: usize = shape.iter().product();
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < len {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kaiming_statistics_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = kaiming_normal(&[64, 64], 64, &mut rng);
        let mean = t.mean();
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        let expect = 2.0 / 64.0;
        assert!(
            (var - expect).abs() < expect * 0.2,
            "var {var} expect {expect}"
        );
    }

    #[test]
    fn seeded_initialization_is_deterministic() {
        let a = kaiming_normal(&[3, 3], 9, &mut StdRng::seed_from_u64(1));
        let b = kaiming_normal(&[3, 3], 9, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
