//! Runtime numeric precision for packed GEMM operands and cached
//! activations (`MBS_PREC`).
//!
//! The MBS schedule models 16-bit words (`WORD_BYTES = 2` in the CNN IR),
//! matching the paper's evaluation. Historically the CPU runtime computed
//! *and stored* everything in f32, so modeled DRAM traffic and real traffic
//! differed by 2×. This module closes that loop: with `MBS_PREC=bf16` the
//! GEMM packing layer encodes A/B panels as bfloat16, the micro-kernels do
//! widening loads and **accumulate in f32**, and the training executor
//! stores stashed caches and group-boundary activations as [`Bf16Tensor`]s
//! — so the bytes that actually move halve, while every reduction still
//! happens at full precision.
//!
//! bfloat16 is the top 16 bits of an IEEE-754 f32 (1 sign, 8 exponent,
//! 7 mantissa bits): the dynamic range of f32 with ~2–3 significant decimal
//! digits. Encoding is round-to-nearest-even ([`f32_to_bf16`]); decoding is
//! exact (a 16-bit left shift, [`bf16_to_f32`]). Both are pure bit
//! arithmetic — no lookup tables, no ISA dependence — so packed bytes are a
//! deterministic function of the source values on every CPU, which keeps
//! the blocked GEMM's bitwise thread-count invariance intact per precision.
//!
//! The process-wide mode comes from the `MBS_PREC` environment knob
//! ([`precision`], default [`Precision::F32`]); explicit-precision entry
//! points (`gemm_fused_prec`, executor setters) let tests and the bench
//! runner sweep both modes inside one process.
//!
//! # Examples
//!
//! ```
//! use mbs_tensor::prec::{bf16_to_f32, f32_to_bf16};
//!
//! // 1.0 is exactly representable; round-trip is the identity.
//! assert_eq!(bf16_to_f32(f32_to_bf16(1.0)), 1.0);
//! // 1 + 2^-9 is not: it rounds to nearest-even (here: down to 1.0).
//! assert_eq!(bf16_to_f32(f32_to_bf16(1.0 + 1.0 / 512.0)), 1.0);
//! ```

use std::sync::OnceLock;

use crate::arena;
use crate::Tensor;

/// Element precision for packed GEMM operands and cached activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f32 storage everywhere (the default; bitwise identical to the
    /// pre-`MBS_PREC` behavior).
    #[default]
    F32,
    /// bfloat16 storage for packed panels, stashed caches, and group
    /// boundaries; all accumulation stays f32.
    Bf16,
}

impl Precision {
    /// Bytes per stored element: 4 for f32, 2 for bf16. This is the number
    /// the footprint model multiplies — at bf16 it equals the CNN IR's
    /// `WORD_BYTES`, so modeled and real traffic agree.
    pub fn word_bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Bf16 => 2,
        }
    }

    /// Stable lowercase name (the `MBS_PREC` spelling; recorded in bench
    /// reports).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
        }
    }
}

/// Parses an `MBS_PREC` value: `f32` or `bf16`, case-insensitive,
/// surrounding whitespace ignored. Anything else is malformed.
pub fn parse_precision(s: &str) -> Option<Precision> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("f32") {
        Some(Precision::F32)
    } else if t.eq_ignore_ascii_case("bf16") {
        Some(Precision::Bf16)
    } else {
        None
    }
}

/// The process-wide precision: the `MBS_PREC` environment knob, read once
/// per process (default `f32`; malformed values warn and fall back). Fixed
/// per process for the same reason the micro-kernel is: the two modes
/// round differently, so a per-call choice would break run-to-run
/// reproducibility.
pub fn precision() -> Precision {
    static PREC: OnceLock<Precision> = OnceLock::new();
    *PREC.get_or_init(|| {
        crate::env::knob("MBS_PREC", "a precision (f32 or bf16)", parse_precision)
            .unwrap_or(Precision::F32)
    })
}

/// Encodes an f32 as bfloat16 with round-to-nearest-even.
///
/// NaN is quieted (the quiet bit is forced on) so a payload that lives
/// entirely in the discarded low 16 bits cannot silently round to
/// infinity; sign and the surviving payload bits are preserved. ±0,
/// ±infinity, and every value whose mantissa fits in 7 bits encode
/// exactly. Finite values that round past the largest finite bf16 overflow
/// to infinity, exactly like f32 arithmetic would.
#[inline]
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even in pure integer arithmetic: add 0x7FFF plus
    // the bit that decides the tie, then truncate.
    let round = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(round) >> 16) as u16
}

/// Decodes a bfloat16 to f32 — exact, a 16-bit left shift.
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// `dst[i] = f32_to_bf16(src[i])` — the converting copy at the heart of
/// bf16 packing.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn encode_slice(dst: &mut [u16], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "encode_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_bf16(s);
    }
}

/// `dst[i] = bf16_to_f32(src[i])`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn decode_slice(dst: &mut [f32], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "decode_slice length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_to_f32(s);
    }
}

/// A bf16-encoded tensor: the shape of a [`Tensor`] at half the resident
/// bytes. This is the storage type behind bf16-mode cache stashes and
/// group-boundary buffers in the training executor.
///
/// The backing store is an arena [`arena::Scratch`] (an f32 buffer
/// reinterpreted as u16 words — alignment and bit-validity are trivially
/// satisfied), so compressing and decompressing in the steady-state
/// training loop recycles pooled buffers exactly like f32 tensors do and
/// the zero-allocation pins keep holding.
///
/// # Examples
///
/// ```
/// use mbs_tensor::prec::Bf16Tensor;
/// use mbs_tensor::Tensor;
///
/// let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.5, -3.0, 0.0]);
/// let packed = Bf16Tensor::compress(&t);
/// assert_eq!(packed.bytes(), t.len() * 2);
/// // These values are exactly representable, so the round-trip is exact.
/// assert_eq!(packed.decompress().data(), t.data());
/// ```
#[derive(Debug)]
pub struct Bf16Tensor {
    shape: Vec<usize>,
    elems: usize,
    /// `elems.div_ceil(2)` f32 words holding `elems` u16 codes.
    data: arena::Scratch,
}

impl Bf16Tensor {
    fn words(elems: usize) -> usize {
        elems.div_ceil(2)
    }

    /// An encoded tensor of `shape` with unspecified contents (filled by
    /// [`Bf16Tensor::write_rows`]).
    pub fn uninit(shape: &[usize]) -> Self {
        let elems = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            elems,
            data: arena::take(Self::words(elems)),
        }
    }

    /// Encodes `t` (round-to-nearest-even per element).
    pub fn compress(t: &Tensor) -> Self {
        let mut out = Self::uninit(t.shape());
        encode_slice(out.as_u16_mut(), t.data());
        out
    }

    /// Decodes back to an f32 [`Tensor`] (exact — no second rounding).
    pub fn decompress(&self) -> Tensor {
        let mut out = Tensor::uninit(&self.shape);
        decode_slice(out.data_mut(), self.as_u16());
        out
    }

    /// The logical shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.elems
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.elems == 0
    }

    /// Resident payload bytes: `len() · 2` — half what the same shape
    /// costs as f32.
    pub fn bytes(&self) -> usize {
        self.elems * 2
    }

    /// Encodes every row of `src` into rows `[row0, row0 + src rows)` of
    /// `self` (axis 0 is the row axis; trailing axes must match).
    ///
    /// # Panics
    ///
    /// Panics if either shape is rank 0, the trailing axes differ, or the
    /// rows do not fit.
    pub fn write_rows(&mut self, src: &Tensor, row0: usize) {
        assert!(
            !self.shape.is_empty() && !src.shape().is_empty(),
            "write_rows needs a row axis"
        );
        assert_eq!(
            &self.shape[1..],
            &src.shape()[1..],
            "write_rows trailing-axis mismatch"
        );
        let row_len: usize = self.shape[1..].iter().product();
        let rows = src.shape()[0];
        assert!(row0 + rows <= self.shape[0], "write_rows out of range");
        encode_slice(
            &mut self.as_u16_mut()[row0 * row_len..(row0 + rows) * row_len],
            src.data(),
        );
    }

    /// Decodes rows `[row0, row0 + rows)` into a fresh f32 tensor of shape
    /// `[rows, trailing…]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or the range is out of bounds.
    pub fn read_rows(&self, row0: usize, rows: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "read_rows needs a row axis");
        assert!(row0 + rows <= self.shape[0], "read_rows out of range");
        let row_len: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = rows;
        let mut out = Tensor::uninit(&shape);
        decode_slice(
            out.data_mut(),
            &self.as_u16()[row0 * row_len..(row0 + rows) * row_len],
        );
        out
    }

    fn as_u16(&self) -> &[u16] {
        // SAFETY: the scratch holds ≥ elems.div_ceil(2) f32 words (4-byte
        // aligned ≥ u16's 2), every bit pattern is a valid u16, and the
        // reborrow cannot outlive &self.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<u16>(), self.elems) }
    }

    fn as_u16_mut(&mut self) -> &mut [u16] {
        // SAFETY: as for `as_u16`, with &mut self guaranteeing uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<u16>(), self.elems) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbs_prec_knob_grammar() {
        assert_eq!(parse_precision("f32"), Some(Precision::F32));
        assert_eq!(parse_precision(" F32 "), Some(Precision::F32));
        assert_eq!(parse_precision("bf16"), Some(Precision::Bf16));
        assert_eq!(parse_precision("BF16"), Some(Precision::Bf16));
        for bad in ["", "fp32", "f16", "bfloat16", "half", "32"] {
            assert_eq!(parse_precision(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn word_bytes_match_the_mode() {
        assert_eq!(Precision::F32.word_bytes(), 4);
        assert_eq!(Precision::Bf16.word_bytes(), 2);
        assert_eq!(Precision::Bf16.name(), "bf16");
    }

    #[test]
    fn exact_values_round_trip() {
        // Anything with ≤ 7 mantissa bits survives the trip bit-for-bit,
        // including signed zeros and infinities.
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.5,
            -3.75,
            256.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE, // smallest normal: exponent-only, exact
        ] {
            let back = bf16_to_f32(f32_to_bf16(v));
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn rounding_is_nearest_even() {
        // 1.0 + 2^-8 sits exactly between 1.0 and the next bf16
        // (1.0 + 2^-7): the tie goes to the even code, 1.0.
        let tie = 1.0f32 + 1.0 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(tie)), 1.0);
        // One ulp above the tie rounds up.
        let above = f32::from_bits(tie.to_bits() + 1);
        assert_eq!(bf16_to_f32(f32_to_bf16(above)), 1.0 + 1.0 / 128.0);
        // Just below the tie rounds down.
        let below = f32::from_bits(tie.to_bits() - 1);
        assert_eq!(bf16_to_f32(f32_to_bf16(below)), 1.0);
        // A tie whose lower neighbor is odd rounds *up* to the even code.
        let odd_tie = 1.0f32 + 1.0 / 128.0 + 1.0 / 256.0;
        assert_eq!(bf16_to_f32(f32_to_bf16(odd_tie)), 1.0 + 2.0 / 128.0);
    }

    #[test]
    fn nan_stays_nan_and_overflow_goes_to_infinity() {
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // A NaN payload living entirely in the discarded bits must not
        // become infinity.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(sneaky.is_nan());
        assert!(bf16_to_f32(f32_to_bf16(sneaky)).is_nan());
        let neg = f32::from_bits(0xFF80_0001);
        let back = bf16_to_f32(f32_to_bf16(neg));
        assert!(back.is_nan() && back.is_sign_negative());
        // The largest finite f32 is above the largest finite bf16 and
        // rounds to +inf.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::MAX)), f32::INFINITY);
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::MIN)), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_round_like_everything_else() {
        // f32 subnormals are far below bf16's smallest subnormal only in
        // the mantissa sense — bf16 shares f32's exponent range, so f32
        // subnormals map onto bf16 subnormals by the same RNE rule.
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(bf16_to_f32(f32_to_bf16(tiny)), 0.0);
        let neg_tiny = f32::from_bits(0x8000_0001);
        let back = bf16_to_f32(f32_to_bf16(neg_tiny));
        assert_eq!(back, 0.0);
        assert!(back.is_sign_negative(), "-0 keeps its sign");
        // A subnormal with its top mantissa bits set survives.
        let big_sub = f32::from_bits(0x007F_0000);
        assert_eq!(bf16_to_f32(f32_to_bf16(big_sub)).to_bits(), 0x007F_0000);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_ulp() {
        // Deterministic pseudo-random sweep (no external proptest dep):
        // |round_trip(v) - v| ≤ 2^-8 · |v| for every normal v.
        let mut state = 0x9E37_79B9u32;
        for _ in 0..20_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let v = f32::from_bits(state);
            if !v.is_finite() || v.subnormal_or_zero() {
                continue;
            }
            let back = bf16_to_f32(f32_to_bf16(v));
            if !back.is_finite() {
                // Overflow to inf only happens at the very top of range.
                assert!(v.abs() > 3.38e38, "{v} overflowed unexpectedly");
                continue;
            }
            let err = (back - v).abs();
            assert!(
                err <= v.abs() / 256.0,
                "v={v} ({:#x}) back={back} err={err}",
                v.to_bits()
            );
        }
    }

    // Small test-local helper: `is_subnormal() || v == 0.0`.
    trait SubOrZero {
        fn subnormal_or_zero(self) -> bool;
    }
    impl SubOrZero for f32 {
        fn subnormal_or_zero(self) -> bool {
            self == 0.0 || self.is_subnormal()
        }
    }

    #[test]
    fn bf16_tensor_rows_round_trip() {
        let t = Tensor::from_vec(&[4, 3], (0..12).map(|v| v as f32 * 0.25 - 1.0).collect());
        let mut packed = Bf16Tensor::uninit(&[4, 3]);
        // Write in two halves at different offsets.
        let top = Tensor::from_vec(&[2, 3], t.data()[..6].to_vec());
        let bot = Tensor::from_vec(&[2, 3], t.data()[6..].to_vec());
        packed.write_rows(&top, 0);
        packed.write_rows(&bot, 2);
        assert_eq!(packed.bytes(), 24);
        assert_eq!(packed.read_rows(0, 4).data(), t.data());
        assert_eq!(packed.read_rows(1, 2).data(), &t.data()[3..9]);
        assert_eq!(packed.read_rows(1, 2).shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "trailing-axis mismatch")]
    fn bf16_tensor_rejects_mismatched_rows() {
        let mut packed = Bf16Tensor::uninit(&[4, 3]);
        packed.write_rows(&Tensor::zeros(&[2, 4]), 0);
    }
}
