//! Shared parsing for the `MBS_*` environment knobs.
//!
//! Every knob in the workspace follows the same discipline: a malformed
//! value **warns once and falls back** to the documented default instead
//! of being silently ignored (or, worse, silently flipping a behavior the
//! user did not ask for). The parsers here are pure functions over the
//! raw string — `None` means "malformed" — so each knob's grammar can be
//! unit-tested without touching process-global environment state; the
//! `*_knob` wrappers add the env lookup and the warning.
//!
//! Knobs using this module:
//!
//! | knob | grammar | parser |
//! |---|---|---|
//! | `MBS_FUSE`, `MBS_STASH` | on/off flag | [`parse_flag`] |
//! | `MBS_THREADS`, `MBS_CKPT_EVERY` | non-negative integer | [`parse_usize`] |
//! | `MBS_SERVE_DEADLINE_US`, `MBS_SERVE_MAX_RESPAWNS` | non-negative integer | [`parse_usize`] |
//! | `MBS_CACHE_BUDGET` | byte size with K/M/G suffix | [`parse_byte_size`] |
//! | `MBS_PREC` | `f32` or `bf16` | [`crate::prec::parse_precision`] |
//! | `MBS_SERVE_WORKERS`, `MBS_SERVE_MAX_BATCH`, `MBS_SERVE_MAX_WAIT_US`, `MBS_SERVE_QUEUE`, `MBS_SERVE_PRIORITY_LEVELS` | positive integer | [`positive_usize_knob`] |
//! | `MBS_LOADER_PREFETCH`, `MBS_LOADER_CHUNK` | positive integer | [`positive_usize_knob`] |
//!
//! (`MBS_KERNEL` is a name resolved against the detected kernel set and
//! keeps its own warn-and-fall-back resolution in `ops::kernel`;
//! `MBS_CKPT_DIR` is a path and needs no parsing.)

/// Parses an on/off flag: `1`/`true`/`on`/`yes` → `true`,
/// `0`/`false`/`off`/`no` → `false` (case-insensitive, surrounding
/// whitespace ignored). Anything else is malformed.
pub fn parse_flag(s: &str) -> Option<bool> {
    let t = s.trim();
    if t == "1"
        || t.eq_ignore_ascii_case("true")
        || t.eq_ignore_ascii_case("on")
        || t.eq_ignore_ascii_case("yes")
    {
        Some(true)
    } else if t == "0"
        || t.eq_ignore_ascii_case("false")
        || t.eq_ignore_ascii_case("off")
        || t.eq_ignore_ascii_case("no")
    {
        Some(false)
    } else {
        None
    }
}

/// Parses a non-negative decimal integer (surrounding whitespace ignored).
pub fn parse_usize(s: &str) -> Option<usize> {
    s.trim().parse().ok()
}

/// Parses `"8388608"`, `"8192K"`, `"8M"`, `"1G"` (suffixes are
/// case-insensitive, powers of 1024) into bytes. Suffixed products that
/// would overflow `usize` are malformed, not wrapped.
pub fn parse_byte_size(s: &str) -> Option<usize> {
    let t = s.trim();
    let (digits, shift) = match t.chars().last()? {
        'k' | 'K' => (&t[..t.len() - 1], 10),
        'm' | 'M' => (&t[..t.len() - 1], 20),
        'g' | 'G' => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    let n: usize = digits.trim().parse().ok()?;
    // checked_mul (not checked_shl) so a value whose suffixed product
    // overflows usize maps to None — shifts only guard the shift amount,
    // not shifted-out bits.
    n.checked_mul(1usize << shift)
}

/// Reads env var `name` and parses it with `parse`. Unset → `None`
/// (caller applies its default); set but malformed → one warning naming
/// the knob and the expected grammar, then `None` (same fallback).
pub fn knob<T>(name: &str, grammar: &str, parse: impl Fn(&str) -> Option<T>) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match parse(&raw) {
        Some(v) => Some(v),
        None => {
            eprintln!("warning: {name}={raw:?} is not {grammar}; falling back to the default");
            None
        }
    }
}

/// [`knob`] for on/off flags: `default` when unset or malformed.
pub fn flag_knob(name: &str, default: bool) -> bool {
    knob(
        name,
        "an on/off flag (1/true/on/yes or 0/false/off/no)",
        parse_flag,
    )
    .unwrap_or(default)
}

/// [`knob`] for positive integers: `None` when unset, malformed, or zero
/// with `reject_zero` (zero is warned about like any malformed value).
pub fn positive_usize_knob(name: &str) -> Option<usize> {
    knob(name, "a positive integer", |s| {
        parse_usize(s).filter(|&n| n > 0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test per knob grammar, against the pure parsers (the env-var
    // wrappers are exercised by each knob's own crate).

    #[test]
    fn flag_knobs_accept_both_spellings() {
        // MBS_FUSE / MBS_STASH grammar.
        for on in ["1", "true", "TRUE", "on", "yes", " On "] {
            assert_eq!(parse_flag(on), Some(true), "{on:?}");
        }
        for off in ["0", "false", "off", "OFF", "no", " No "] {
            assert_eq!(parse_flag(off), Some(false), "{off:?}");
        }
        for bad in ["", "2", "enabled", "truee", "o n"] {
            assert_eq!(parse_flag(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn threads_knob_grammar() {
        // MBS_THREADS: positive integer.
        assert_eq!(parse_usize("4"), Some(4));
        assert_eq!(parse_usize(" 16 "), Some(16));
        assert_eq!(parse_usize("0"), Some(0)); // zero filtered by the knob wrapper
        assert_eq!(parse_usize("-1"), None);
        assert_eq!(parse_usize("four"), None);
        assert_eq!(parse_usize("4.0"), None);
    }

    #[test]
    fn ckpt_every_knob_grammar() {
        // MBS_CKPT_EVERY: non-negative integer (0 = epoch-end only).
        assert_eq!(parse_usize("0"), Some(0));
        assert_eq!(parse_usize("10"), Some(10));
        assert_eq!(parse_usize("every-step"), None);
    }

    #[test]
    fn cache_budget_knob_grammar() {
        // MBS_CACHE_BUDGET: byte size with optional K/M/G suffix.
        assert_eq!(parse_byte_size("8388608"), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size("8192K"), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size(" 8M "), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size(""), None);
        // Suffixed products that overflow usize are rejected, not wrapped.
        assert_eq!(parse_byte_size("18446744073709551615G"), None);
        assert_eq!(parse_byte_size(&format!("{}G", usize::MAX >> 29)), None);
    }

    #[test]
    fn unset_knobs_fall_back_silently() {
        assert!(flag_knob("MBS_TEST_KNOB_THAT_IS_NEVER_SET", true));
        assert!(!flag_knob("MBS_TEST_KNOB_THAT_IS_NEVER_SET", false));
        assert_eq!(positive_usize_knob("MBS_TEST_KNOB_THAT_IS_NEVER_SET"), None);
    }
}
