//! Reusable scratch-buffer arena for the compute kernels **and** every
//! [`crate::Tensor`]'s backing storage.
//!
//! The MBS executor serializes a mini-batch into many small sub-batch
//! propagations (paper §3), so the per-op intermediates — GEMM packing
//! panels, the convolution's flat output staging, the data-gradient column
//! matrix — would otherwise be allocated and freed once per layer per
//! sub-batch. This arena keeps those buffers alive in a global pool:
//! [`take`] hands out a buffer (reusing a pooled allocation when one is
//! large enough) and dropping the returned [`Scratch`] recycles it.
//!
//! Since the fused-epilogue PR the arena is also the **activation
//! allocator**: `Tensor` stores its data as a [`Scratch`], so every layer
//! output, gradient, and cache produced inside the serialized training loop
//! recycles a pooled buffer instead of hitting the system allocator. After
//! a warm-up step the steady-state `train_step_mbs` loop runs with zero
//! arena misses (pinned by `crates/train/tests/steady_state_alloc.rs` and
//! recorded in `BENCH_train.json`).
//!
//! The pool is process-global and thread-safe; GEMM worker threads check
//! buffers in and out independently. [`stats`] exposes hit/miss counters so
//! tests can pin the reuse behavior.
//!
//! Long-lived worker threads that must not contend on the global mutex —
//! the `mbs-serve` inference workers, which each run a private model
//! replica — can instead install a **thread-local** pool with
//! [`LocalArena::install`]: while the guard lives, every `take` and every
//! `Scratch` drop on that thread goes through the local free list (no
//! lock, no cross-worker interference), and dropping the guard frees the
//! local buffers. Threads without a guard keep the global-pool behavior
//! unchanged, so the steady-state zero-miss pins on the training loop are
//! unaffected. A buffer allocated under a local arena and dropped on
//! another thread simply recycles into *that* thread's pool (local or
//! global) — ownership is wherever the drop happens.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers kept in the pool at once; excess buffers are simply freed.
/// Sized for the training hot loop: a MiniResNet sub-batch step cycles
/// layer outputs, backward gradients, and per-layer caches through the
/// pool, and evicting any of them re-introduces a steady-state miss.
const MAX_POOLED: usize = 256;

/// Largest single buffer worth pooling (elements). Anything bigger is
/// returned to the allocator so a one-off huge tensor cannot pin memory.
const MAX_POOLED_LEN: usize = 1 << 24; // 64 MiB of f32

/// Total elements the pool may hold across all buffers (256 MiB of f32).
/// A count cap alone would let 256 large buffers pin ~16 GiB now that
/// every `Tensor` routes through the arena; the byte budget bounds what a
/// transient large-tensor phase can leave behind for the process
/// lifetime.
const MAX_POOLED_TOTAL: usize = 1 << 26;

/// The free list plus a running capacity total, so the byte-budget check
/// in `Scratch::drop` is O(1) instead of a sum over the pool inside the
/// global mutex (every `Tensor` drop takes this lock).
struct Pool {
    bufs: Vec<Vec<f32>>,
    /// Invariant: `total == bufs.iter().map(Vec::capacity).sum()`.
    total: usize,
}

impl Pool {
    /// Pops the smallest pooled buffer with capacity ≥ `len`, if any.
    fn pop_best_fit(&mut self, len: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|(_, cap)| b.capacity() < cap) {
                best = Some((i, b.capacity()));
            }
        }
        best.map(|(i, cap)| {
            self.total -= cap;
            self.bufs.swap_remove(i)
        })
    }

    /// Adopts `buf` if the count and byte caps allow; otherwise frees it.
    fn adopt(&mut self, buf: Vec<f32>) {
        if self.bufs.len() < MAX_POOLED && self.total + buf.capacity() <= MAX_POOLED_TOTAL {
            self.total += buf.capacity();
            self.bufs.push(buf);
        }
    }
}

static POOL: Mutex<Pool> = Mutex::new(Pool {
    bufs: Vec::new(),
    total: 0,
});
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The thread's private pool while a [`LocalArena`] guard is alive;
    /// `None` routes to the global pool.
    static LOCAL: RefCell<Option<Pool>> = const { RefCell::new(None) };
}

/// Guard installing a private, lock-free arena pool for the current
/// thread. While it lives, [`take`]/[`take_zeroed`] and `Scratch` drops on
/// this thread use the thread-local free list exclusively — a cold local
/// pool allocates fresh rather than stealing from (and contending on) the
/// global pool. Dropping the guard frees every locally pooled buffer and
/// restores the global-pool behavior.
///
/// # Examples
///
/// ```
/// use mbs_tensor::arena;
///
/// let guard = arena::LocalArena::install();
/// let a = arena::take(256);
/// drop(a); // recycles into this thread's pool, no lock taken
/// let b = arena::take(256); // local hit
/// assert_eq!(b.len(), 256);
/// drop(guard); // local buffers freed
/// ```
#[derive(Debug)]
pub struct LocalArena {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl LocalArena {
    /// Installs the thread-local pool.
    ///
    /// # Panics
    ///
    /// Panics if this thread already has a live `LocalArena` guard.
    pub fn install() -> Self {
        LOCAL.with(|l| {
            let mut slot = l.borrow_mut();
            assert!(slot.is_none(), "thread already has a LocalArena installed");
            *slot = Some(Pool {
                bufs: Vec::new(),
                total: 0,
            });
        });
        Self {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for LocalArena {
    fn drop(&mut self) {
        // Ignore TLS teardown: the pool (and its buffers) die with it.
        let _ = LOCAL.try_with(|l| l.borrow_mut().take());
    }
}

/// A pooled `f32` buffer; returns to the arena on drop.
#[derive(Debug)]
pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    /// Wraps an existing vector so it joins the pool when dropped (how
    /// `Tensor::from_vec` adopts caller-built storage without copying).
    pub(crate) fn from_vec(buf: Vec<f32>) -> Self {
        Self { buf }
    }

    /// The backing vector (for `Tensor::assign`, which resizes in place).
    pub(crate) fn buf_mut(&mut self) -> &mut Vec<f32> {
        &mut self.buf
    }
}

impl Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_POOLED_LEN {
            return;
        }
        let mut buf = Some(std::mem::take(&mut self.buf));
        // A thread with a LocalArena recycles into its private pool — no
        // lock. `try_with` covers TLS teardown, where the buffer is freed.
        let routed_locally = LOCAL
            .try_with(|l| match l.borrow_mut().as_mut() {
                Some(pool) => {
                    pool.adopt(buf.take().expect("buffer moved at most once"));
                    true
                }
                None => false,
            })
            .unwrap_or(true);
        if routed_locally {
            return;
        }
        let buf = buf.expect("global route leaves the buffer in place");
        let mut pool = match POOL.lock() {
            Ok(pool) => pool,
            Err(poisoned) => poisoned.into_inner(),
        };
        pool.adopt(buf);
    }
}

/// Checks out a buffer of exactly `len` elements with **unspecified
/// contents** (a reused allocation keeps its previous values), reusing a
/// pooled allocation when one with sufficient capacity exists.
///
/// Every current consumer — packing panels, GEMM staging (the blocked core
/// *stores* its first depth panel rather than accumulating), permuted
/// inputs — fully overwrites the buffer before reading it, so `take` skips
/// the zero-fill pass a fresh `vec![0.0; len]` would pay on every call.
/// Use [`take_zeroed`] when the contract actually needs zeros.
pub fn take(len: usize) -> Scratch {
    match reuse(len) {
        Some(mut buf) => {
            // Shrink without writing; only growth into untouched capacity
            // pays a fill.
            if buf.len() > len {
                buf.truncate(len);
            } else {
                buf.resize(len, 0.0);
            }
            Scratch { buf }
        }
        None => Scratch {
            buf: vec![0.0; len],
        },
    }
}

/// [`take`], but the returned buffer is guaranteed to be all zeros. Only a
/// *reused* buffer pays the zero-fill pass; a miss's fresh `vec![0.0; len]`
/// is already zeroed (and lands on calloc's zero pages).
pub fn take_zeroed(len: usize) -> Scratch {
    match reuse(len) {
        Some(mut buf) => {
            // Empty-then-grow writes exactly `len` zeros.
            buf.clear();
            buf.resize(len, 0.0);
            Scratch { buf }
        }
        None => Scratch {
            buf: vec![0.0; len],
        },
    }
}

/// Pops the best-fit pooled buffer for a `len`-element request (smallest
/// sufficient capacity, so a small request does not burn a large buffer)
/// and bumps the hit/miss counters. A thread with a [`LocalArena`] guard
/// serves the request from its private pool only — a cold local pool is a
/// miss (fresh allocation), never a locked steal from the global pool.
fn reuse(len: usize) -> Option<Vec<f32>> {
    let local = LOCAL
        .try_with(|l| l.borrow_mut().as_mut().map(|pool| pool.pop_best_fit(len)))
        .unwrap_or(None);
    let reused = match local {
        Some(found) => found,
        None => {
            let mut pool = match POOL.lock() {
                Ok(pool) => pool,
                Err(poisoned) => poisoned.into_inner(),
            };
            pool.pop_best_fit(len)
        }
    };
    match &reused {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    reused
}

/// `(hits, misses)` counters since process start (or the last [`reset_stats`]).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zeroes the hit/miss counters (test isolation).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Drops every pooled buffer.
pub fn clear() {
    let mut pool = match POOL.lock() {
        Ok(pool) => pool,
        Err(poisoned) => poisoned.into_inner(),
    };
    pool.bufs.clear();
    pool.total = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_take_zeroed_zeroes() {
        clear();
        reset_stats();
        {
            let mut a = take(1000);
            a[0] = 7.0;
            a[999] = 3.0;
        } // recycled here
        let b = take_zeroed(500);
        assert!(
            b.iter().all(|&v| v == 0.0),
            "take_zeroed must clear reused contents"
        );
        assert_eq!(b.len(), 500);
        let (hits, _) = stats();
        assert!(hits >= 1, "second take should reuse the pooled buffer");
    }

    #[test]
    fn oversized_requests_still_work() {
        let s = take(10);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn local_arena_isolates_a_thread_from_the_global_pool() {
        std::thread::spawn(|| {
            // Sentinel capacity no other test uses, so presence in the
            // global pool is attributable to this thread alone.
            const LEN: usize = 7_777_777;
            let guard = LocalArena::install();
            {
                let mut a = take(LEN);
                a[0] = 1.0;
            } // recycled into the thread-local pool, not the global one
            let in_global = {
                let pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
                pool.bufs.iter().any(|b| b.capacity() == LEN)
            };
            assert!(!in_global, "local drop must not reach the global pool");
            // The local pool holds the recycled buffer until the guard dies.
            let held = LOCAL.with(|l| l.borrow().as_ref().map(|p| p.bufs.len()));
            assert_eq!(held, Some(1));
            drop(guard);
            let held = LOCAL.with(|l| l.borrow().as_ref().map(|p| p.bufs.len()));
            assert_eq!(held, None, "dropping the guard frees the local pool");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn local_arena_reuses_buffers_within_the_thread() {
        std::thread::spawn(|| {
            let _guard = LocalArena::install();
            drop(take(4096));
            let pooled = LOCAL.with(|l| l.borrow().as_ref().map(|p| p.bufs.len()));
            assert_eq!(pooled, Some(1));
            let s = take(4096); // must be served by the local free list
            assert_eq!(s.len(), 4096);
            let pooled = LOCAL.with(|l| l.borrow().as_ref().map(|p| p.bufs.len()));
            assert_eq!(pooled, Some(0), "take must have consumed the local buffer");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn concurrent_local_arenas_do_not_interfere() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let _guard = LocalArena::install();
                    for round in 0..50 {
                        let len = 128 + 64 * t + round;
                        let mut s = take(len);
                        s[0] = t as f32;
                        s[len - 1] = round as f32;
                        assert_eq!(s.len(), len);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "already has a LocalArena")]
    fn nested_local_arena_install_panics() {
        let _a = LocalArena::install();
        let _b = LocalArena::install();
    }

    #[test]
    fn pool_respects_the_total_byte_budget() {
        clear();
        // Drop budget-sized buffers until the total cap must reject one.
        let each = MAX_POOLED_LEN / 2;
        let fits = MAX_POOLED_TOTAL / each;
        for _ in 0..fits + 3 {
            drop(Scratch {
                buf: Vec::with_capacity(each),
            });
        }
        let (pooled, total) = {
            let pool = POOL.lock().unwrap_or_else(|p| p.into_inner());
            (
                pool.bufs.iter().map(Vec::capacity).sum::<usize>(),
                pool.total,
            )
        };
        assert!(
            pooled <= MAX_POOLED_TOTAL,
            "pool holds {pooled} elements, budget is {MAX_POOLED_TOTAL}"
        );
        assert_eq!(pooled, total, "running total must track actual capacity");
        clear();
    }
}
