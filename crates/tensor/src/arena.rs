//! Reusable scratch-buffer arena for the compute kernels.
//!
//! The MBS executor serializes a mini-batch into many small sub-batch
//! propagations (paper §3), so the per-op intermediates — GEMM packing
//! panels, the convolution's flat output staging, the data-gradient column
//! matrix — would otherwise be allocated and freed once per layer per
//! sub-batch. This arena keeps those buffers alive in a global pool:
//! [`take`] hands out a buffer (reusing a pooled allocation when one is
//! large enough) and dropping the returned [`Scratch`] recycles it.
//!
//! The pool is process-global and thread-safe; GEMM worker threads check
//! buffers in and out independently. [`stats`] exposes hit/miss counters so
//! tests can pin the reuse behavior.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers kept in the pool at once; excess buffers are simply freed.
const MAX_POOLED: usize = 64;

/// Largest single buffer worth pooling (elements). Anything bigger is
/// returned to the allocator so a one-off huge tensor cannot pin memory.
const MAX_POOLED_LEN: usize = 1 << 24; // 64 MiB of f32

static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// A pooled `f32` buffer; returns to the arena on drop.
#[derive(Debug)]
pub struct Scratch {
    buf: Vec<f32>,
}

impl Deref for Scratch {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 || self.buf.capacity() > MAX_POOLED_LEN {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        let mut pool = match POOL.lock() {
            Ok(pool) => pool,
            Err(poisoned) => poisoned.into_inner(),
        };
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    }
}

/// Checks out a buffer of exactly `len` elements with **unspecified
/// contents** (a reused allocation keeps its previous values), reusing a
/// pooled allocation when one with sufficient capacity exists.
///
/// Every current consumer — packing panels, GEMM staging (the blocked core
/// *stores* its first depth panel rather than accumulating), permuted
/// inputs — fully overwrites the buffer before reading it, so `take` skips
/// the zero-fill pass a fresh `vec![0.0; len]` would pay on every call.
/// Use [`take_zeroed`] when the contract actually needs zeros.
pub fn take(len: usize) -> Scratch {
    let reused = {
        let mut pool = match POOL.lock() {
            Ok(pool) => pool,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Best fit: the smallest pooled buffer that is large enough, so a
        // small request does not burn a large buffer.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in pool.iter().enumerate() {
            if b.capacity() >= len && best.is_none_or(|(_, cap)| b.capacity() < cap) {
                best = Some((i, b.capacity()));
            }
        }
        best.map(|(i, _)| pool.swap_remove(i))
    };
    match reused {
        Some(mut buf) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            // Shrink without writing; only growth into untouched capacity
            // pays a fill.
            if buf.len() > len {
                buf.truncate(len);
            } else {
                buf.resize(len, 0.0);
            }
            Scratch { buf }
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            Scratch {
                buf: vec![0.0; len],
            }
        }
    }
}

/// [`take`], but the returned buffer is guaranteed to be all zeros.
pub fn take_zeroed(len: usize) -> Scratch {
    let mut scratch = take(len);
    scratch.fill(0.0);
    scratch
}

/// `(hits, misses)` counters since process start (or the last [`reset_stats`]).
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zeroes the hit/miss counters (test isolation).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Drops every pooled buffer.
pub fn clear() {
    let mut pool = match POOL.lock() {
        Ok(pool) => pool,
        Err(poisoned) => poisoned.into_inner(),
    };
    pool.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_and_take_zeroed_zeroes() {
        clear();
        reset_stats();
        {
            let mut a = take(1000);
            a[0] = 7.0;
            a[999] = 3.0;
        } // recycled here
        let b = take_zeroed(500);
        assert!(
            b.iter().all(|&v| v == 0.0),
            "take_zeroed must clear reused contents"
        );
        assert_eq!(b.len(), 500);
        let (hits, _) = stats();
        assert!(hits >= 1, "second take should reuse the pooled buffer");
    }

    #[test]
    fn oversized_requests_still_work() {
        let s = take(10);
        assert_eq!(s.len(), 10);
    }
}
