//! A minimal dense f32 tensor with arena-pooled storage.

use std::fmt;

use crate::arena::{self, Scratch};

/// A dense row-major f32 tensor of arbitrary rank.
///
/// Storage is a pooled [`crate::arena`] buffer: constructing a tensor
/// reuses a recycled allocation when one is available, and dropping it
/// returns the buffer to the pool. This is the substrate's activation
/// memory planner — inside the MBS serialized training loop every layer
/// output, gradient, and cache cycles through the pool, so steady-state
/// sub-batch iterations allocate nothing new.
///
/// # Examples
///
/// ```
/// use mbs_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Scratch,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = arena::take(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            shape: self.shape.clone(),
            data,
        }
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data[..] == other.data[..]
    }
}

impl Tensor {
    /// A tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: arena::take_zeroed(len),
        }
    }

    /// A tensor with **unspecified contents** (a reused pooled buffer keeps
    /// its previous values). For operator outputs that overwrite every
    /// element before anyone reads them — it skips the zero-fill pass
    /// [`Tensor::zeros`] pays.
    pub fn uninit(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: arena::take(len),
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut t = Self::uninit(shape);
        t.data.fill(value);
        t
    }

    /// Builds a tensor from raw data (adopting the allocation; it joins the
    /// arena pool when the tensor is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match shape"
        );
        Self {
            shape: shape.to_vec(),
            data: Scratch::from_vec(data),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Flattened offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of range for dim {i} ({dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Element accessor.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Element setter.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Overwrites this tensor with a copy of `data` under `shape`, reusing
    /// the existing allocation (the executor's sub-batch loop relies on
    /// this to avoid a fresh allocation per sub-batch).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn assign(&mut self, shape: &[usize], data: &[f32]) {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match shape"
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        let buf = self.data.buf_mut();
        buf.clear();
        buf.extend_from_slice(data);
    }

    /// Consumes the tensor and returns it under a new shape — a pure
    /// metadata change, no copy (unlike [`Tensor::reshape`], which clones
    /// the storage because it only borrows). The lowered-IR runtime uses
    /// this to flatten `[n, c, h, w]` activations into the `[n, c*h*w]`
    /// view a fully-connected layer consumes, and to restore the 4-D view
    /// on the gradient coming back.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn into_reshaped(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self
    }

    /// Returns a tensor with a new shape sharing the same data.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        let mut data = arena::take(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let mut out = Tensor::uninit(&self.shape);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data[..]).zip(&other.data[..]) {
            *o = a + b;
        }
        out
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data[..]) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for v in self.data.iter_mut() {
            *v *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute difference from another tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data[..])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.get(&[2, 0]);
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::full(&[2, 2], 1.0);
        let c = a.add(&b);
        assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(c.sum(), 14.0);
        assert_eq!(c.mean(), 3.5);
        let mut d = c.clone();
        d.scale(2.0);
        assert_eq!(d.max_abs(), 10.0);
        assert_eq!(d.max_abs_diff(&c), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect());
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "reshape must preserve")]
    fn bad_reshape_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let _ = a.reshape(&[4, 2]);
    }

    #[test]
    fn into_reshaped_keeps_data_without_copying() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect());
        let ptr = a.data().as_ptr();
        let b = a.into_reshaped(&[6]);
        assert_eq!(b.shape(), &[6]);
        assert_eq!(b.data().as_ptr(), ptr, "must reuse the same storage");
    }

    #[test]
    #[should_panic(expected = "reshape must preserve")]
    fn bad_into_reshaped_panics() {
        let _ = Tensor::zeros(&[2, 3]).into_reshaped(&[7]);
    }
}
