//! Softmax + cross-entropy loss.

use crate::tensor::Tensor;

/// Row-wise softmax of logits `[n, classes]`.
pub fn softmax(logits: &Tensor) -> Tensor {
    let [n, c]: [usize; 2] = logits.shape().try_into().expect("softmax expects 2-D");
    let mut out = Tensor::zeros(&[n, c]);
    let ld = logits.data();
    let od = out.data_mut();
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        let mut denom = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            od[i * c + j] = e;
            denom += e;
        }
        for j in 0..c {
            od[i * c + j] /= denom;
        }
    }
    out
}

/// Mean cross-entropy of softmax probabilities against integer labels.
///
/// # Panics
///
/// Panics if a label is out of range.
pub fn cross_entropy(probs: &Tensor, labels: &[usize]) -> f32 {
    let [n, c]: [usize; 2] = probs.shape().try_into().expect("expects 2-D probs");
    assert_eq!(labels.len(), n, "one label per row");
    let mut loss = 0.0;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range");
        loss -= probs.get(&[i, y]).max(1e-12).ln();
    }
    loss / n as f32
}

/// Gradient of mean cross-entropy with respect to the logits:
/// `(probs − onehot) / denom`.
///
/// `denom` is normally the batch size; the MBS serialized executor passes
/// the *total mini-batch* size while propagating sub-batches so that
/// accumulated gradients equal full-batch training exactly (paper §3
/// "Data Synchronization").
pub fn softmax_xent_backward(probs: &Tensor, labels: &[usize], denom: usize) -> Tensor {
    let [n, c]: [usize; 2] = probs.shape().try_into().expect("expects 2-D probs");
    assert_eq!(labels.len(), n, "one label per row");
    let mut out = probs.clone();
    let od = out.data_mut();
    for (i, &y) in labels.iter().enumerate() {
        od[i * c + y] -= 1.0;
    }
    out.scale(1.0 / denom as f32);
    out
}

/// Number of rows whose argmax matches the label — the exact top-1 hit
/// count. `evaluate` sums this across chunks instead of reconstructing
/// hits from a rounded per-chunk [`accuracy`] (which could mis-count once
/// the chunk fraction lands on a `.5` boundary).
pub fn correct(logits: &Tensor, labels: &[usize]) -> usize {
    let [_, c]: [usize; 2] = logits.shape().try_into().expect("expects 2-D logits");
    let mut hits = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(j, _)| j)
            .expect("non-empty row");
        if pred == y {
            hits += 1;
        }
    }
    hits
}

/// Fraction of rows whose argmax matches the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let n = logits.shape()[0];
    correct(logits, labels) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let l = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let p = softmax(&l);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let l = Tensor::zeros(&[4, 4]);
        let p = softmax(&l);
        let loss = cross_entropy(&p, &[0, 1, 2, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut l = Tensor::from_vec(&[2, 3], vec![0.3, -0.7, 1.1, 0.2, 0.9, -0.4]);
        let labels = [2usize, 0];
        let g = softmax_xent_backward(&softmax(&l), &labels, 2);
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = l.data()[idx];
            l.data_mut()[idx] = orig + eps;
            let lp = cross_entropy(&softmax(&l), &labels);
            l.data_mut()[idx] = orig - eps;
            let lm = cross_entropy(&softmax(&l), &labels);
            l.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - g.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let l = Tensor::from_vec(&[2, 2], vec![2.0, 1.0, 0.0, 3.0]);
        assert_eq!(accuracy(&l, &[0, 1]), 1.0);
        assert_eq!(accuracy(&l, &[1, 1]), 0.5);
    }
}
