//! Dense matrix multiplication.
//!
//! All three variants route through the packed, blocked, multi-threaded
//! GEMM core in [`crate::ops::pack`]; the transposed variants feed the
//! packing stage a transposed *view* instead of materializing `Aᵀ`/`Bᵀ`.
//! [`matmul_a_bt_fused`] is the Linear-layer forward: bias and optional
//! ReLU fold into the GEMM's C write-back via [`Epilogue`], so the layer
//! output is produced in zero extra passes. [`matmul_naive`] keeps the
//! original triple loop (minus its broken `a == 0.0` skip, which
//! suppressed NaN/Inf propagation) as the reference the property tests and
//! benches compare against.

use crate::ops::activation::{relu_inplace, BitMask, MaskSink};
use crate::ops::pack::{fuse_enabled, gemm, gemm_fused, Epilogue, MatSrc};
use crate::tensor::Tensor;

/// `C = A · B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mbs_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_2d(a.shape(), b.shape(), false, false);
    let mut out = out_buffer(m, n, k);
    gemm(
        &MatSrc::RowMajor {
            data: a.data(),
            stride: k,
        },
        &MatSrc::RowMajor {
            data: b.data(),
            stride: n,
        },
        out.data_mut(),
        m,
        n,
        k,
    );
    out
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (the weight-gradient GEMM of
/// the paper's Tab. 1).
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_2d(a.shape(), b.shape(), true, false);
    let mut out = out_buffer(m, n, k);
    gemm(
        &MatSrc::ColMajor {
            data: a.data(),
            stride: m,
        },
        &MatSrc::RowMajor {
            data: b.data(),
            stride: n,
        },
        out.data_mut(),
        m,
        n,
        k,
    );
    out
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_2d(a.shape(), b.shape(), false, true);
    let mut out = out_buffer(m, n, k);
    gemm(
        &MatSrc::RowMajor {
            data: a.data(),
            stride: k,
        },
        &MatSrc::ColMajor {
            data: b.data(),
            stride: k,
        },
        out.data_mut(),
        m,
        n,
        k,
    );
    out
}

/// `C = A·Bᵀ + bias` row-broadcast, with an optional fused ReLU — the
/// Linear layer's forward (`A: [n, in]`, `B: [out, in]`, `bias: [out]`).
/// Honors the process-wide `MBS_FUSE` knob; returns the ReLU sign mask
/// (row-major over C) when `relu` is set.
///
/// # Panics
///
/// Panics on rank/dimension mismatch or if `bias.len()` differs from B's
/// row count.
pub fn matmul_a_bt_fused(
    a: &Tensor,
    b: &Tensor,
    bias: &[f32],
    relu: bool,
) -> (Tensor, Option<BitMask>) {
    matmul_a_bt_fused_with(a, b, bias, relu, fuse_enabled())
}

/// [`matmul_a_bt_fused`] with the fused/unfused decision made explicitly
/// (`fused = false` reproduces GEMM, then a bias pass, then
/// [`relu_inplace`] — the parity tests and the A/B bench pin that both
/// paths agree bitwise, output and mask).
pub fn matmul_a_bt_fused_with(
    a: &Tensor,
    b: &Tensor,
    bias: &[f32],
    relu: bool,
    fused: bool,
) -> (Tensor, Option<BitMask>) {
    let (m, k, n) = check_2d(a.shape(), b.shape(), false, true);
    assert_eq!(bias.len(), n, "one bias per output column");
    let asrc = MatSrc::RowMajor {
        data: a.data(),
        stride: k,
    };
    let bsrc = MatSrc::ColMajor {
        data: b.data(),
        stride: k,
    };
    let mut out = out_buffer(m, n, k);
    if fused && k > 0 {
        if relu {
            let sink = MaskSink::new(m * n);
            gemm_fused(
                &asrc,
                &bsrc,
                out.data_mut(),
                m,
                n,
                k,
                &Epilogue::BiasRelu(bias, &sink),
            );
            return (out, Some(sink.into_mask()));
        }
        gemm_fused(&asrc, &bsrc, out.data_mut(), m, n, k, &Epilogue::Bias(bias));
        return (out, None);
    }
    gemm(&asrc, &bsrc, out.data_mut(), m, n, k);
    let od = out.data_mut();
    for row in od.chunks_exact_mut(n.max(1)) {
        for (v, &bv) in row.iter_mut().zip(bias) {
            *v += bv;
        }
    }
    if relu {
        let mask = relu_inplace(&mut out);
        return (out, Some(mask));
    }
    (out, None)
}

/// GEMM output buffer: uninitialized pooled storage when the reduction
/// will overwrite every element, zeroed when `k == 0` leaves C untouched.
fn out_buffer(m: usize, n: usize, k: usize) -> Tensor {
    if k == 0 {
        Tensor::zeros(&[m, n])
    } else {
        Tensor::uninit(&[m, n])
    }
}

/// Reference triple-loop `C = A · B` (no blocking, no threading). Kept for
/// equivalence tests and as the bench baseline the blocked core is measured
/// against.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = check_2d(a.shape(), b.shape(), false, false);
    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let av = ad[i * k + kk];
            let brow = &bd[kk * n..(kk + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Validates 2-D shapes and returns `(m, k, n)` given which operands are
/// stored transposed.
fn check_2d(a: &[usize], b: &[usize], a_t: bool, b_t: bool) -> (usize, usize, usize) {
    assert_eq!(a.len(), 2, "matmul expects 2-D lhs");
    assert_eq!(b.len(), 2, "matmul expects 2-D rhs");
    let (m, k) = if a_t { (a[1], a[0]) } else { (a[0], a[1]) };
    let (k2, n) = if b_t { (b[1], b[0]) } else { (b[0], b[1]) };
    assert_eq!(k, k2, "inner dimensions must agree");
    (m, k, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(|x| (x % 7) as f32 - 3.0).collect())
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let a = seq(&[4, 5]);
        let b = seq(&[5, 3]);
        let c = matmul(&a, &b);

        // Aᵀ·B with A stored transposed.
        let mut at = Tensor::zeros(&[5, 4]);
        for i in 0..4 {
            for j in 0..5 {
                at.set(&[j, i], a.get(&[i, j]));
            }
        }
        assert!(matmul_at_b(&at, &b).max_abs_diff(&c) < 1e-5);

        // A·Bᵀ with B stored transposed.
        let mut bt = Tensor::zeros(&[3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                bt.set(&[j, i], b.get(&[i, j]));
            }
        }
        assert!(matmul_a_bt(&a, &bt).max_abs_diff(&c) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[3, 3]);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn blocked_matches_naive_beyond_tile_boundaries() {
        let a = seq(&[70, 131]);
        let b = seq(&[131, 67]);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        assert!(
            fast.max_abs_diff(&slow) < 1e-2,
            "diff {}",
            fast.max_abs_diff(&slow)
        );
    }

    #[test]
    fn nan_propagates_through_zero_lhs() {
        // The seed kernel's `av == 0.0` early-continue silently dropped
        // NaN/Inf contributions from B; the blocked core must not.
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let b = Tensor::from_vec(&[2, 1], vec![f32::NAN, 1.0]);
        assert!(matmul(&a, &b).data()[0].is_nan());
        let at = Tensor::from_vec(&[2, 1], vec![0.0, 0.0]);
        assert!(matmul_at_b(&at, &b).data()[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatch_panics() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
