//! Dense matrix multiplication.

use crate::tensor::Tensor;

/// `C = A · B` for 2-D tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics if either input is not 2-D or the inner dimensions disagree.
///
/// # Examples
///
/// ```
/// use mbs_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul expects 2-D lhs");
    assert_eq!(b.shape().len(), 2, "matmul expects 2-D rhs");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions must agree");

    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        for kk in 0..k {
            let av = ad[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul expects 2-D lhs");
    assert_eq!(b.shape().len(), 2, "matmul expects 2-D rhs");
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions must agree");

    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for kk in 0..k {
        for i in 0..m {
            let av = ad[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            let orow = &mut od[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul expects 2-D lhs");
    assert_eq!(b.shape().len(), 2, "matmul expects 2-D rhs");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "inner dimensions must agree");

    let mut out = Tensor::zeros(&[m, n]);
    let ad = a.data();
    let bd = b.data();
    let od = out.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            od[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(shape: &[usize]) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..len).map(|x| (x % 7) as f32 - 3.0).collect())
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let a = seq(&[4, 5]);
        let b = seq(&[5, 3]);
        let c = matmul(&a, &b);

        // Aᵀ·B with A stored transposed.
        let mut at = Tensor::zeros(&[5, 4]);
        for i in 0..4 {
            for j in 0..5 {
                at.set(&[j, i], a.get(&[i, j]));
            }
        }
        assert!(matmul_at_b(&at, &b).max_abs_diff(&c) < 1e-5);

        // A·Bᵀ with B stored transposed.
        let mut bt = Tensor::zeros(&[3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                bt.set(&[j, i], b.get(&[i, j]));
            }
        }
        assert!(matmul_a_bt(&a, &bt).max_abs_diff(&c) < 1e-5);
    }

    #[test]
    fn identity_is_neutral() {
        let a = seq(&[3, 3]);
        let mut eye = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatch_panics() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
