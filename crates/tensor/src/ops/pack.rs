//! Cache-blocked GEMM core with operand packing, SIMD micro-kernel
//! dispatch, and deterministic multi-threading — the compute engine behind
//! all three of the paper's per-layer training GEMMs (Tab. 1).
//!
//! # Architecture
//!
//! The classic three-level blocking (BLIS-style): the k dimension is split
//! into `KC`-deep panels, columns into `NC`-wide panels, and rows into
//! `MC`-tall blocks. For each panel the operands are *packed* into
//! contiguous tiles — A into `mr`-row strips, B into `nr`-column strips —
//! so the `mr×nr` register micro-kernel streams both operands sequentially
//! and keeps all `mr·nr` accumulators live across the whole `KC` depth.
//! The tile shape comes from the micro-kernel chosen at startup
//! ([`crate::ops::kernel`]): hand-written AVX-512 (16×16) or AVX2 (8×8)
//! FMA kernels where the CPU supports them, the portable autovectorized
//! 8×8 tile otherwise.
//!
//! Operands are described by [`MatSrc`], which abstracts *where elements
//! come from*: a row-major or column-major matrix in memory, an NCHW
//! feature map viewed as a `[pixels × channels]` matrix, or a **virtual
//! im2col matrix** generated straight from the convolution input. The last
//! one is the fusion that makes `conv2d`/`conv2d_backward_weights` stream
//! receptive-field tiles directly into the packing buffers instead of
//! materializing the full `[n·ho·wo, ci·kh·kw]` lowering (the dominant
//! memory cost the paper's data-reuse argument targets).
//!
//! # Threading, the shared B panel, and determinism
//!
//! Row blocks are distributed contiguously over scoped threads
//! (`std::thread::scope`); each thread owns a disjoint slice of C rows and
//! packs its own A strips. The packed **B panel is shared**: for every
//! `(KC, NC)` panel the workers pack disjoint strip ranges of one
//! arena-backed buffer, meet at a [`Barrier`], and then all read the same
//! panel — so B is packed exactly once per panel instead of once per
//! worker (the seed paid T× redundant B traffic at T threads).
//!
//! Thread boundaries are aligned to the `MC` grid and `MC` is a multiple
//! of every kernel's `mr`, so every output element sees the *same*
//! accumulation order regardless of thread count: results are bitwise
//! identical for 1 thread and N threads. The thread count comes from the
//! `MBS_THREADS` environment variable (default: available parallelism),
//! read once per process; the micro-kernel likewise is fixed per process
//! (`MBS_KERNEL`), because different tile shapes round differently.
//!
//! Unlike the original naive kernels there is no `a == 0.0` skip: zeros
//! are multiplied like any other value, so NaN/Inf propagate correctly and
//! the inner loop carries no data-dependent branch.
//!
//! # Reduced precision
//!
//! The packing pass is the single place operand elements are touched
//! before the micro-kernel, so it is also where reduced precision lives:
//! under [`Precision::Bf16`] (the `MBS_PREC` knob, see [`crate::prec`])
//! every packing loop encodes elements as bfloat16 while writing the
//! strips — including the cooperative shared-B-panel path, whose packed
//! bytes stay a pure function of `(B, jc, pc)` because the encoding is
//! deterministic bit arithmetic — and the micro-kernels widen on load,
//! accumulating in f32. The whole blocked core is written once, generic
//! over the packed element type, and monomorphized per precision; the f32
//! instantiation is operation-for-operation the pre-`MBS_PREC` code, so
//! f32 results are bitwise unchanged.

use std::marker::PhantomData;
use std::sync::{Barrier, OnceLock};

use crate::arena;
use crate::ops::activation::MaskSink;
use crate::ops::im2col::Conv2dCfg;
use crate::ops::kernel::{self, MicroKernel, MAX_MR, MAX_NR};
use crate::prec::{self, Precision};

/// Rows per packed A block. A multiple of every registered kernel's `mr`
/// (8 and 16), which keeps packed-strip boundaries on a global grid no
/// matter how rows are split across threads; sized for L1.
pub const MC: usize = 64;
/// Depth of one packed panel (shared by A and B; sized for L1/L2).
pub const KC: usize = 128;
/// Columns per packed B panel. A multiple of every registered kernel's
/// `nr`; sized for L2.
pub const NC: usize = 256;

/// Element-wise post-op folded into the GEMM's C write-back.
///
/// Applied by the micro-kernel's fused store ([`MicroKernel::store_tile`])
/// on the **last depth panel only** — earlier panels hold partial sums.
/// The arithmetic order matches the unfused sequence exactly (accumulate
/// the final panel, then `+= bias[j]`, then the `v > 0` clamp), so fused
/// results are bitwise identical to GEMM-then-bias-then-ReLU; the property
/// tests in `tests/fused_epilogue.rs` pin that per kernel.
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain GEMM; write-back is an unmodified store/accumulate.
    None,
    /// `C[i][j] += bias[j]` — one bias value per output column, folded
    /// into the C store (the Linear/conv bias without its own pass).
    Bias(&'a [f32]),
    /// Bias, then ReLU. The clamp happens in the C store and the 1-bit
    /// sign mask (paper §3 "Back Propagation") is emitted by the same
    /// vector compare, in C's row-major element order.
    BiasRelu(&'a [f32], &'a MaskSink),
}

/// Whether fused epilogues are enabled: the `MBS_FUSE` environment knob,
/// read once per process. Unset (or malformed, after a warning) means
/// fused; `MBS_FUSE=0` keeps the separate bias/ReLU passes for A/B
/// comparisons and parity tests (results are bitwise identical either
/// way).
pub fn fuse_enabled() -> bool {
    static FUSE: OnceLock<bool> = OnceLock::new();
    *FUSE.get_or_init(|| crate::env::flag_knob("MBS_FUSE", true))
}

/// Number of GEMM worker threads: `MBS_THREADS` if set and positive, else
/// the machine's available parallelism (malformed values warn and fall
/// back). Read once per process.
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        crate::env::positive_usize_knob("MBS_THREADS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// A packed-operand element type: `f32` (identity packing) or bf16-coded
/// `u16`. Everything a packing loop or a kernel dispatch needs is a method
/// here, so the blocked GEMM is written once and monomorphized per
/// precision — the f32 instantiation compiles to exactly the pre-precision
/// code (identity conversion, `memcpy` strip copies, the f32 tile body).
trait PackElem: Copy + Send + Sync + 'static {
    /// The strip padding value (`0.0` in both encodings).
    const ZERO: Self;
    /// Encodes one element (identity for f32, RNE bf16 otherwise).
    fn from_f32(v: f32) -> Self;
    /// `dst = encode(src)` — the converting strip copy (a `memcpy` for
    /// f32).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    fn pack_from(dst: &mut [Self], src: &[f32]);
    /// Runs the micro-kernel tile body for this element type.
    fn run_tile(kern: &MicroKernel, kc: usize, a: &[Self], b: &[Self], acc: &mut [f32]);
}

impl PackElem for f32 {
    const ZERO: Self = 0.0;

    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v
    }

    #[inline(always)]
    fn pack_from(dst: &mut [Self], src: &[f32]) {
        dst.copy_from_slice(src);
    }

    #[inline(always)]
    fn run_tile(kern: &MicroKernel, kc: usize, a: &[Self], b: &[Self], acc: &mut [f32]) {
        kern.run(kc, a, b, acc);
    }
}

impl PackElem for u16 {
    const ZERO: Self = 0;

    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        prec::f32_to_bf16(v)
    }

    #[inline(always)]
    fn pack_from(dst: &mut [Self], src: &[f32]) {
        prec::encode_slice(dst, src);
    }

    #[inline(always)]
    fn run_tile(kern: &MicroKernel, kc: usize, a: &[Self], b: &[Self], acc: &mut [f32]) {
        kern.run_bf16(kc, a, b, acc);
    }
}

/// An arena-backed packing buffer of `len` elements of `E`. The arena
/// pools f32 buffers; a bf16 buffer reinterprets one as u16 words
/// (alignment 4 ≥ 2, every bit pattern valid), so both precisions recycle
/// through the same pool and the zero-steady-state-miss pins keep holding.
struct ElemBuf<E> {
    raw: arena::Scratch,
    len: usize,
    _marker: PhantomData<E>,
}

impl<E: PackElem> ElemBuf<E> {
    fn take(len: usize) -> Self {
        let words = (len * std::mem::size_of::<E>()).div_ceil(std::mem::size_of::<f32>());
        Self {
            raw: arena::take(words),
            len,
            _marker: PhantomData,
        }
    }

    fn as_mut_ptr(&mut self) -> *mut E {
        self.raw.as_mut_ptr().cast::<E>()
    }

    fn as_mut_slice(&mut self) -> &mut [E] {
        // SAFETY: the scratch holds ≥ len·size_of::<E> bytes (see `take`),
        // f32 alignment covers both element types, and u16/f32 accept any
        // bit pattern; &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.as_mut_ptr(), self.len) }
    }
}

/// Convolution lowering geometry for the virtual im2col operand.
#[derive(Debug, Clone, Copy)]
pub struct Im2colGeom {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub ci: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output height.
    pub ho: usize,
    /// Output width.
    pub wo: usize,
    /// Kernel/stride/padding geometry.
    pub cfg: Conv2dCfg,
}

impl Im2colGeom {
    /// Geometry for input `[n, ci, h, w]` under `cfg`.
    pub fn new(n: usize, ci: usize, h: usize, w: usize, cfg: Conv2dCfg) -> Self {
        let (ho, wo) = cfg.out_extent(h, w);
        Self {
            n,
            ci,
            h,
            w,
            ho,
            wo,
            cfg,
        }
    }

    /// Rows of the virtual im2col matrix (`n·ho·wo` output pixels).
    pub fn rows(&self) -> usize {
        self.n * self.ho * self.wo
    }

    /// Columns of the virtual im2col matrix (`ci·kh·kw` filter taps).
    pub fn cols(&self) -> usize {
        self.ci * self.cfg.kernel_h * self.cfg.kernel_w
    }
}

/// Where a GEMM operand's elements come from.
///
/// Logical coordinates are always `(r, c)` in the orientation the GEMM
/// needs: A sources are indexed `(i ∈ m, p ∈ k)`, B sources `(p ∈ k,
/// j ∈ n)`.
///
/// # Examples
///
/// A transposed view multiplies without materializing the transpose:
///
/// ```
/// use mbs_tensor::ops::{gemm, MatSrc};
///
/// // A = [[1, 2], [3, 4]] stored column-major (i.e. as [[1, 3], [2, 4]]).
/// let a_t = [1.0f32, 3.0, 2.0, 4.0];
/// let b = [1.0f32, 0.0, 0.0, 1.0]; // identity
/// let mut c = [0.0f32; 4];
/// gemm(
///     &MatSrc::ColMajor { data: &a_t, stride: 2 },
///     &MatSrc::RowMajor { data: &b, stride: 2 },
///     &mut c,
///     2,
///     2,
///     2,
/// );
/// assert_eq!(c, [1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub enum MatSrc<'a> {
    /// `(r, c) → data[r·stride + c]`.
    RowMajor {
        /// Backing storage.
        data: &'a [f32],
        /// Row stride.
        stride: usize,
    },
    /// `(r, c) → data[c·stride + r]` — a transposed view, used for `Aᵀ·B`
    /// and `A·Bᵀ` without materializing the transpose.
    ColMajor {
        /// Backing storage.
        data: &'a [f32],
        /// Column stride (the stored row length).
        stride: usize,
    },
    /// An `[n, c, h, w]` feature map read as `[n·h·w pixels × c channels]`
    /// (im2col row order): `(r, ch) → data[(rₙ·c + ch)·hw + r_off]`.
    NchwRows {
        /// Backing storage.
        data: &'a [f32],
        /// Channel count.
        c: usize,
        /// Spatial extent `h·w`.
        hw: usize,
    },
    /// The transpose of [`MatSrc::NchwRows`]: `[c channels × n·h·w pixels]`.
    NchwCols {
        /// Backing storage.
        data: &'a [f32],
        /// Channel count.
        c: usize,
        /// Spatial extent `h·w`.
        hw: usize,
    },
    /// Virtual im2col lowering of a convolution input: row `r` is output
    /// pixel `r`, column `c` is filter tap `(ci, ky, kx)`. Elements are
    /// generated on the fly during packing; the full matrix never exists.
    Im2col {
        /// The convolution input `[n, ci, h, w]`.
        x: &'a [f32],
        /// Lowering geometry.
        geom: Im2colGeom,
    },
}

/// `C[m×n] = A[m×k] · B[k×n]` with the process-default thread count and
/// micro-kernel.
///
/// `c` must hold exactly `m·n` elements and is overwritten (it need not be
/// zeroed first); when `k == 0` the output is left untouched.
///
/// # Panics
///
/// Panics if `c.len() != m·n` or an operand is smaller than its logical
/// extent.
pub fn gemm(a: &MatSrc<'_>, b: &MatSrc<'_>, c: &mut [f32], m: usize, n: usize, k: usize) {
    gemm_with_threads(a, b, c, m, n, k, configured_threads());
}

/// [`gemm`] with an explicit thread count (used by the determinism tests
/// and the bench runner's scaling sweep; results are bitwise identical for
/// any `threads ≥ 1`).
///
/// # Panics
///
/// Panics if `c.len() != m·n`.
pub fn gemm_with_threads(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) {
    gemm_with_kernel(a, b, c, m, n, k, threads, kernel::selected());
}

/// [`gemm_with_threads`] with an explicit micro-kernel (used by the
/// per-kernel parity tests and the bench runner's kernel comparison; the
/// production entry points always use the process-wide
/// [`kernel::selected`] so results stay run-to-run identical).
///
/// # Panics
///
/// Panics if `c.len() != m·n`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_kernel(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kern: &MicroKernel,
) {
    gemm_fused_with(a, b, c, m, n, k, threads, kern, &Epilogue::None);
}

/// [`gemm`] with a fused [`Epilogue`] applied at the C write-back, using
/// the process-default thread count and micro-kernel.
///
/// # Panics
///
/// Panics if `c.len() != m·n`, an operand is undersized, the epilogue's
/// bias is shorter than `n`, its mask sink does not cover `m·n` elements,
/// or `k == 0` with a non-`None` epilogue (an empty reduction never
/// reaches the write-back, so the post-op could not be applied).
pub fn gemm_fused(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    epi: &Epilogue<'_>,
) {
    gemm_fused_with(
        a,
        b,
        c,
        m,
        n,
        k,
        configured_threads(),
        kernel::selected(),
        epi,
    );
}

/// [`gemm_fused`] with explicit thread count and micro-kernel (the parity
/// tests sweep both).
///
/// # Panics
///
/// As for [`gemm_fused`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused_with(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kern: &MicroKernel,
    epi: &Epilogue<'_>,
) {
    gemm_fused_prec(a, b, c, m, n, k, threads, kern, epi, prec::precision());
}

/// [`gemm_fused_with`] with an explicit operand [`Precision`] (tests and
/// the bench runner sweep both modes inside one process; the production
/// entry points always use the process-wide [`prec::precision`], so
/// results stay run-to-run identical).
///
/// Under [`Precision::Bf16`] the A/B panels are packed as bfloat16
/// (round-to-nearest-even) and the micro-kernel widens on load,
/// accumulating in f32; `c` and the epilogue stay f32. Results remain
/// bitwise invariant to `threads` per precision.
///
/// # Panics
///
/// As for [`gemm_fused`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused_prec(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kern: &MicroKernel,
    epi: &Epilogue<'_>,
    precision: Precision,
) {
    assert_eq!(c.len(), m * n, "output buffer must be m·n");
    match *epi {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            assert!(bias.len() >= n, "epilogue bias shorter than n");
            assert!(k > 0, "a fused epilogue needs a non-empty reduction");
        }
        Epilogue::BiasRelu(bias, mask) => {
            assert!(bias.len() >= n, "epilogue bias shorter than n");
            assert_eq!(mask.len(), m * n, "epilogue mask must cover C");
            assert!(k > 0, "a fused epilogue needs a non-empty reduction");
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Validate operand extents up-front, on the calling thread: a panic
    // inside a spawned worker would leave its siblings waiting forever on
    // the shared-panel barrier instead of propagating.
    check_extent(a, m, k, "A");
    check_extent(b, k, n, "B");
    // Hard asserts (not debug): a non-dividing tile would mis-slice the
    // packing buffers inside a worker thread, and a worker panic strands
    // its siblings at the shared-panel barrier. One comparison per call.
    assert_eq!(MC % kern.mr, 0, "MC must be a multiple of the tile mr");
    assert_eq!(NC % kern.nr, 0, "NC must be a multiple of the tile nr");
    match precision {
        Precision::F32 => run_shared::<f32>(a, b, c, m, n, k, threads, kern, epi),
        Precision::Bf16 => run_shared::<u16>(a, b, c, m, n, k, threads, kern, epi),
    }
}

/// Panics unless `src` can serve every access of a logical `rows × cols`
/// operand (the packing loops then never index out of bounds, so worker
/// threads cannot panic mid-panel and strand their siblings at a barrier).
fn check_extent(src: &MatSrc<'_>, rows: usize, cols: usize, which: &str) {
    let (len, need) = match *src {
        MatSrc::RowMajor { data, stride } => (data.len(), (rows - 1) * stride + cols),
        MatSrc::ColMajor { data, stride } => (data.len(), (cols - 1) * stride + rows),
        // (r, ch) → ((r/hw)·c + ch)·hw + r%hw, maximal at r = rows-1,
        // ch = cols-1.
        MatSrc::NchwRows { data, c, hw } => (
            data.len(),
            ((rows - 1) / hw * c + cols - 1) * hw + (rows - 1) % hw + 1,
        ),
        MatSrc::NchwCols { data, c, hw } => (
            data.len(),
            ((cols - 1) / hw * c + rows - 1) * hw + (cols - 1) % hw + 1,
        ),
        MatSrc::Im2col { x, geom } => {
            // The logical shape must also fit the lowering: packing maps
            // row/col indices through the geometry, so an oversized m or
            // k would index past x even when the map itself is complete.
            assert!(
                rows <= geom.rows() && cols <= geom.cols(),
                "{which} operand too small: im2col lowering is {}×{}, GEMM wants {rows}×{cols}",
                geom.rows(),
                geom.cols()
            );
            (x.len(), geom.n * geom.ci * geom.h * geom.w)
        }
    };
    assert!(
        len >= need,
        "{which} operand too small: {len} elements, logical {rows}×{cols} extent needs {need}"
    );
}

/// Raw view of the shared packed-B panel handed to every worker. Workers
/// write disjoint strip ranges before the pack barrier and only read after
/// it; the `Barrier` orders those accesses, so no two live references ever
/// alias.
struct SharedPanel<E> {
    ptr: *mut E,
    len: usize,
}

// SAFETY: access is coordinated by the barrier protocol described above;
// the raw pointer itself is just an address.
unsafe impl<E: PackElem> Sync for SharedPanel<E> {}

impl<E: PackElem> SharedPanel<E> {
    /// Mutable view of elements `[start, start + len)`.
    ///
    /// # Safety
    ///
    /// The caller must be the only worker touching that range until the
    /// next barrier (the strip partition in [`shared_worker`] is disjoint).
    // The &self → &mut route is the point of this type: exclusivity is
    // guaranteed by the barrier protocol, not the borrow checker.
    #[allow(clippy::mut_from_ref)]
    unsafe fn strips_mut(&self, start: usize, len: usize) -> &mut [E] {
        debug_assert!(start + len <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }

    /// Shared view of the first `len` elements.
    ///
    /// # Safety
    ///
    /// Callable only between the pack barrier and the end-of-panel barrier,
    /// while no `strips_mut` view is live.
    unsafe fn panel(&self, len: usize) -> &[E] {
        debug_assert!(len <= self.len);
        std::slice::from_raw_parts(self.ptr, len)
    }
}

/// The schedule behind every GEMM: C rows are split contiguously
/// (MC-aligned) across scoped workers that cooperatively pack one shared
/// B panel per `(jc, pc)` block. At one worker the body runs inline on
/// the calling thread and the one-participant barrier waits are no-ops.
#[allow(clippy::too_many_arguments)]
fn run_shared<E: PackElem>(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    kern: &MicroKernel,
    epi: &Epilogue<'_>,
) {
    let blocks = m.div_ceil(MC);
    // The barrier size must equal the spawned worker count: both come
    // from the same `chunk_workers` clamp (`scoped_chunks` applies it
    // idempotently to the value we pass).
    let workers = chunk_workers(blocks, threads);
    let mut b_buf = ElemBuf::<E>::take(KC * NC);
    let shared = SharedPanel {
        ptr: b_buf.as_mut_ptr(),
        len: KC * NC,
    };
    let barrier = Barrier::new(workers);
    scoped_chunks(c, MC * n, blocks, workers, |t, first_block, chunk| {
        shared_worker(
            a,
            b,
            chunk,
            first_block * MC,
            n,
            k,
            t,
            workers,
            kern,
            epi,
            &shared,
            &barrier,
        );
    });
    // `b_buf` outlives every worker's panel view (the scope inside
    // `scoped_chunks` joins them) before the buffer returns to the arena.
    drop(b_buf);
}

/// One worker of the shared-panel schedule: packs its strip share of B,
/// waits for the panel to be complete, then computes its own C rows
/// (packing its own A strips). Every worker executes the same `(jc, pc)`
/// loop so the two barriers per panel always pair up across threads.
#[allow(clippy::too_many_arguments)]
fn shared_worker<E: PackElem>(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c_rows: &mut [f32],
    r0: usize,
    n: usize,
    k: usize,
    t: usize,
    threads: usize,
    kern: &MicroKernel,
    epi: &Epilogue<'_>,
    shared: &SharedPanel<E>,
    barrier: &Barrier,
) {
    let nr = kern.nr;
    let rows = c_rows.len() / n;
    let mut a_buf = ElemBuf::<E>::take(MC * KC);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let strips = nc.div_ceil(nr);
        // This worker's contiguous strip share of the panel. The packed
        // bytes are a pure function of (B, jc, pc), not of which worker
        // writes them, so the shared panel preserves bitwise determinism.
        let s_per = strips / threads;
        let s_extra = strips % threads;
        let s_lo = t * s_per + t.min(s_extra);
        let s_hi = s_lo + s_per + usize::from(t < s_extra);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            if s_hi > s_lo {
                // SAFETY: strip ranges are disjoint across workers, and no
                // worker reads the panel before the barrier below.
                let my = unsafe { shared.strips_mut(s_lo * kc * nr, (s_hi - s_lo) * kc * nr) };
                let nc_local = (nc - s_lo * nr).min((s_hi - s_lo) * nr);
                pack_b(b, my, pc, kc, jc + s_lo * nr, nc_local, nr);
            }
            barrier.wait();
            // SAFETY: every write to the panel happened before the barrier
            // (which orders them), and nobody writes again until the
            // end-of-panel barrier.
            let b_panel = unsafe { shared.panel(strips * kc * nr) };
            let last_kpanel = pc + kc == k;
            compute_block(
                a,
                b_panel,
                c_rows,
                r0,
                rows,
                n,
                jc,
                nc,
                pc,
                kc,
                last_kpanel,
                kern,
                epi,
                a_buf.as_mut_slice(),
            );
            // The panel buffer is reused for the next (jc, pc) block; no
            // worker may repack while another still reads. The last panel
            // has no successor, so its drain barrier is skipped (the
            // thread-scope join provides the final synchronization).
            let last_panel = jc + NC >= n && pc + KC >= k;
            if !last_panel {
                barrier.wait();
            }
        }
    }
}

/// Computes C rows `[r0, r0 + rows)` of one `(jc, pc)` panel given its
/// packed B, packing A strips on the fly. `c_rows` is the `rows × n` slice
/// owned by the calling worker. On the last depth panel (`last_kpanel`)
/// the epilogue — bias add, ReLU clamp, sign-mask emission — is folded
/// into the same store that writes the final sums, so no later pass ever
/// re-reads C.
#[allow(clippy::too_many_arguments)]
fn compute_block<E: PackElem>(
    a: &MatSrc<'_>,
    b_panel: &[E],
    c_rows: &mut [f32],
    r0: usize,
    rows: usize,
    n: usize,
    jc: usize,
    nc: usize,
    pc: usize,
    kc: usize,
    last_kpanel: bool,
    kern: &MicroKernel,
    epi: &Epilogue<'_>,
    a_buf: &mut [E],
) {
    let (mr, nr) = (kern.mr, kern.nr);
    // The first depth panel *stores* its tile into C, later panels
    // accumulate — so callers never pre-zero C and the store pass skips
    // C's read traffic.
    let first_panel = pc == 0;
    let fused = last_kpanel && !matches!(epi, Epilogue::None);
    let nr_strips = nc.div_ceil(nr);
    let mut acc = [0.0f32; MAX_MR * MAX_NR];
    for ic in (0..rows).step_by(MC) {
        let mc = MC.min(rows - ic);
        pack_a(a, a_buf, r0 + ic, mc, pc, kc, mr);
        let mr_strips = mc.div_ceil(mr);
        for js in 0..nr_strips {
            let b_strip = &b_panel[js * kc * nr..(js + 1) * kc * nr];
            let j_hi = nr.min(nc - js * nr);
            let j0 = jc + js * nr;
            for is in 0..mr_strips {
                let a_strip = &a_buf[is * kc * mr..(is + 1) * kc * mr];
                let i_hi = mr.min(mc - is * mr);
                E::run_tile(kern, kc, a_strip, b_strip, &mut acc);
                let row0 = ic + is * mr;
                if fused {
                    match *epi {
                        Epilogue::None => unreachable!("fused implies a post-op"),
                        Epilogue::Bias(bias) => {
                            // Bias-only fuses as an inline write-back loop:
                            // an indirect SIMD store call costs more than
                            // the one extra add this epilogue needs.
                            let bias_row = &bias[j0..j0 + j_hi];
                            for i in 0..i_hi {
                                let acc_row = &acc[i * nr..i * nr + j_hi];
                                let off = (row0 + i) * n + j0;
                                let c_row = &mut c_rows[off..off + j_hi];
                                if first_panel {
                                    for ((cv, av), bv) in
                                        c_row.iter_mut().zip(acc_row).zip(bias_row)
                                    {
                                        *cv = av + bv;
                                    }
                                } else {
                                    for ((cv, av), bv) in
                                        c_row.iter_mut().zip(acc_row).zip(bias_row)
                                    {
                                        *cv = *cv + av + bv;
                                    }
                                }
                            }
                        }
                        Epilogue::BiasRelu(bias, mask) => {
                            // One fused SIMD store covers the whole tile:
                            // bias vector and edge mask stay in registers
                            // across its rows, and the sign bits fall out
                            // of the vector compare.
                            let dst = &mut c_rows[row0 * n + j0..];
                            let mut bits = [0u32; MAX_MR];
                            kern.store_tile(
                                &acc,
                                dst,
                                n,
                                i_hi,
                                j_hi,
                                Some(&bias[j0..j0 + j_hi]),
                                !first_panel,
                                true,
                                &mut bits,
                            );
                            for (i, &row_bits) in bits.iter().enumerate().take(i_hi) {
                                mask.or_bits((r0 + row0 + i) * n + j0, row_bits, j_hi);
                            }
                        }
                    }
                    continue;
                }
                for i in 0..i_hi {
                    let acc_row = &acc[i * nr..i * nr + j_hi];
                    let off = (row0 + i) * n + j0;
                    let c_row = &mut c_rows[off..off + j_hi];
                    if first_panel {
                        c_row.copy_from_slice(acc_row);
                    } else {
                        for (cv, av) in c_row.iter_mut().zip(acc_row) {
                            *cv += av;
                        }
                    }
                }
            }
        }
    }
}

/// Workers [`scoped_chunks`] will actually run for `items` work items
/// under a requested `threads` — the single source of the clamp, so
/// callers that need the count up front (the shared-panel barrier) cannot
/// drift from the split itself.
pub(crate) fn chunk_workers(items: usize, threads: usize) -> usize {
    threads.max(1).min(items)
}

/// Worker threads a GEMM over `m` output rows actually runs when
/// `threads` are requested: the row split hands out whole `MC` blocks, so
/// small workloads cap below the request. The bench runner records this
/// next to each `thread_scaling` measurement so flat scaling on small
/// shapes is attributable to the workload, not the scheduler.
pub fn effective_workers(m: usize, threads: usize) -> usize {
    chunk_workers(m.div_ceil(MC), threads)
}

/// Splits `buf` into contiguous runs of whole `unit`-sized items (`items`
/// of them; the final item may be short) and runs `f(chunk_index,
/// first_item, chunk)` for each run on a scoped thread. The partition is a
/// pure function of `(items, threads)`, so any work whose per-item order
/// is fixed stays bitwise-deterministic for every thread count. Shared by
/// the GEMM row split ([`run_shared`]) and the
/// [`crate::ops::im2col::col2im_t`] sample split.
pub(crate) fn scoped_chunks<F>(buf: &mut [f32], unit: usize, items: usize, threads: usize, f: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if buf.is_empty() || items == 0 {
        return;
    }
    let threads = chunk_workers(items, threads);
    if threads == 1 {
        f(0, 0, buf);
        return;
    }
    let per = items / threads;
    let extra = items % threads;
    std::thread::scope(|scope| {
        let mut rest = buf;
        let mut item = 0usize;
        for t in 0..threads {
            let count = per + usize::from(t < extra);
            let len = (count * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let first = item;
            item += count;
            let f = &f;
            scope.spawn(move || f(t, first, chunk));
        }
    });
}

/// Packs A rows `[i0, i0+mc) × depth [p0, p0+kc)` into `mr`-row strips:
/// `buf[strip·kc·mr + p·mr + i]`, zero-padded to full strips. Every source
/// variant gets a specialized loop (contiguous copies or one divmod per
/// run) — the packing pass is the fused paths' only touch of the operand,
/// so its per-element cost directly bounds kernel throughput.
#[allow(clippy::too_many_arguments)]
fn pack_a<E: PackElem>(
    src: &MatSrc<'_>,
    buf: &mut [E],
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    mr: usize,
) {
    let strips = mc.div_ceil(mr);
    match *src {
        MatSrc::RowMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * mr..(s + 1) * kc * mr];
                let lanes = mr.min(mc - s * mr);
                for ii in 0..mr {
                    if ii >= lanes {
                        zero_lane(strip, kc, mr, ii);
                        continue;
                    }
                    let row = &data[(i0 + s * mr + ii) * stride + p0..][..kc];
                    for (p, &v) in row.iter().enumerate() {
                        strip[p * mr + ii] = E::from_f32(v);
                    }
                }
            }
        }
        MatSrc::ColMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * mr..(s + 1) * kc * mr];
                let lanes = mr.min(mc - s * mr);
                for p in 0..kc {
                    let col = &data[(p0 + p) * stride + i0 + s * mr..][..lanes];
                    let cell = &mut strip[p * mr..(p + 1) * mr];
                    E::pack_from(&mut cell[..lanes], col);
                    for slot in &mut cell[lanes..] {
                        *slot = E::ZERO;
                    }
                }
            }
        }
        MatSrc::NchwRows { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * mr..(s + 1) * kc * mr];
                let lanes = mr.min(mc - s * mr);
                for ii in 0..mr {
                    if ii >= lanes {
                        zero_lane(strip, kc, mr, ii);
                        continue;
                    }
                    let r = i0 + s * mr + ii;
                    let base = (r / hw) * c * hw + r % hw;
                    for p in 0..kc {
                        strip[p * mr + ii] = E::from_f32(data[base + (p0 + p) * hw]);
                    }
                }
            }
        }
        MatSrc::NchwCols { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * mr..(s + 1) * kc * mr];
                let lanes = mr.min(mc - s * mr);
                for ii in 0..mr {
                    if ii >= lanes {
                        zero_lane(strip, kc, mr, ii);
                        continue;
                    }
                    let ch = i0 + s * mr + ii;
                    let mut p = 0usize;
                    while p < kc {
                        let pix = p0 + p;
                        let off = pix % hw;
                        let run = (hw - off).min(kc - p);
                        let src_run = &data[(pix / hw * c + ch) * hw + off..][..run];
                        for (q, &v) in src_run.iter().enumerate() {
                            strip[(p + q) * mr + ii] = E::from_f32(v);
                        }
                        p += run;
                    }
                }
            }
        }
        MatSrc::Im2col { x, geom } => pack_a_im2col(x, &geom, buf, i0, mc, p0, kc, mr),
    }
}

/// Packs B depth `[p0, p0+kc) × cols [j0, j0+nc)` into `nr`-column strips:
/// `buf[strip·kc·nr + p·nr + j]`, zero-padded to full strips. Callable on
/// any strip-aligned column sub-range, which is how the shared-panel
/// workers each pack a disjoint slice of the same panel.
#[allow(clippy::too_many_arguments)]
fn pack_b<E: PackElem>(
    src: &MatSrc<'_>,
    buf: &mut [E],
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    nr: usize,
) {
    let strips = nc.div_ceil(nr);
    match *src {
        MatSrc::RowMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
                let lanes = nr.min(nc - s * nr);
                for p in 0..kc {
                    let row = &data[(p0 + p) * stride + j0 + s * nr..][..lanes];
                    let cell = &mut strip[p * nr..(p + 1) * nr];
                    E::pack_from(&mut cell[..lanes], row);
                    for slot in &mut cell[lanes..] {
                        *slot = E::ZERO;
                    }
                }
            }
        }
        MatSrc::ColMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
                let lanes = nr.min(nc - s * nr);
                for jj in 0..nr {
                    if jj >= lanes {
                        zero_lane(strip, kc, nr, jj);
                        continue;
                    }
                    let col = &data[(j0 + s * nr + jj) * stride + p0..][..kc];
                    for (p, &v) in col.iter().enumerate() {
                        strip[p * nr + jj] = E::from_f32(v);
                    }
                }
            }
        }
        MatSrc::NchwRows { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
                let lanes = nr.min(nc - s * nr);
                for p in 0..kc {
                    let r = p0 + p;
                    let base = (r / hw) * c * hw + r % hw;
                    let cell = &mut strip[p * nr..(p + 1) * nr];
                    for (jj, slot) in cell.iter_mut().enumerate() {
                        *slot = if jj < lanes {
                            E::from_f32(data[base + (j0 + s * nr + jj) * hw])
                        } else {
                            E::ZERO
                        };
                    }
                }
            }
        }
        MatSrc::NchwCols { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
                let lanes = nr.min(nc - s * nr);
                for jj in 0..nr {
                    if jj >= lanes {
                        zero_lane(strip, kc, nr, jj);
                        continue;
                    }
                    let pix = j0 + s * nr + jj;
                    let base = (pix / hw * c) * hw + pix % hw;
                    for p in 0..kc {
                        strip[p * nr + jj] = E::from_f32(data[base + (p0 + p) * hw]);
                    }
                }
            }
        }
        MatSrc::Im2col { x, geom } => pack_b_im2col(x, &geom, buf, p0, kc, j0, nc, nr),
    }
}

/// Zeroes one padding lane of a packed strip (`width` = mr or nr).
#[inline(always)]
fn zero_lane<E: PackElem>(strip: &mut [E], kc: usize, width: usize, lane: usize) {
    for p in 0..kc {
        strip[p * width + lane] = E::ZERO;
    }
}

/// Streams im2col *rows* (output pixels) into packed-A strips: the fused
/// conv-forward path.
///
/// Fast path: when a strip's `mr` pixels lie in one output row, the `mr`
/// lanes of a tap read `mr` consecutive (stride 1) or evenly strided input
/// values, so the whole tap packs as one bounds-checked copy; only strips
/// touching the padding halo or an image-row boundary fall back to the
/// per-lane loop.
#[allow(clippy::too_many_arguments)]
fn pack_a_im2col<E: PackElem>(
    x: &[f32],
    geom: &Im2colGeom,
    buf: &mut [E],
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
    mr: usize,
) {
    let runs = tap_runs(geom, p0, kc);
    let strips = mc.div_ceil(mr);
    let hw = geom.ho * geom.wo;
    let stride = geom.cfg.stride;
    for s in 0..strips {
        let strip = &mut buf[s * kc * mr..(s + 1) * kc * mr];
        let lanes = mr.min(mc - s * mr);
        let r0 = i0 + s * mr;
        // Whole strip in one (sample, output-row) pair?
        let same_row =
            lanes == mr && (r0 % geom.wo) + mr <= geom.wo && r0 / hw == (r0 + mr - 1) / hw;
        if same_row {
            let ni = r0 / hw;
            let off = r0 % hw;
            let oy = off / geom.wo;
            let ox0 = off % geom.wo;
            let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
            let ix_first0 = (ox0 * stride) as isize - geom.cfg.pad_w as isize;
            for run in &runs {
                let iy = iy0 + run.ky;
                if iy < 0 || iy as usize >= geom.h {
                    for q in 0..run.len {
                        strip[(run.start + q) * mr..(run.start + q) * mr + mr].fill(E::ZERO);
                    }
                    continue;
                }
                let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
                for q in 0..run.len {
                    let ix_first = ix_first0 + run.kx0 + q as isize;
                    let ix_last = ix_first + ((mr - 1) * stride) as isize;
                    let cell = &mut strip[(run.start + q) * mr..(run.start + q) * mr + mr];
                    if ix_first >= 0 && (ix_last as usize) < geom.w {
                        let src0 = row_base + ix_first as usize;
                        if stride == 1 {
                            E::pack_from(cell, &x[src0..src0 + mr]);
                        } else {
                            for (ii, slot) in cell.iter_mut().enumerate() {
                                *slot = E::from_f32(x[src0 + ii * stride]);
                            }
                        }
                    } else if stride == 1 {
                        // Boundary tile: zero the out-of-image lanes, copy
                        // the contiguous in-bounds span.
                        let lo = (-ix_first).clamp(0, mr as isize) as usize;
                        let hi = (geom.w as isize - ix_first).clamp(0, mr as isize) as usize;
                        cell[..lo].fill(E::ZERO);
                        cell[hi..].fill(E::ZERO);
                        if hi > lo {
                            let src0 = (row_base as isize + ix_first + lo as isize) as usize;
                            E::pack_from(&mut cell[lo..hi], &x[src0..src0 + hi - lo]);
                        }
                    } else {
                        for (ii, slot) in cell.iter_mut().enumerate() {
                            let ix = ix_first + (ii * stride) as isize;
                            *slot = if ix < 0 || ix as usize >= geom.w {
                                E::ZERO
                            } else {
                                E::from_f32(x[row_base + ix as usize])
                            };
                        }
                    }
                }
            }
            continue;
        }
        for ii in 0..mr {
            if ii >= lanes {
                zero_lane(strip, kc, mr, ii);
                continue;
            }
            let r = r0 + ii;
            let ni = r / hw;
            let off = r % hw;
            let oy = off / geom.wo;
            let ox = off % geom.wo;
            let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
            let ix0 = (ox * stride) as isize - geom.cfg.pad_w as isize;
            for run in &runs {
                let iy = iy0 + run.ky;
                if iy < 0 || iy as usize >= geom.h {
                    for q in 0..run.len {
                        strip[(run.start + q) * mr + ii] = E::ZERO;
                    }
                    continue;
                }
                let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
                let ix_first = ix0 + run.kx0;
                if ix_first >= 0 && (ix_first as usize) + run.len <= geom.w {
                    let src0 = row_base + ix_first as usize;
                    for (q, &v) in x[src0..src0 + run.len].iter().enumerate() {
                        strip[(run.start + q) * mr + ii] = E::from_f32(v);
                    }
                } else {
                    for q in 0..run.len {
                        let ix = ix_first + q as isize;
                        strip[(run.start + q) * mr + ii] = if ix < 0 || ix as usize >= geom.w {
                            E::ZERO
                        } else {
                            E::from_f32(x[row_base + ix as usize])
                        };
                    }
                }
            }
        }
    }
}

/// Streams im2col rows as a packed-B operand (rows are the *k* dimension —
/// the fused weight-gradient path `dW = dY₂dᵀ · cols(x)`).
///
/// Two passes over a panel-sized scratch buffer: pixel-major row
/// generation (contiguous writes, one bounds decision per tap run), then a
/// re-pack into `nr`-column strips as contiguous `nr`-float copies. Only
/// the `kc×nc` panel ever exists; the full lowering is never materialized.
#[allow(clippy::too_many_arguments)]
fn pack_b_im2col<E: PackElem>(
    x: &[f32],
    geom: &Im2colGeom,
    buf: &mut [E],
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
    nr: usize,
) {
    let runs = tap_runs(geom, j0, nc);
    let hw = geom.ho * geom.wo;
    let stride = geom.cfg.stride;
    let pad_w = geom.cfg.pad_w as isize;
    let mut scratch = arena::take(kc * nc);

    // Pass 1: scratch[p][·] = im2col row of pixel p0+p, taps [j0, j0+nc).
    let mut ni = (p0) / hw;
    let mut off = (p0) % hw;
    for p in 0..kc {
        let oy = off / geom.wo;
        let ox = off % geom.wo;
        let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
        let ix0 = (ox * stride) as isize - pad_w;
        let kx_lo = (-ix0).max(0);
        let kx_hi = (geom.w as isize - ix0).max(0);
        let row = &mut scratch[p * nc..(p + 1) * nc];
        for run in &runs {
            let iy = iy0 + run.ky;
            let dst = &mut row[run.start..run.start + run.len];
            if iy < 0 || iy as usize >= geom.h {
                dst.fill(0.0);
                continue;
            }
            // Valid kx sub-interval of [kx0, kx0+len).
            let lo = kx_lo.clamp(run.kx0, run.kx0 + run.len as isize);
            let hi = kx_hi.clamp(run.kx0, run.kx0 + run.len as isize);
            let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
            dst[..(lo - run.kx0) as usize].fill(0.0);
            dst[(hi - run.kx0) as usize..].fill(0.0);
            if hi > lo {
                let from = (row_base as isize + ix0 + lo) as usize;
                dst[(lo - run.kx0) as usize..(hi - run.kx0) as usize]
                    .copy_from_slice(&x[from..from + (hi - lo) as usize]);
            }
        }
        off += 1;
        if off == hw {
            off = 0;
            ni += 1;
        }
    }

    // Pass 2: strip re-pack (contiguous nr-element converting copies; the
    // f32 scratch is where bf16 encoding happens for this operand).
    let strips = nc.div_ceil(nr);
    for s in 0..strips {
        let strip = &mut buf[s * kc * nr..(s + 1) * kc * nr];
        let lanes = nr.min(nc - s * nr);
        for p in 0..kc {
            let cell = &mut strip[p * nr..(p + 1) * nr];
            E::pack_from(
                &mut cell[..lanes],
                &scratch[p * nc + s * nr..p * nc + s * nr + lanes],
            );
            cell[lanes..].fill(E::ZERO);
        }
    }
}

/// A maximal run of consecutive im2col taps sharing `(channel, ky)` — the
/// unit at which the streaming packers do bounds checks and row lookups.
struct TapRun {
    /// Offset of the run's first tap within the packed range.
    start: usize,
    /// Taps in the run (≤ `kernel_w`).
    len: usize,
    /// Input channel.
    ch: usize,
    /// Kernel row, as a signed offset for padding arithmetic.
    ky: isize,
    /// First kernel column in the run, signed.
    kx0: isize,
}

/// Decomposes taps `[first, first+count)` into [`TapRun`]s.
fn tap_runs(geom: &Im2colGeom, first: usize, count: usize) -> Vec<TapRun> {
    let (kh, kw) = (geom.cfg.kernel_h, geom.cfg.kernel_w);
    let khkw = kh * kw;
    let mut runs = Vec::with_capacity(count.div_ceil(kw) + 1);
    let mut t = 0usize;
    while t < count {
        let col = first + t;
        let ch = col / khkw;
        let rem = col % khkw;
        let ky = rem / kw;
        let kx0 = rem % kw;
        let len = (kw - kx0).min(count - t);
        runs.push(TapRun {
            start: t,
            len,
            ch,
            ky: ky as isize,
            kx0: kx0 as isize,
        });
        t += len;
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|v| ((v * 13 + salt * 7) % 19) as f32 - 9.0)
            .collect()
    }

    fn naive(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matches_naive_on_non_tile_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (7, 9, 5),
            (65, 17, 130),
            (64, 256, 128),
            (100, 3, 300),
        ] {
            let a = seq(m * k, 1);
            let b = seq(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            gemm(
                &MatSrc::RowMajor {
                    data: &a,
                    stride: k,
                },
                &MatSrc::RowMajor {
                    data: &b,
                    stride: n,
                },
                &mut c,
                m,
                n,
                k,
            );
            let expect = naive(&a, &b, m, n, k);
            for (x, y) in c.iter().zip(&expect) {
                assert!(
                    (x - y).abs() <= 1e-3 * y.abs().max(1.0),
                    "({m},{n},{k}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn thread_counts_are_bitwise_identical() {
        let (m, n, k) = (133, 37, 97);
        let a = seq(m * k, 3);
        let b = seq(k * n, 4);
        let mut c1 = vec![0.0f32; m * n];
        let mut c4 = vec![0.0f32; m * n];
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        gemm_with_threads(&asrc, &bsrc, &mut c1, m, n, k, 1);
        gemm_with_threads(&asrc, &bsrc, &mut c4, m, n, k, 4);
        assert_eq!(c1, c4, "thread count must not change results bitwise");
    }

    #[test]
    fn transposed_sources_match_explicit_transpose() {
        let (m, n, k) = (13, 11, 21);
        let a = seq(m * k, 5);
        let b = seq(k * n, 6);
        // A stored column-major ([k, m] layout).
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm(
            &MatSrc::ColMajor {
                data: &at,
                stride: m,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: n,
            },
            &mut c,
            m,
            n,
            k,
        );
        let expect = naive(&a, &b, m, n, k);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0));
        }
    }

    #[test]
    fn nchw_sources_match_explicit_matrices() {
        // An [n, c, h, w] map viewed as pixels×channels (NchwRows) and
        // channels×pixels (NchwCols), exercised as BOTH the A and B
        // operand against explicitly materialized matrices.
        let (n, c, h, w) = (3usize, 5usize, 4usize, 3usize);
        let hw = h * w;
        let pixels = n * hw;
        let map: Vec<f32> = (0..n * c * hw).map(|v| (v % 13) as f32 - 6.0).collect();
        // rows[pixel][ch] and its transpose, materialized.
        let mut rows = vec![0.0f32; pixels * c];
        for r in 0..pixels {
            for ch in 0..c {
                rows[r * c + ch] = map[(r / hw * c + ch) * hw + r % hw];
            }
        }
        let other = seq(pixels * 7, 9); // shared dense operand

        // NchwRows as A ([pixels, c] · [c, 7]).
        let w2: Vec<f32> = other[..c * 7].to_vec();
        let mut got = vec![0.0f32; pixels * 7];
        let mut want = vec![0.0f32; pixels * 7];
        gemm(
            &MatSrc::NchwRows { data: &map, c, hw },
            &MatSrc::RowMajor {
                data: &w2,
                stride: 7,
            },
            &mut got,
            pixels,
            7,
            c,
        );
        gemm(
            &MatSrc::RowMajor {
                data: &rows,
                stride: c,
            },
            &MatSrc::RowMajor {
                data: &w2,
                stride: 7,
            },
            &mut want,
            pixels,
            7,
            c,
        );
        assert_eq!(got, want, "NchwRows as A");

        // NchwCols as A ([c, pixels] · [pixels, 7]).
        let mut got = vec![0.0f32; c * 7];
        let mut want = vec![0.0f32; c * 7];
        gemm(
            &MatSrc::NchwCols { data: &map, c, hw },
            &MatSrc::RowMajor {
                data: &other,
                stride: 7,
            },
            &mut got,
            c,
            7,
            pixels,
        );
        gemm(
            &MatSrc::ColMajor {
                data: &rows,
                stride: c,
            },
            &MatSrc::RowMajor {
                data: &other,
                stride: 7,
            },
            &mut want,
            c,
            7,
            pixels,
        );
        assert_eq!(got, want, "NchwCols as A");

        // NchwRows as B ([7, pixels] · [pixels, c]).
        let mut got = vec![0.0f32; 7 * c];
        let mut want = vec![0.0f32; 7 * c];
        gemm(
            &MatSrc::ColMajor {
                data: &other,
                stride: 7,
            },
            &MatSrc::NchwRows { data: &map, c, hw },
            &mut got,
            7,
            c,
            pixels,
        );
        gemm(
            &MatSrc::ColMajor {
                data: &other,
                stride: 7,
            },
            &MatSrc::RowMajor {
                data: &rows,
                stride: c,
            },
            &mut want,
            7,
            c,
            pixels,
        );
        assert_eq!(got, want, "NchwRows as B");

        // NchwCols as B ([7, c] · [c, pixels]).
        let a7: Vec<f32> = other[..7 * c].to_vec();
        let mut got = vec![0.0f32; 7 * pixels];
        let mut want = vec![0.0f32; 7 * pixels];
        gemm(
            &MatSrc::RowMajor {
                data: &a7,
                stride: c,
            },
            &MatSrc::NchwCols { data: &map, c, hw },
            &mut got,
            7,
            pixels,
            c,
        );
        gemm(
            &MatSrc::RowMajor {
                data: &a7,
                stride: c,
            },
            &MatSrc::ColMajor {
                data: &rows,
                stride: c,
            },
            &mut want,
            7,
            pixels,
            c,
        );
        assert_eq!(got, want, "NchwCols as B");
    }

    #[test]
    fn zero_operands_propagate_nan() {
        // The old kernels skipped a==0.0, silently dropping NaN/Inf in B.
        let a = vec![0.0f32, 0.0];
        let b = vec![f32::NAN, 1.0];
        let mut c = vec![0.0f32; 1];
        gemm(
            &MatSrc::RowMajor {
                data: &a,
                stride: 2,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: 1,
            },
            &mut c,
            1,
            1,
            2,
        );
        assert!(c[0].is_nan(), "0·NaN must propagate, got {}", c[0]);
    }

    #[test]
    fn overwrites_existing_output() {
        let a = vec![1.0f32];
        let b = vec![2.0f32];
        let mut c = vec![5.0f32];
        gemm(
            &MatSrc::RowMajor {
                data: &a,
                stride: 1,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: 1,
            },
            &mut c,
            1,
            1,
            1,
        );
        assert_eq!(c[0], 2.0, "gemm overwrites stale output contents");
    }

    #[test]
    #[should_panic(expected = "A operand too small")]
    fn undersized_operand_panics_on_the_calling_thread() {
        // Validated before any worker spawns: a panic inside a worker
        // would strand its siblings at the shared-panel barrier (hang,
        // not panic).
        let a = vec![0.0f32; 10]; // needs 200·150
        let b = vec![0.0f32; 150 * 8];
        let mut c = vec![0.0f32; 200 * 8];
        gemm_with_threads(
            &MatSrc::RowMajor {
                data: &a,
                stride: 150,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: 8,
            },
            &mut c,
            200,
            8,
            150,
            4,
        );
    }

    #[test]
    fn every_registered_kernel_divides_the_blocking_grid() {
        // The determinism argument needs packed-strip boundaries on one
        // global grid: MC and NC must be multiples of every kernel's tile.
        // A future kernel that breaks this would otherwise only trip a
        // debug_assert (absent in release builds).
        for kern in kernel::available() {
            assert_eq!(MC % kern.mr, 0, "{}: MC % mr != 0", kern.name);
            assert_eq!(NC % kern.nr, 0, "{}: NC % nr != 0", kern.name);
        }
    }

    #[test]
    fn bf16_gemm_is_exact_on_bf16_representable_data() {
        // seq() yields integers in [-9, 9] — exactly representable in
        // bf16, so encoding is lossless and the bf16 GEMM must reproduce
        // the f32 GEMM bit-for-bit (the kernels accumulate in f32 either
        // way). Pins that reduced precision costs nothing when the data
        // already fits the format.
        let (m, n, k) = (70, 40, 150);
        let a = seq(m * k, 21);
        let b = seq(k * n, 22);
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        for kern in kernel::available() {
            let mut c32 = vec![0.0f32; m * n];
            let mut c16 = vec![0.0f32; m * n];
            gemm_fused_prec(
                &asrc,
                &bsrc,
                &mut c32,
                m,
                n,
                k,
                1,
                kern,
                &Epilogue::None,
                Precision::F32,
            );
            gemm_fused_prec(
                &asrc,
                &bsrc,
                &mut c16,
                m,
                n,
                k,
                1,
                kern,
                &Epilogue::None,
                Precision::Bf16,
            );
            assert_eq!(c32, c16, "{}", kern.name);
        }
    }

    #[test]
    fn bf16_gemm_matches_f32_within_encoding_tolerance() {
        // Non-representable data: the only error source is one RNE
        // encoding per operand element (relative 2^-8), so the result must
        // sit within a small multiple of that around the f32 answer.
        let (m, n, k) = (65, 33, 130);
        let a: Vec<f32> = (0..m * k)
            .map(|v| ((v * 13) % 19) as f32 * 0.37 - 3.3)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|v| ((v * 7) % 23) as f32 * 0.29 - 3.1)
            .collect();
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        let mut c32 = vec![0.0f32; m * n];
        let mut c16 = vec![0.0f32; m * n];
        let kern = kernel::selected();
        gemm_fused_prec(
            &asrc,
            &bsrc,
            &mut c32,
            m,
            n,
            k,
            1,
            kern,
            &Epilogue::None,
            Precision::F32,
        );
        gemm_fused_prec(
            &asrc,
            &bsrc,
            &mut c16,
            m,
            n,
            k,
            1,
            kern,
            &Epilogue::None,
            Precision::Bf16,
        );
        // Row i of C is a k-term dot product of values ≤ ~4: |error| ≲
        // 2·2^-8 · Σ|aᵢ||bⱼ| ≤ 2^-7 · k · 16. Use half that as the bound —
        // errors are signed and cancel — with slack for edge cases.
        let budget = (k as f32) * 16.0 / 256.0;
        for (i, (x, y)) in c16.iter().zip(&c32).enumerate() {
            assert!(
                (x - y).abs() <= budget,
                "idx {i}: bf16 {x} vs f32 {y} (budget {budget})"
            );
        }
    }

    #[test]
    fn bf16_thread_counts_are_bitwise_identical() {
        // The shared-B-panel protocol must preserve per-precision bitwise
        // thread invariance: packed bf16 bytes are a pure function of
        // (B, jc, pc), regardless of which worker encodes them.
        let (m, n, k) = (200, 300, 150);
        let a = seq(m * k, 31);
        let b = seq(k * n, 32);
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        let kern = kernel::selected();
        let mut c1 = vec![0.0f32; m * n];
        gemm_fused_prec(
            &asrc,
            &bsrc,
            &mut c1,
            m,
            n,
            k,
            1,
            kern,
            &Epilogue::None,
            Precision::Bf16,
        );
        for threads in [2usize, 3, 5, 8] {
            let mut cn = vec![0.0f32; m * n];
            gemm_fused_prec(
                &asrc,
                &bsrc,
                &mut cn,
                m,
                n,
                k,
                threads,
                kern,
                &Epilogue::None,
                Precision::Bf16,
            );
            assert_eq!(c1, cn, "bf16 with {threads} threads");
        }
    }

    #[test]
    fn every_kernel_and_thread_count_agrees_bitwise_per_kernel() {
        // For each registered kernel: N threads must reproduce 1 thread
        // bit-for-bit (the shared B panel must not change results).
        let (m, n, k) = (200, 300, 150);
        let a = seq(m * k, 11);
        let b = seq(k * n, 12);
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        for kern in kernel::available() {
            let mut c1 = vec![0.0f32; m * n];
            gemm_with_kernel(&asrc, &bsrc, &mut c1, m, n, k, 1, kern);
            for threads in [2usize, 3, 5, 8] {
                let mut cn = vec![0.0f32; m * n];
                gemm_with_kernel(&asrc, &bsrc, &mut cn, m, n, k, threads, kern);
                assert_eq!(c1, cn, "{} with {threads} threads", kern.name);
            }
        }
    }
}
