//! Register/cache-blocked GEMM core with operand packing and deterministic
//! multi-threading — the compute engine behind all three of the paper's
//! per-layer training GEMMs (Tab. 1).
//!
//! # Architecture
//!
//! The classic three-level blocking (BLIS-style): the k dimension is split
//! into `KC`-deep panels, columns into `NC`-wide panels, and rows into
//! `MC`-tall blocks. For each panel the operands are *packed* into
//! contiguous tiles — A into `MR`-row strips, B into `NR`-column strips — so
//! the `MR×NR` register micro-kernel streams both operands sequentially and
//! keeps all `MR·NR` accumulators live across the whole `KC` depth.
//!
//! Operands are described by [`MatSrc`], which abstracts *where elements
//! come from*: a row-major or column-major matrix in memory, an NCHW
//! feature map viewed as a `[pixels × channels]` matrix, or a **virtual
//! im2col matrix** generated straight from the convolution input. The last
//! one is the fusion that makes `conv2d`/`conv2d_backward_weights` stream
//! receptive-field tiles directly into the packing buffers instead of
//! materializing the full `[n·ho·wo, ci·kh·kw]` lowering (the dominant
//! memory cost the paper's data-reuse argument targets).
//!
//! # Threading and determinism
//!
//! Row blocks are distributed contiguously over scoped threads
//! (`std::thread::scope`); each thread owns a disjoint slice of C rows and
//! packs its own panels. Thread boundaries are aligned to the `MC` grid, so
//! every output element sees the *same* accumulation order regardless of
//! thread count: results are bitwise identical for 1 thread and N threads.
//! The thread count comes from the `MBS_THREADS` environment variable
//! (default: available parallelism), read once per process.
//!
//! Unlike the previous naive kernels there is no `a == 0.0` skip: zeros are
//! multiplied like any other value, so NaN/Inf propagate correctly and the
//! inner loop carries no data-dependent branch.

use std::sync::OnceLock;

use crate::arena;
use crate::ops::im2col::Conv2dCfg;

/// Micro-kernel rows (A strip height).
pub const MR: usize = 8;
/// Micro-kernel columns (B strip width). The 8×8 tile keeps the 64-float
/// accumulator inside LLVM's scalar-replacement limit, so it is promoted
/// to vector registers on both AVX2 and AVX-512 targets; larger tiles
/// (tested: 8×16, 16×16, 8×32, 4×16) either spill the tile to the stack
/// (~10× slower) or shrink the packing fast path.
pub const NR: usize = 8;
/// Rows per packed A block (multiple of `MR`; sized for L1).
pub const MC: usize = 64;
/// Depth of one packed panel (shared by A and B; sized for L1/L2).
pub const KC: usize = 128;
/// Columns per packed B panel (multiple of `NR`; sized for L2).
pub const NC: usize = 256;

/// Number of GEMM worker threads: `MBS_THREADS` if set and positive, else
/// the machine's available parallelism. Read once per process.
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("MBS_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Convolution lowering geometry for the virtual im2col operand.
#[derive(Debug, Clone, Copy)]
pub struct Im2colGeom {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub ci: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output height.
    pub ho: usize,
    /// Output width.
    pub wo: usize,
    /// Kernel/stride/padding geometry.
    pub cfg: Conv2dCfg,
}

impl Im2colGeom {
    /// Geometry for input `[n, ci, h, w]` under `cfg`.
    pub fn new(n: usize, ci: usize, h: usize, w: usize, cfg: Conv2dCfg) -> Self {
        let (ho, wo) = cfg.out_extent(h, w);
        Self {
            n,
            ci,
            h,
            w,
            ho,
            wo,
            cfg,
        }
    }

    /// Rows of the virtual im2col matrix (`n·ho·wo` output pixels).
    pub fn rows(&self) -> usize {
        self.n * self.ho * self.wo
    }

    /// Columns of the virtual im2col matrix (`ci·kh·kw` filter taps).
    pub fn cols(&self) -> usize {
        self.ci * self.cfg.kernel_h * self.cfg.kernel_w
    }
}

/// Where a GEMM operand's elements come from.
///
/// Logical coordinates are always `(r, c)` in the orientation the GEMM
/// needs: A sources are indexed `(i ∈ m, p ∈ k)`, B sources `(p ∈ k,
/// j ∈ n)`.
#[derive(Debug, Clone, Copy)]
pub enum MatSrc<'a> {
    /// `(r, c) → data[r·stride + c]`.
    RowMajor {
        /// Backing storage.
        data: &'a [f32],
        /// Row stride.
        stride: usize,
    },
    /// `(r, c) → data[c·stride + r]` — a transposed view, used for `Aᵀ·B`
    /// and `A·Bᵀ` without materializing the transpose.
    ColMajor {
        /// Backing storage.
        data: &'a [f32],
        /// Column stride (the stored row length).
        stride: usize,
    },
    /// An `[n, c, h, w]` feature map read as `[n·h·w pixels × c channels]`
    /// (im2col row order): `(r, ch) → data[(rₙ·c + ch)·hw + r_off]`.
    NchwRows {
        /// Backing storage.
        data: &'a [f32],
        /// Channel count.
        c: usize,
        /// Spatial extent `h·w`.
        hw: usize,
    },
    /// The transpose of [`MatSrc::NchwRows`]: `[c channels × n·h·w pixels]`.
    NchwCols {
        /// Backing storage.
        data: &'a [f32],
        /// Channel count.
        c: usize,
        /// Spatial extent `h·w`.
        hw: usize,
    },
    /// Virtual im2col lowering of a convolution input: row `r` is output
    /// pixel `r`, column `c` is filter tap `(ci, ky, kx)`. Elements are
    /// generated on the fly during packing; the full matrix never exists.
    Im2col {
        /// The convolution input `[n, ci, h, w]`.
        x: &'a [f32],
        /// Lowering geometry.
        geom: Im2colGeom,
    },
}

/// `C[m×n] = A[m×k] · B[k×n]` with the process-default thread count.
///
/// `c` must hold exactly `m·n` elements and is overwritten (it need not be
/// zeroed first); when `k == 0` the output is left untouched.
///
/// # Panics
///
/// Panics if `c.len() != m·n` or an operand is smaller than its logical
/// extent.
pub fn gemm(a: &MatSrc<'_>, b: &MatSrc<'_>, c: &mut [f32], m: usize, n: usize, k: usize) {
    gemm_with_threads(a, b, c, m, n, k, configured_threads());
}

/// [`gemm`] with an explicit thread count (used by the determinism tests;
/// results are bitwise identical for any `threads ≥ 1`).
///
/// # Panics
///
/// Panics if `c.len() != m·n`.
pub fn gemm_with_threads(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) {
    assert_eq!(c.len(), m * n, "output buffer must be m·n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Contiguous MC-aligned row ranges per thread: alignment to the global
    // MC grid keeps the per-element accumulation order identical to the
    // single-threaded schedule (bitwise determinism).
    let blocks = m.div_ceil(MC);
    scoped_chunks(c, MC * n, blocks, threads, |first_block, chunk| {
        let rows = chunk.len() / n;
        worker(a, b, chunk, first_block * MC, rows, n, k);
    });
}

/// Splits `buf` into contiguous runs of whole `unit`-sized items (`items`
/// of them; the final item may be short) and runs `f(first_item, chunk)`
/// for each run on a scoped thread. The partition is a pure function of
/// `(items, threads)`, so any work whose per-item order is fixed stays
/// bitwise-deterministic for every thread count. Shared by the GEMM row
/// split and the [`crate::ops::im2col::col2im_t`] sample split.
pub(crate) fn scoped_chunks<F>(buf: &mut [f32], unit: usize, items: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if buf.is_empty() || items == 0 {
        return;
    }
    let threads = threads.max(1).min(items);
    if threads == 1 {
        f(0, buf);
        return;
    }
    let per = items / threads;
    let extra = items % threads;
    std::thread::scope(|scope| {
        let mut rest = buf;
        let mut item = 0usize;
        for t in 0..threads {
            let count = per + usize::from(t < extra);
            let len = (count * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let first = item;
            item += count;
            let f = &f;
            scope.spawn(move || f(first, chunk));
        }
    });
}

/// Computes rows `[r0, r0+rows)` of C into `c_rows` (a `rows×n` slice).
fn worker(
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    c_rows: &mut [f32],
    r0: usize,
    rows: usize,
    n: usize,
    k: usize,
) {
    let mut a_buf = arena::take(MC * KC);
    let mut b_buf = arena::take(KC * NC);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nr_strips = nc.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // The first depth panel *stores* its tile into C, later panels
            // accumulate — so callers never pre-zero C and the store pass
            // skips C's read traffic.
            let first_panel = pc == 0;
            pack_b(b, &mut b_buf, pc, kc, jc, nc);
            for ic in (0..rows).step_by(MC) {
                let mc = MC.min(rows - ic);
                pack_a(a, &mut a_buf, r0 + ic, mc, pc, kc);
                let mr_strips = mc.div_ceil(MR);
                for js in 0..nr_strips {
                    let b_strip = &b_buf[js * kc * NR..(js + 1) * kc * NR];
                    let j_hi = NR.min(nc - js * NR);
                    for is in 0..mr_strips {
                        let a_strip = &a_buf[is * kc * MR..(is + 1) * kc * MR];
                        let i_hi = MR.min(mc - is * MR);
                        let mut acc = [[0.0f32; NR]; MR];
                        micro_kernel(kc, a_strip, b_strip, &mut acc);
                        for (i, acc_row) in acc.iter().enumerate().take(i_hi) {
                            let off = (ic + is * MR + i) * n + jc + js * NR;
                            let c_row = &mut c_rows[off..off + j_hi];
                            if first_panel {
                                for (cv, av) in c_row.iter_mut().zip(acc_row) {
                                    *cv = *av;
                                }
                            } else {
                                for (cv, av) in c_row.iter_mut().zip(acc_row) {
                                    *cv += av;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The `MR×NR` register tile: accumulates `kc` outer products from packed
/// strips. `a` is `kc×MR` (strip-major), `b` is `kc×NR`.
#[inline(always)]
fn micro_kernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        for (ai, row) in av.iter().zip(acc.iter_mut()) {
            for (slot, bj) in row.iter_mut().zip(bv) {
                *slot += ai * bj;
            }
        }
    }
}

/// Packs A rows `[i0, i0+mc) × depth [p0, p0+kc)` into `MR`-row strips:
/// `buf[strip·kc·MR + p·MR + i]`, zero-padded to full strips. Every source
/// variant gets a specialized loop (contiguous copies or one divmod per
/// run) — the packing pass is the fused paths' only touch of the operand,
/// so its per-element cost directly bounds kernel throughput.
fn pack_a(src: &MatSrc<'_>, buf: &mut [f32], i0: usize, mc: usize, p0: usize, kc: usize) {
    let strips = mc.div_ceil(MR);
    match *src {
        MatSrc::RowMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
                let lanes = MR.min(mc - s * MR);
                for ii in 0..MR {
                    if ii >= lanes {
                        zero_lane(strip, kc, MR, ii);
                        continue;
                    }
                    let row = &data[(i0 + s * MR + ii) * stride + p0..][..kc];
                    for (p, &v) in row.iter().enumerate() {
                        strip[p * MR + ii] = v;
                    }
                }
            }
        }
        MatSrc::ColMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
                let lanes = MR.min(mc - s * MR);
                for p in 0..kc {
                    let col = &data[(p0 + p) * stride + i0 + s * MR..][..lanes];
                    let cell = &mut strip[p * MR..(p + 1) * MR];
                    cell[..lanes].copy_from_slice(col);
                    for slot in &mut cell[lanes..] {
                        *slot = 0.0;
                    }
                }
            }
        }
        MatSrc::NchwRows { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
                let lanes = MR.min(mc - s * MR);
                for ii in 0..MR {
                    if ii >= lanes {
                        zero_lane(strip, kc, MR, ii);
                        continue;
                    }
                    let r = i0 + s * MR + ii;
                    let base = (r / hw) * c * hw + r % hw;
                    for p in 0..kc {
                        strip[p * MR + ii] = data[base + (p0 + p) * hw];
                    }
                }
            }
        }
        MatSrc::NchwCols { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
                let lanes = MR.min(mc - s * MR);
                for ii in 0..MR {
                    if ii >= lanes {
                        zero_lane(strip, kc, MR, ii);
                        continue;
                    }
                    let ch = i0 + s * MR + ii;
                    let mut p = 0usize;
                    while p < kc {
                        let pix = p0 + p;
                        let off = pix % hw;
                        let run = (hw - off).min(kc - p);
                        let src_run = &data[(pix / hw * c + ch) * hw + off..][..run];
                        for (q, &v) in src_run.iter().enumerate() {
                            strip[(p + q) * MR + ii] = v;
                        }
                        p += run;
                    }
                }
            }
        }
        MatSrc::Im2col { x, geom } => pack_a_im2col(x, &geom, buf, i0, mc, p0, kc),
    }
}

/// Packs B depth `[p0, p0+kc) × cols [j0, j0+nc)` into `NR`-column strips:
/// `buf[strip·kc·NR + p·NR + j]`, zero-padded to full strips.
fn pack_b(src: &MatSrc<'_>, buf: &mut [f32], p0: usize, kc: usize, j0: usize, nc: usize) {
    let strips = nc.div_ceil(NR);
    match *src {
        MatSrc::RowMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
                let lanes = NR.min(nc - s * NR);
                for p in 0..kc {
                    let row = &data[(p0 + p) * stride + j0 + s * NR..][..lanes];
                    let cell = &mut strip[p * NR..(p + 1) * NR];
                    cell[..lanes].copy_from_slice(row);
                    for slot in &mut cell[lanes..] {
                        *slot = 0.0;
                    }
                }
            }
        }
        MatSrc::ColMajor { data, stride } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
                let lanes = NR.min(nc - s * NR);
                for jj in 0..NR {
                    if jj >= lanes {
                        zero_lane(strip, kc, NR, jj);
                        continue;
                    }
                    let col = &data[(j0 + s * NR + jj) * stride + p0..][..kc];
                    for (p, &v) in col.iter().enumerate() {
                        strip[p * NR + jj] = v;
                    }
                }
            }
        }
        MatSrc::NchwRows { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
                let lanes = NR.min(nc - s * NR);
                for p in 0..kc {
                    let r = p0 + p;
                    let base = (r / hw) * c * hw + r % hw;
                    let cell = &mut strip[p * NR..(p + 1) * NR];
                    for (jj, slot) in cell.iter_mut().enumerate() {
                        *slot = if jj < lanes {
                            data[base + (j0 + s * NR + jj) * hw]
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
        MatSrc::NchwCols { data, c, hw } => {
            for s in 0..strips {
                let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
                let lanes = NR.min(nc - s * NR);
                for jj in 0..NR {
                    if jj >= lanes {
                        zero_lane(strip, kc, NR, jj);
                        continue;
                    }
                    let pix = j0 + s * NR + jj;
                    let base = (pix / hw * c) * hw + pix % hw;
                    for p in 0..kc {
                        strip[p * NR + jj] = data[base + (p0 + p) * hw];
                    }
                }
            }
        }
        MatSrc::Im2col { x, geom } => pack_b_im2col(x, &geom, buf, p0, kc, j0, nc),
    }
}

/// Zeroes one padding lane of a packed strip (`width` = MR or NR).
#[inline(always)]
fn zero_lane(strip: &mut [f32], kc: usize, width: usize, lane: usize) {
    for p in 0..kc {
        strip[p * width + lane] = 0.0;
    }
}

/// Streams im2col *rows* (output pixels) into packed-A strips: the fused
/// conv-forward path.
///
/// Fast path: when a strip's `MR` pixels lie in one output row, the `MR`
/// lanes of a tap read `MR` consecutive (stride 1) or evenly strided input
/// values, so the whole tap packs as one bounds-checked copy; only strips
/// touching the padding halo or an image-row boundary fall back to the
/// per-lane loop.
fn pack_a_im2col(
    x: &[f32],
    geom: &Im2colGeom,
    buf: &mut [f32],
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let runs = tap_runs(geom, p0, kc);
    let strips = mc.div_ceil(MR);
    let hw = geom.ho * geom.wo;
    let stride = geom.cfg.stride;
    for s in 0..strips {
        let strip = &mut buf[s * kc * MR..(s + 1) * kc * MR];
        let lanes = MR.min(mc - s * MR);
        let r0 = i0 + s * MR;
        // Whole strip in one (sample, output-row) pair?
        let same_row =
            lanes == MR && (r0 % geom.wo) + MR <= geom.wo && r0 / hw == (r0 + MR - 1) / hw;
        if same_row {
            let ni = r0 / hw;
            let off = r0 % hw;
            let oy = off / geom.wo;
            let ox0 = off % geom.wo;
            let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
            let ix_first0 = (ox0 * stride) as isize - geom.cfg.pad_w as isize;
            for run in &runs {
                let iy = iy0 + run.ky;
                if iy < 0 || iy as usize >= geom.h {
                    for q in 0..run.len {
                        strip[(run.start + q) * MR..(run.start + q) * MR + MR].fill(0.0);
                    }
                    continue;
                }
                let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
                for q in 0..run.len {
                    let ix_first = ix_first0 + run.kx0 + q as isize;
                    let ix_last = ix_first + ((MR - 1) * stride) as isize;
                    let cell = &mut strip[(run.start + q) * MR..(run.start + q) * MR + MR];
                    if ix_first >= 0 && (ix_last as usize) < geom.w {
                        let src0 = row_base + ix_first as usize;
                        if stride == 1 {
                            cell.copy_from_slice(&x[src0..src0 + MR]);
                        } else {
                            for (ii, slot) in cell.iter_mut().enumerate() {
                                *slot = x[src0 + ii * stride];
                            }
                        }
                    } else if stride == 1 {
                        // Boundary tile: zero the out-of-image lanes, copy
                        // the contiguous in-bounds span.
                        let lo = (-ix_first).clamp(0, MR as isize) as usize;
                        let hi = (geom.w as isize - ix_first).clamp(0, MR as isize) as usize;
                        cell[..lo].fill(0.0);
                        cell[hi..].fill(0.0);
                        if hi > lo {
                            let src0 = (row_base as isize + ix_first + lo as isize) as usize;
                            cell[lo..hi].copy_from_slice(&x[src0..src0 + hi - lo]);
                        }
                    } else {
                        for (ii, slot) in cell.iter_mut().enumerate() {
                            let ix = ix_first + (ii * stride) as isize;
                            *slot = if ix < 0 || ix as usize >= geom.w {
                                0.0
                            } else {
                                x[row_base + ix as usize]
                            };
                        }
                    }
                }
            }
            continue;
        }
        for ii in 0..MR {
            if ii >= lanes {
                zero_lane(strip, kc, MR, ii);
                continue;
            }
            let r = r0 + ii;
            let ni = r / hw;
            let off = r % hw;
            let oy = off / geom.wo;
            let ox = off % geom.wo;
            let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
            let ix0 = (ox * stride) as isize - geom.cfg.pad_w as isize;
            for run in &runs {
                let iy = iy0 + run.ky;
                if iy < 0 || iy as usize >= geom.h {
                    for q in 0..run.len {
                        strip[(run.start + q) * MR + ii] = 0.0;
                    }
                    continue;
                }
                let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
                let ix_first = ix0 + run.kx0;
                if ix_first >= 0 && (ix_first as usize) + run.len <= geom.w {
                    let src0 = row_base + ix_first as usize;
                    for (q, &v) in x[src0..src0 + run.len].iter().enumerate() {
                        strip[(run.start + q) * MR + ii] = v;
                    }
                } else {
                    for q in 0..run.len {
                        let ix = ix_first + q as isize;
                        strip[(run.start + q) * MR + ii] = if ix < 0 || ix as usize >= geom.w {
                            0.0
                        } else {
                            x[row_base + ix as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Streams im2col rows as a packed-B operand (rows are the *k* dimension —
/// the fused weight-gradient path `dW = dY₂dᵀ · cols(x)`).
///
/// Two passes over a panel-sized scratch buffer: pixel-major row
/// generation (contiguous writes, one bounds decision per tap run), then a
/// re-pack into `NR`-column strips as contiguous `NR`-float copies. Only
/// the `kc×nc` panel ever exists; the full lowering is never materialized.
fn pack_b_im2col(
    x: &[f32],
    geom: &Im2colGeom,
    buf: &mut [f32],
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let runs = tap_runs(geom, j0, nc);
    let hw = geom.ho * geom.wo;
    let stride = geom.cfg.stride;
    let pad_w = geom.cfg.pad_w as isize;
    let mut scratch = arena::take(kc * nc);

    // Pass 1: scratch[p][·] = im2col row of pixel p0+p, taps [j0, j0+nc).
    let mut ni = (p0) / hw;
    let mut off = (p0) % hw;
    for p in 0..kc {
        let oy = off / geom.wo;
        let ox = off % geom.wo;
        let iy0 = (oy * stride) as isize - geom.cfg.pad_h as isize;
        let ix0 = (ox * stride) as isize - pad_w;
        let kx_lo = (-ix0).max(0);
        let kx_hi = (geom.w as isize - ix0).max(0);
        let row = &mut scratch[p * nc..(p + 1) * nc];
        for run in &runs {
            let iy = iy0 + run.ky;
            let dst = &mut row[run.start..run.start + run.len];
            if iy < 0 || iy as usize >= geom.h {
                dst.fill(0.0);
                continue;
            }
            // Valid kx sub-interval of [kx0, kx0+len).
            let lo = kx_lo.clamp(run.kx0, run.kx0 + run.len as isize);
            let hi = kx_hi.clamp(run.kx0, run.kx0 + run.len as isize);
            let row_base = ((ni * geom.ci + run.ch) * geom.h + iy as usize) * geom.w;
            dst[..(lo - run.kx0) as usize].fill(0.0);
            dst[(hi - run.kx0) as usize..].fill(0.0);
            if hi > lo {
                let from = (row_base as isize + ix0 + lo) as usize;
                dst[(lo - run.kx0) as usize..(hi - run.kx0) as usize]
                    .copy_from_slice(&x[from..from + (hi - lo) as usize]);
            }
        }
        off += 1;
        if off == hw {
            off = 0;
            ni += 1;
        }
    }

    // Pass 2: strip re-pack (contiguous NR-float copies).
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let strip = &mut buf[s * kc * NR..(s + 1) * kc * NR];
        let lanes = NR.min(nc - s * NR);
        for p in 0..kc {
            let cell = &mut strip[p * NR..(p + 1) * NR];
            cell[..lanes].copy_from_slice(&scratch[p * nc + s * NR..p * nc + s * NR + lanes]);
            cell[lanes..].fill(0.0);
        }
    }
}

/// A maximal run of consecutive im2col taps sharing `(channel, ky)` — the
/// unit at which the streaming packers do bounds checks and row lookups.
struct TapRun {
    /// Offset of the run's first tap within the packed range.
    start: usize,
    /// Taps in the run (≤ `kernel_w`).
    len: usize,
    /// Input channel.
    ch: usize,
    /// Kernel row, as a signed offset for padding arithmetic.
    ky: isize,
    /// First kernel column in the run, signed.
    kx0: isize,
}

/// Decomposes taps `[first, first+count)` into [`TapRun`]s.
fn tap_runs(geom: &Im2colGeom, first: usize, count: usize) -> Vec<TapRun> {
    let (kh, kw) = (geom.cfg.kernel_h, geom.cfg.kernel_w);
    let khkw = kh * kw;
    let mut runs = Vec::with_capacity(count.div_ceil(kw) + 1);
    let mut t = 0usize;
    while t < count {
        let col = first + t;
        let ch = col / khkw;
        let rem = col % khkw;
        let ky = rem / kw;
        let kx0 = rem % kw;
        let len = (kw - kx0).min(count - t);
        runs.push(TapRun {
            start: t,
            len,
            ch,
            ky: ky as isize,
            kx0: kx0 as isize,
        });
        t += len;
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, salt: usize) -> Vec<f32> {
        (0..len)
            .map(|v| ((v * 13 + salt * 7) % 19) as f32 - 9.0)
            .collect()
    }

    fn naive(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matches_naive_on_non_tile_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (7, 9, 5),
            (65, 17, 130),
            (64, 256, 128),
            (100, 3, 300),
        ] {
            let a = seq(m * k, 1);
            let b = seq(k * n, 2);
            let mut c = vec![0.0f32; m * n];
            gemm(
                &MatSrc::RowMajor {
                    data: &a,
                    stride: k,
                },
                &MatSrc::RowMajor {
                    data: &b,
                    stride: n,
                },
                &mut c,
                m,
                n,
                k,
            );
            let expect = naive(&a, &b, m, n, k);
            for (x, y) in c.iter().zip(&expect) {
                assert!(
                    (x - y).abs() <= 1e-3 * y.abs().max(1.0),
                    "({m},{n},{k}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn thread_counts_are_bitwise_identical() {
        let (m, n, k) = (133, 37, 97);
        let a = seq(m * k, 3);
        let b = seq(k * n, 4);
        let mut c1 = vec![0.0f32; m * n];
        let mut c4 = vec![0.0f32; m * n];
        let asrc = MatSrc::RowMajor {
            data: &a,
            stride: k,
        };
        let bsrc = MatSrc::RowMajor {
            data: &b,
            stride: n,
        };
        gemm_with_threads(&asrc, &bsrc, &mut c1, m, n, k, 1);
        gemm_with_threads(&asrc, &bsrc, &mut c4, m, n, k, 4);
        assert_eq!(c1, c4, "thread count must not change results bitwise");
    }

    #[test]
    fn transposed_sources_match_explicit_transpose() {
        let (m, n, k) = (13, 11, 21);
        let a = seq(m * k, 5);
        let b = seq(k * n, 6);
        // A stored column-major ([k, m] layout).
        let mut at = vec![0.0f32; m * k];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut c = vec![0.0f32; m * n];
        gemm(
            &MatSrc::ColMajor {
                data: &at,
                stride: m,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: n,
            },
            &mut c,
            m,
            n,
            k,
        );
        let expect = naive(&a, &b, m, n, k);
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() <= 1e-3 * y.abs().max(1.0));
        }
    }

    #[test]
    fn nchw_sources_match_explicit_matrices() {
        // An [n, c, h, w] map viewed as pixels×channels (NchwRows) and
        // channels×pixels (NchwCols), exercised as BOTH the A and B
        // operand against explicitly materialized matrices.
        let (n, c, h, w) = (3usize, 5usize, 4usize, 3usize);
        let hw = h * w;
        let pixels = n * hw;
        let map: Vec<f32> = (0..n * c * hw).map(|v| (v % 13) as f32 - 6.0).collect();
        // rows[pixel][ch] and its transpose, materialized.
        let mut rows = vec![0.0f32; pixels * c];
        for r in 0..pixels {
            for ch in 0..c {
                rows[r * c + ch] = map[(r / hw * c + ch) * hw + r % hw];
            }
        }
        let other = seq(pixels * 7, 9); // shared dense operand

        // NchwRows as A ([pixels, c] · [c, 7]).
        let w2: Vec<f32> = other[..c * 7].to_vec();
        let mut got = vec![0.0f32; pixels * 7];
        let mut want = vec![0.0f32; pixels * 7];
        gemm(
            &MatSrc::NchwRows { data: &map, c, hw },
            &MatSrc::RowMajor {
                data: &w2,
                stride: 7,
            },
            &mut got,
            pixels,
            7,
            c,
        );
        gemm(
            &MatSrc::RowMajor {
                data: &rows,
                stride: c,
            },
            &MatSrc::RowMajor {
                data: &w2,
                stride: 7,
            },
            &mut want,
            pixels,
            7,
            c,
        );
        assert_eq!(got, want, "NchwRows as A");

        // NchwCols as A ([c, pixels] · [pixels, 7]).
        let mut got = vec![0.0f32; c * 7];
        let mut want = vec![0.0f32; c * 7];
        gemm(
            &MatSrc::NchwCols { data: &map, c, hw },
            &MatSrc::RowMajor {
                data: &other,
                stride: 7,
            },
            &mut got,
            c,
            7,
            pixels,
        );
        gemm(
            &MatSrc::ColMajor {
                data: &rows,
                stride: c,
            },
            &MatSrc::RowMajor {
                data: &other,
                stride: 7,
            },
            &mut want,
            c,
            7,
            pixels,
        );
        assert_eq!(got, want, "NchwCols as A");

        // NchwRows as B ([7, pixels] · [pixels, c]).
        let mut got = vec![0.0f32; 7 * c];
        let mut want = vec![0.0f32; 7 * c];
        gemm(
            &MatSrc::ColMajor {
                data: &other,
                stride: 7,
            },
            &MatSrc::NchwRows { data: &map, c, hw },
            &mut got,
            7,
            c,
            pixels,
        );
        gemm(
            &MatSrc::ColMajor {
                data: &other,
                stride: 7,
            },
            &MatSrc::RowMajor {
                data: &rows,
                stride: c,
            },
            &mut want,
            7,
            c,
            pixels,
        );
        assert_eq!(got, want, "NchwRows as B");

        // NchwCols as B ([7, c] · [c, pixels]).
        let a7: Vec<f32> = other[..7 * c].to_vec();
        let mut got = vec![0.0f32; 7 * pixels];
        let mut want = vec![0.0f32; 7 * pixels];
        gemm(
            &MatSrc::RowMajor {
                data: &a7,
                stride: c,
            },
            &MatSrc::NchwCols { data: &map, c, hw },
            &mut got,
            7,
            pixels,
            c,
        );
        gemm(
            &MatSrc::RowMajor {
                data: &a7,
                stride: c,
            },
            &MatSrc::ColMajor {
                data: &rows,
                stride: c,
            },
            &mut want,
            7,
            pixels,
            c,
        );
        assert_eq!(got, want, "NchwCols as B");
    }

    #[test]
    fn zero_operands_propagate_nan() {
        // The old kernels skipped a==0.0, silently dropping NaN/Inf in B.
        let a = vec![0.0f32, 0.0];
        let b = vec![f32::NAN, 1.0];
        let mut c = vec![0.0f32; 1];
        gemm(
            &MatSrc::RowMajor {
                data: &a,
                stride: 2,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: 1,
            },
            &mut c,
            1,
            1,
            2,
        );
        assert!(c[0].is_nan(), "0·NaN must propagate, got {}", c[0]);
    }

    #[test]
    fn overwrites_existing_output() {
        let a = vec![1.0f32];
        let b = vec![2.0f32];
        let mut c = vec![5.0f32];
        gemm(
            &MatSrc::RowMajor {
                data: &a,
                stride: 1,
            },
            &MatSrc::RowMajor {
                data: &b,
                stride: 1,
            },
            &mut c,
            1,
            1,
            1,
        );
        assert_eq!(c[0], 2.0, "gemm overwrites stale output contents");
    }
}
