//! Activation functions.
//!
//! ReLU's backward pass needs only the *sign* of the forward activation —
//! the observation MBS exploits by storing 1-bit masks instead of 16-bit
//! values (paper §3 "Back Propagation"). The mask type here mirrors that:
//! one bit per element.
//!
//! Two producers fill masks: the plain [`relu`] / [`relu_inplace`]
//! operators, and the fused GEMM epilogue
//! ([`crate::ops::pack::Epilogue::BiasRelu`]), whose SIMD write-back emits
//! sign bits straight from the compare instruction into a thread-safe
//! [`MaskSink`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::tensor::Tensor;

/// A packed 1-bit-per-element sign mask (true where the activation was
/// positive), as stored by MBS for ReLU back propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    len: usize,
    words: Vec<u64>,
}

impl BitMask {
    /// An all-false mask for `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit accessor.
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bit setter.
    pub fn set(&mut self, i: usize, v: bool) {
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Bytes needed to store the mask (the 1/16th traffic MBS pays instead
    /// of re-reading 16-bit activations).
    pub fn storage_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Raw word access for in-crate producers that accumulate bits a word
    /// at a time instead of paying a div/mod per element (`relu_inplace`,
    /// the fused conv transpose).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

/// A write-only, thread-safe sign-mask accumulator for the fused GEMM
/// epilogue.
///
/// GEMM workers own disjoint *element* ranges of C, but at 1 bit per
/// element two workers' ranges can share a boundary `u64` word — so bits
/// are published with `fetch_or`. OR is commutative and every bit is set by
/// exactly one worker, so the finished mask is deterministic regardless of
/// thread interleaving. A sink starts all-false and only ever sets bits;
/// call [`MaskSink::into_mask`] after the GEMM to freeze it into a
/// [`BitMask`].
#[derive(Debug)]
pub struct MaskSink {
    len: usize,
    words: Vec<AtomicU64>,
}

impl MaskSink {
    /// An all-false sink covering `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sink covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// ORs `count` bits (the low bits of `bits`, LSB first) into positions
    /// `[start, start + count)`. `count ≤ 32`, so the run touches at most
    /// two words — at most two atomic RMWs per micro-kernel tile row.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the sink or `count > 32`.
    pub fn or_bits(&self, start: usize, bits: u32, count: usize) {
        assert!(count <= 32, "bit runs are limited to one u32");
        assert!(start + count <= self.len, "bit run out of range");
        let bits = u64::from(bits) & ((1u64 << count) - 1);
        if bits == 0 {
            return;
        }
        let word = start / 64;
        let off = start % 64;
        self.words[word].fetch_or(bits << off, Ordering::Relaxed);
        if off + count > 64 {
            self.words[word + 1].fetch_or(bits >> (64 - off), Ordering::Relaxed);
        }
    }

    /// Freezes the sink into an immutable [`BitMask`].
    pub fn into_mask(self) -> BitMask {
        BitMask {
            len: self.len,
            words: self.words.into_iter().map(AtomicU64::into_inner).collect(),
        }
    }
}

/// ReLU forward; returns the activations and the packed sign mask.
pub fn relu(x: &Tensor) -> (Tensor, BitMask) {
    let mut y = x.clone();
    let mask = relu_inplace(&mut y);
    (y, mask)
}

/// ReLU applied **in place** on an owned tensor; returns the packed sign
/// mask. This is the path for activations the fused GEMM epilogue cannot
/// cover (e.g. post-GroupNorm ReLUs): no output tensor is allocated and
/// the clamp is a single pass over the data.
pub fn relu_inplace(x: &mut Tensor) -> BitMask {
    let mut mask = BitMask::new(x.len());
    for (chunk, word) in x.data_mut().chunks_mut(64).zip(&mut mask.words) {
        let mut bits = 0u64;
        for (i, v) in chunk.iter_mut().enumerate() {
            // Branchless clamp: keep = 1 selects v's bits, keep = 0 yields
            // +0.0 — identical to `if v > 0.0 { v } else { 0.0 }` (NaN
            // compares false and clamps to 0).
            let keep = u32::from(*v > 0.0);
            *v = f32::from_bits(v.to_bits() & keep.wrapping_neg());
            bits |= u64::from(keep) << i;
        }
        *word = bits;
    }
    mask
}

/// ReLU applied in place **without** recording a mask — the inference
/// path, where no backward pass will ever consume the sign bits and
/// building them (allocation + bit traffic) would be pure waste.
pub fn relu_clamp(x: &mut Tensor) {
    for v in x.data_mut() {
        let keep = u32::from(*v > 0.0);
        *v = f32::from_bits(v.to_bits() & keep.wrapping_neg());
    }
}

/// ReLU backward from the packed mask.
///
/// # Panics
///
/// Panics if the mask length does not match `dy`.
pub fn relu_backward(dy: &Tensor, mask: &BitMask) -> Tensor {
    assert_eq!(dy.len(), mask.len(), "mask length mismatch");
    let mut dx = Tensor::uninit(dy.shape());
    for ((out, src), &word) in dx
        .data_mut()
        .chunks_mut(64)
        .zip(dy.data().chunks(64))
        .zip(&mask.words)
    {
        for (i, (o, &g)) in out.iter_mut().zip(src).enumerate() {
            // Branchless select from the mask bit (0 ⇒ +0.0).
            let keep = ((word >> i) & 1) as u32;
            *o = f32::from_bits(g.to_bits() & keep.wrapping_neg());
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let (y, m) = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert!(!m.get(0) && !m.get(1) && m.get(2) && !m.get(3));
    }

    #[test]
    fn backward_uses_mask_only() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]);
        let (_, m) = relu(&x);
        let dy = Tensor::full(&[4], 1.0);
        let dx = relu_backward(&dy, &m);
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn mask_storage_is_one_sixteenth_of_fp16() {
        let m = BitMask::new(1024);
        assert_eq!(m.storage_bytes(), 128); // vs 2048 bytes at 16-bit
    }

    #[test]
    fn relu_inplace_matches_relu() {
        let vals: Vec<f32> = (0..200).map(|v| (v as f32 - 100.5) / 7.0).collect();
        let x = Tensor::from_vec(&[200], vals);
        let (y, m) = relu(&x);
        let mut z = x.clone();
        let m2 = relu_inplace(&mut z);
        assert_eq!(y, z);
        assert_eq!(m, m2);
    }

    #[test]
    fn mask_sink_sets_runs_across_word_boundaries() {
        let sink = MaskSink::new(130);
        sink.or_bits(0, 0b101, 3);
        sink.or_bits(60, 0b11111, 5); // straddles words 0 and 1
        sink.or_bits(128, 0b10, 2);
        let mask = sink.into_mask();
        for i in 0..130 {
            let want = matches!(i, 0 | 2 | 60..=64 | 129);
            assert_eq!(mask.get(i), want, "bit {i}");
        }
    }

    #[test]
    fn mask_sink_ignores_high_garbage_bits() {
        let sink = MaskSink::new(8);
        sink.or_bits(0, 0xFFFF_FFF0, 4); // only the low 4 bits count
        let mask = sink.into_mask();
        assert!((0..8).all(|i| !mask.get(i)));
    }

    #[test]
    fn mask_set_clear_round_trip() {
        let mut m = BitMask::new(130);
        m.set(129, true);
        assert!(m.get(129));
        m.set(129, false);
        assert!(!m.get(129));
    }
}
