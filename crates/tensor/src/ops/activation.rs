//! Activation functions.
//!
//! ReLU's backward pass needs only the *sign* of the forward activation —
//! the observation MBS exploits by storing 1-bit masks instead of 16-bit
//! values (paper §3 "Back Propagation"). The mask type here mirrors that:
//! one bit per element.

use crate::tensor::Tensor;

/// A packed 1-bit-per-element sign mask (true where the activation was
/// positive), as stored by MBS for ReLU back propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    len: usize,
    words: Vec<u64>,
}

impl BitMask {
    /// An all-false mask for `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of elements covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit accessor.
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Bit setter.
    pub fn set(&mut self, i: usize, v: bool) {
        if v {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Bytes needed to store the mask (the 1/16th traffic MBS pays instead
    /// of re-reading 16-bit activations).
    pub fn storage_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }
}

/// ReLU forward; returns the activations and the packed sign mask.
pub fn relu(x: &Tensor) -> (Tensor, BitMask) {
    let mut mask = BitMask::new(x.len());
    let data = x
        .data()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            if v > 0.0 {
                mask.set(i, true);
                v
            } else {
                0.0
            }
        })
        .collect();
    (Tensor::from_vec(x.shape(), data), mask)
}

/// ReLU backward from the packed mask.
///
/// # Panics
///
/// Panics if the mask length does not match `dy`.
pub fn relu_backward(dy: &Tensor, mask: &BitMask) -> Tensor {
    assert_eq!(dy.len(), mask.len(), "mask length mismatch");
    let data = dy
        .data()
        .iter()
        .enumerate()
        .map(|(i, &g)| if mask.get(i) { g } else { 0.0 })
        .collect();
    Tensor::from_vec(dy.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let (y, m) = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        assert!(!m.get(0) && !m.get(1) && m.get(2) && !m.get(3));
    }

    #[test]
    fn backward_uses_mask_only() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -3.0]);
        let (_, m) = relu(&x);
        let dy = Tensor::full(&[4], 1.0);
        let dx = relu_backward(&dy, &m);
        assert_eq!(dx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn mask_storage_is_one_sixteenth_of_fp16() {
        let m = BitMask::new(1024);
        assert_eq!(m.storage_bytes(), 128); // vs 2048 bytes at 16-bit
    }

    #[test]
    fn mask_set_clear_round_trip() {
        let mut m = BitMask::new(130);
        m.set(129, true);
        assert!(m.get(129));
        m.set(129, false);
        assert!(!m.get(129));
    }
}
