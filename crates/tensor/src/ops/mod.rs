//! Tensor operators: packed blocked GEMM, fused im2col convolution
//! (forward and gradients), pooling, activations, and softmax
//! cross-entropy.

pub mod activation;
pub mod concat;
pub mod conv;
pub mod im2col;
pub mod kernel;
pub mod matmul;
pub mod pack;
pub mod pool;
pub mod softmax;

pub use activation::{relu, relu_backward, relu_clamp, relu_inplace, BitMask, MaskSink};
pub use concat::{concat_channels, slice_channels};
pub use conv::{
    conv2d, conv2d_backward_data, conv2d_backward_weights, conv2d_fused, conv2d_fused_with,
    conv2d_naive,
};
pub use im2col::{col2im, col2im_slice, col2im_t, im2col, Conv2dCfg};
pub use kernel::MicroKernel;
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_fused, matmul_a_bt_fused_with, matmul_at_b, matmul_naive,
};
pub use pack::{
    configured_threads, fuse_enabled, gemm, gemm_fused, gemm_fused_prec, gemm_fused_with,
    gemm_with_kernel, gemm_with_threads, Epilogue, Im2colGeom, MatSrc,
};
pub use pool::{
    avgpool2d, avgpool2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d,
    maxpool2d_backward, maxpool2d_padded,
};
pub use softmax::{accuracy, correct, cross_entropy, softmax, softmax_xent_backward};
