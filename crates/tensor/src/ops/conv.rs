//! 2-D convolution: forward, data gradient, and weight gradient — the
//! three GEMMs of the paper's Tab. 1 — on the packed blocked GEMM core.
//!
//! The forward and weight-gradient paths are **fused**: the im2col lowering
//! of the input is a virtual [`MatSrc::Im2col`] operand whose
//! receptive-field tiles are generated directly into the GEMM packing
//! buffers, so the full `[n·ho·wo, ci·kh·kw]` column matrix never exists in
//! memory. The data gradient computes its column-gradient matrix into a
//! reusable arena buffer (its `col2im` scatter is the adjoint direction, so
//! there is no input-side lowering to elide) and scatters per sample in
//! parallel.
//!
//! [`conv2d_fused`] additionally folds a per-channel bias into the GEMM's
//! C write-back ([`Epilogue::Bias`]) and a ReLU (with its 1-bit sign mask)
//! into the flat→NCHW transpose that conv already pays — bias and
//! activation in **zero extra passes** over the output.
//!
//! [`conv2d_naive`] keeps the direct loop nest as the reference
//! implementation the equivalence tests pin everything against.

use crate::arena;
use crate::ops::activation::{relu_inplace, BitMask};
use crate::ops::im2col::{col2im_t, Conv2dCfg};
use crate::ops::pack::{
    configured_threads, fuse_enabled, gemm, gemm_fused, Epilogue, Im2colGeom, MatSrc,
};
use crate::tensor::Tensor;

fn dims(
    x: &Tensor,
    w: &Tensor,
    cfg: Conv2dCfg,
) -> (usize, usize, usize, usize, usize, usize, usize) {
    let [n, ci, h, wd]: [usize; 4] = x.shape().try_into().expect("conv expects 4-D input");
    let [co, ci2, kh, kw]: [usize; 4] = w.shape().try_into().expect("conv expects 4-D weights");
    assert_eq!(ci, ci2, "channel mismatch");
    assert_eq!(
        (kh, kw),
        (cfg.kernel_h, cfg.kernel_w),
        "kernel/config mismatch"
    );
    let (ho, wo) = cfg.out_extent(h, wd);
    (n, ci, h, wd, co, ho, wo)
}

/// Direct (loop-nest) convolution forward; reference for the fused path.
pub fn conv2d_naive(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let (n, ci, h, wd, co, ho, wo) = dims(x, w, cfg);
    let mut out = Tensor::zeros(&[n, co, ho, wo]);
    let xd = x.data();
    let wdat = w.data();
    let od = out.data_mut();
    for ni in 0..n {
        for c_out in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for c in 0..ci {
                        for ky in 0..cfg.kernel_h {
                            let iy = (oy * cfg.stride + ky) as isize - cfg.pad_h as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..cfg.kernel_w {
                                let ix = (ox * cfg.stride + kx) as isize - cfg.pad_w as isize;
                                if ix < 0 || ix as usize >= wd {
                                    continue;
                                }
                                acc += xd[((ni * ci + c) * h + iy as usize) * wd + ix as usize]
                                    * wdat[((c_out * ci + c) * cfg.kernel_h + ky) * cfg.kernel_w
                                        + kx];
                            }
                        }
                    }
                    od[((ni * co + c_out) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    out
}

/// Fused im2col + GEMM convolution forward: `y = cols(x) · Wᵀ`, where
/// `cols(x)` is a virtual operand streamed tile-by-tile into the packed-A
/// buffer (never materialized).
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::{conv2d, Conv2dCfg};
/// use mbs_tensor::Tensor;
///
/// // A 3×3 all-ones kernel over an all-ones 5×5 image (stride 1, pad 1):
/// // interior outputs see the full 9-tap window.
/// let x = Tensor::full(&[1, 1, 5, 5], 1.0);
/// let w = Tensor::full(&[1, 1, 3, 3], 1.0);
/// let y = conv2d(&x, &w, Conv2dCfg::square(3, 1, 1));
/// assert_eq!(y.shape(), &[1, 1, 5, 5]);
/// assert_eq!(y.get(&[0, 0, 2, 2]), 9.0); // interior
/// assert_eq!(y.get(&[0, 0, 0, 0]), 4.0); // corner: 2×2 window in-bounds
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
    conv2d_gemm(x, w, None, false, cfg).0
}

/// The shared conv-forward body: GEMM in im2col row order ([n·ho·wo, co],
/// with an optional per-column bias epilogue), then one cheap transpose
/// into the NCHW output (with an optional fused ReLU + sign mask). Both
/// [`conv2d`] and the fused branch of [`conv2d_fused_with`] run here.
fn conv2d_gemm(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    relu: bool,
    cfg: Conv2dCfg,
) -> (Tensor, Option<BitMask>) {
    let (n, ci, h, wd, co, ho, wo) = dims(x, w, cfg);
    let geom = Im2colGeom::new(n, ci, h, wd, cfg);
    let (m, k) = (geom.rows(), geom.cols());
    // A zero-channel input (k == 0) leaves the GEMM output untouched, so
    // that degenerate case needs the zeroed buffer (bias is routed to the
    // separate-pass path before reaching here — the epilogue needs a
    // non-empty reduction).
    debug_assert!(bias.is_none() || k > 0);
    let mut flat = if k == 0 {
        arena::take_zeroed(m * co)
    } else {
        arena::take(m * co)
    };
    let asrc = MatSrc::Im2col { x: x.data(), geom };
    let bsrc = MatSrc::ColMajor {
        data: w.data(),
        stride: k,
    };
    match bias {
        // Flat columns are output channels, so the per-channel bias is a
        // per-column GEMM epilogue.
        Some(b) => gemm_fused(&asrc, &bsrc, &mut flat, m, co, k, &Epilogue::Bias(b)),
        None => gemm(&asrc, &bsrc, &mut flat, m, co, k),
    }
    let mut out = Tensor::uninit(&[n, co, ho, wo]);
    let mask = if relu {
        Some(rows_to_nchw_relu(&flat, n, co, ho, wo, out.data_mut()))
    } else {
        rows_to_nchw(&flat, n, co, ho, wo, out.data_mut());
        None
    };
    (out, mask)
}

/// [`conv2d`] with a per-channel bias and optional ReLU fused in: the bias
/// rides the GEMM epilogue (its columns *are* output channels in im2col
/// row order), the ReLU clamp and its sign mask ride the flat→NCHW
/// transpose conv performs anyway — zero extra passes over the output.
/// Honors the process-wide `MBS_FUSE` knob; the mask (when `relu`) is in
/// NCHW element order, ready for [`crate::ops::relu_backward`].
///
/// # Panics
///
/// Panics on shape mismatches or if a provided `bias` is not one value
/// per output channel.
pub fn conv2d_fused(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    relu: bool,
    cfg: Conv2dCfg,
) -> (Tensor, Option<BitMask>) {
    conv2d_fused_with(x, w, bias, relu, cfg, fuse_enabled())
}

/// [`conv2d_fused`] with the fused/unfused decision made explicitly
/// (`fused = false` runs plain [`conv2d`], then a bias pass, then
/// [`relu_inplace`]; the parity tests pin both paths bitwise-equal).
pub fn conv2d_fused_with(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&[f32]>,
    relu: bool,
    cfg: Conv2dCfg,
    fused: bool,
) -> (Tensor, Option<BitMask>) {
    let (_, ci, _, _, co, ho, wo) = dims(x, w, cfg);
    if let Some(b) = bias {
        assert_eq!(b.len(), co, "one bias per output channel");
    }
    // A zero-channel conv has an empty reduction (k = ci·kh·kw = 0): the
    // GEMM epilogue can never fire, so route through the separate-pass
    // path — the fused/unfused parity contract covers degenerate shapes
    // too.
    let fused = fused && ci * cfg.kernel_h * cfg.kernel_w > 0;
    if !fused {
        let mut y = conv2d(x, w, cfg);
        if let Some(b) = bias {
            let hw = ho * wo;
            for (chunk, &bv) in y.data_mut().chunks_exact_mut(hw).zip(b.iter().cycle()) {
                for v in chunk {
                    *v += bv;
                }
            }
        }
        if relu {
            let mask = relu_inplace(&mut y);
            return (y, Some(mask));
        }
        return (y, None);
    }
    conv2d_gemm(x, w, bias, relu, cfg)
}

/// Gradient of the loss with respect to the convolution input:
/// `dX = col2im(dY₂d · W)`.
///
/// The GEMM produces the column gradient **transposed** (`[ci·kh·kw,
/// pixels]`, in a reusable arena buffer) because that layout makes the
/// [`col2im_t`] scatter a series of contiguous zip-adds; `dY` is read
/// in-place as a `[co × pixels]` view, so nothing else is materialized.
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::{conv2d_backward_data, Conv2dCfg};
/// use mbs_tensor::Tensor;
///
/// let dy = Tensor::full(&[2, 4, 8, 8], 1.0);
/// let w = Tensor::full(&[4, 3, 3, 3], 0.5);
/// let dx = conv2d_backward_data(&dy, &w, &[2, 3, 8, 8], Conv2dCfg::square(3, 1, 1));
/// assert_eq!(dx.shape(), &[2, 3, 8, 8]); // gradient matches the input shape
/// ```
pub fn conv2d_backward_data(dy: &Tensor, w: &Tensor, x_shape: &[usize], cfg: Conv2dCfg) -> Tensor {
    let [n, ci, h, wd]: [usize; 4] = x_shape.try_into().expect("conv expects 4-D input shape");
    let co = w.shape()[0];
    let (ho, wo) = cfg.out_extent(h, wd);
    assert_eq!(dy.shape(), &[n, co, ho, wo], "dy shape mismatch");
    let cols_w = ci * cfg.kernel_h * cfg.kernel_w;
    let pixels = n * ho * wo;
    let mut dcols_t = arena::take(cols_w * pixels);
    gemm(
        &MatSrc::ColMajor {
            data: w.data(),
            stride: cols_w,
        },
        &MatSrc::NchwCols {
            data: dy.data(),
            c: co,
            hw: ho * wo,
        },
        &mut dcols_t,
        cols_w,
        pixels,
        co,
    );
    col2im_t(&dcols_t, n, ci, h, wd, cfg, configured_threads())
}

/// Gradient of the loss with respect to the weights: `dW = dY₂dᵀ ·
/// cols(x)`. Both operands are virtual views — `dY` as a `[co × pixels]`
/// matrix and `cols(x)` as the streamed im2col lowering — so nothing is
/// materialized besides `dW` itself.
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::{conv2d_backward_weights, Conv2dCfg};
/// use mbs_tensor::Tensor;
///
/// let x = Tensor::full(&[2, 3, 8, 8], 1.0);
/// let dy = Tensor::full(&[2, 4, 8, 8], 1.0);
/// let dw = conv2d_backward_weights(&x, &dy, Conv2dCfg::square(3, 1, 1));
/// assert_eq!(dw.shape(), &[4, 3, 3, 3]); // gradient matches the weight shape
/// // The center tap sees every one of the 2·8·8 output pixels.
/// assert_eq!(dw.get(&[0, 0, 1, 1]), 128.0);
/// ```
pub fn conv2d_backward_weights(x: &Tensor, dy: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let [n, ci, h, wd]: [usize; 4] = x.shape().try_into().expect("conv expects 4-D input");
    let [n2, co, ho, wo]: [usize; 4] = dy.shape().try_into().expect("conv expects 4-D dy");
    assert_eq!(n, n2, "batch mismatch");
    let geom = Im2colGeom::new(n, ci, h, wd, cfg);
    assert_eq!((ho, wo), (geom.ho, geom.wo), "dy spatial extent mismatch");
    let cols_w = geom.cols();
    let mut dw = Tensor::zeros(&[co, ci, cfg.kernel_h, cfg.kernel_w]);
    if cfg.stride == 1 {
        // Stride-1 weight gradients are themselves a convolution: correlate
        // x (batch and channel axes swapped) with dY read as the filter
        // bank. That puts the streamed im2col operand on the A side, whose
        // packing is contiguous, and gives the micro-kernel `ci·kh·kw` rows
        // of B-panel reuse instead of just `co`.
        let hw_in = h * wd;
        let mut x_perm = arena::take(n * ci * hw_in);
        for ni in 0..n {
            for c in 0..ci {
                x_perm[(c * n + ni) * hw_in..(c * n + ni + 1) * hw_in]
                    .copy_from_slice(&x.data()[(ni * ci + c) * hw_in..(ni * ci + c + 1) * hw_in]);
            }
        }
        let swap_geom = Im2colGeom {
            n: ci,
            ci: n,
            h,
            w: wd,
            ho: cfg.kernel_h,
            wo: cfg.kernel_w,
            cfg: Conv2dCfg {
                kernel_h: ho,
                kernel_w: wo,
                stride: 1,
                pad_h: cfg.pad_h,
                pad_w: cfg.pad_w,
            },
        };
        let mut flat = arena::take(cols_w * co); // [taps, co]
        gemm(
            &MatSrc::Im2col {
                x: &x_perm,
                geom: swap_geom,
            },
            &MatSrc::NchwRows {
                data: dy.data(),
                c: co,
                hw: ho * wo,
            },
            &mut flat,
            cols_w,
            co,
            n * ho * wo,
        );
        let dwd = dw.data_mut();
        for t in 0..cols_w {
            for o in 0..co {
                dwd[o * cols_w + t] = flat[t * co + o];
            }
        }
        return dw;
    }
    gemm(
        &MatSrc::NchwCols {
            data: dy.data(),
            c: co,
            hw: ho * wo,
        },
        &MatSrc::Im2col { x: x.data(), geom },
        dw.data_mut(),
        co,
        cols_w,
        geom.rows(),
    );
    dw
}

/// `[n·h·w, c] → [n, c, h, w]` scatter into `out`.
fn rows_to_nchw(flat: &[f32], n: usize, c: usize, h: usize, w: usize, out: &mut [f32]) {
    assert_eq!(flat.len(), n * h * w * c, "row matrix size mismatch");
    assert_eq!(out.len(), flat.len(), "output size mismatch");
    let hw = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let dst = &mut out[(ni * c + ci) * hw..(ni * c + ci + 1) * hw];
            let src_base = ni * hw * c + ci;
            for (off, slot) in dst.iter_mut().enumerate() {
                *slot = flat[src_base + off * c];
            }
        }
    }
}

/// [`rows_to_nchw`] with a ReLU fused into the scatter's write: the
/// transpose is the pass conv pays anyway, so clamping there (and
/// recording the sign bits, in NCHW order, a word at a time) costs no
/// extra traversal of the output.
fn rows_to_nchw_relu(
    flat: &[f32],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    out: &mut [f32],
) -> BitMask {
    assert_eq!(flat.len(), n * h * w * c, "row matrix size mismatch");
    assert_eq!(out.len(), flat.len(), "output size mismatch");
    let hw = h * w;
    let mut mask = BitMask::new(out.len());
    let words = mask.words_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * hw;
            let dst = &mut out[base..base + hw];
            let src_base = ni * hw * c + ci;
            // The bit run [base, base + hw) is contiguous in NCHW order:
            // accumulate sign bits a word at a time.
            let mut wi = base / 64;
            let mut cur = 0u64;
            for (off, slot) in dst.iter_mut().enumerate() {
                let v = flat[src_base + off * c];
                let pos = base + off;
                // Branchless clamp: keep = 1 selects v's bits, keep = 0
                // yields +0.0 — identical to `if v > 0.0 { v } else { 0.0 }`
                // (NaN compares false and clamps to 0).
                let keep = u32::from(v > 0.0);
                *slot = f32::from_bits(v.to_bits() & keep.wrapping_neg());
                cur |= u64::from(keep) << (pos % 64);
                if pos % 64 == 63 {
                    words[wi] |= cur;
                    cur = 0;
                    wi += 1;
                }
            }
            if cur != 0 {
                words[wi] |= cur;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0)
                .collect(),
        )
    }

    #[test]
    fn fused_path_matches_naive_forward() {
        for (stride, pad) in [(1, 0), (1, 1), (2, 1)] {
            let cfg = Conv2dCfg::square(3, stride, pad);
            let x = seeded(&[2, 3, 7, 7], 1);
            let w = seeded(&[4, 3, 3, 3], 2);
            let a = conv2d_naive(&x, &w, cfg);
            let b = conv2d(&x, &w, cfg);
            assert!(a.max_abs_diff(&b) < 1e-4, "stride {stride} pad {pad}");
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let x = seeded(&[1, 2, 5, 5], 3);
        let mut w = seeded(&[3, 2, 3, 3], 4);
        let dy = seeded(&[1, 3, 5, 5], 5);

        let dw = conv2d_backward_weights(&x, &dy, cfg);
        // Check a handful of weight coordinates against (L(w+e) - L(w-e)) /
        // 2e where L = <conv(x, w), dy>.
        let eps = 1e-2;
        for idx in [0usize, 7, 23, 41] {
            let orig = w.data()[idx];
            w.data_mut()[idx] = orig + eps;
            let lp: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            w.data_mut()[idx] = orig - eps;
            let lm: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            w.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dw.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} analytic {}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn data_gradient_matches_finite_difference() {
        let cfg = Conv2dCfg::square(3, 2, 1);
        let mut x = seeded(&[1, 2, 6, 6], 6);
        let w = seeded(&[3, 2, 3, 3], 7);
        let dy = seeded(&[1, 3, 3, 3], 8);

        let dx = conv2d_backward_data(&dy, &w, x.shape(), cfg);
        let eps = 1e-2;
        for idx in [0usize, 11, 35, 71] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig - eps;
            let lm: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_is_linear_in_input() {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let a = seeded(&[1, 2, 5, 5], 9);
        let b = seeded(&[1, 2, 5, 5], 10);
        let w = seeded(&[2, 2, 3, 3], 11);
        let lhs = conv2d(&a.add(&b), &w, cfg);
        let rhs = conv2d(&a, &w, cfg).add(&conv2d(&b, &w, cfg));
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn non_square_inputs_and_kernels_work() {
        let cfg = Conv2dCfg {
            kernel_h: 3,
            kernel_w: 2,
            stride: 1,
            pad_h: 1,
            pad_w: 0,
        };
        let x = seeded(&[2, 3, 9, 6], 12);
        let w = seeded(&[5, 3, 3, 2], 13);
        let a = conv2d_naive(&x, &w, cfg);
        let b = conv2d(&x, &w, cfg);
        assert!(a.max_abs_diff(&b) < 1e-4);
    }
}
