//! 2-D convolution: forward (direct and im2col), data gradient, and weight
//! gradient — the three GEMMs of the paper's Tab. 1, implemented on the CPU
//! substrate.

use crate::ops::im2col::{col2im, im2col, Conv2dCfg};
use crate::ops::matmul::{matmul, matmul_a_bt, matmul_at_b};
use crate::tensor::Tensor;

fn dims(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> (usize, usize, usize, usize, usize, usize, usize) {
    let [n, ci, h, wd]: [usize; 4] = x.shape().try_into().expect("conv expects 4-D input");
    let [co, ci2, kh, kw]: [usize; 4] =
        w.shape().try_into().expect("conv expects 4-D weights");
    assert_eq!(ci, ci2, "channel mismatch");
    assert_eq!((kh, kw), (cfg.kernel_h, cfg.kernel_w), "kernel/config mismatch");
    let (ho, wo) = cfg.out_extent(h, wd);
    (n, ci, h, wd, co, ho, wo)
}

/// Direct (loop-nest) convolution forward; reference for the im2col path.
pub fn conv2d_naive(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let (n, ci, h, wd, co, ho, wo) = dims(x, w, cfg);
    let mut out = Tensor::zeros(&[n, co, ho, wo]);
    let xd = x.data();
    let wdat = w.data();
    let od = out.data_mut();
    for ni in 0..n {
        for c_out in 0..co {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for c in 0..ci {
                        for ky in 0..cfg.kernel_h {
                            let iy = (oy * cfg.stride + ky) as isize - cfg.pad_h as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..cfg.kernel_w {
                                let ix =
                                    (ox * cfg.stride + kx) as isize - cfg.pad_w as isize;
                                if ix < 0 || ix as usize >= wd {
                                    continue;
                                }
                                acc += xd[((ni * ci + c) * h + iy as usize) * wd
                                    + ix as usize]
                                    * wdat[((c_out * ci + c) * cfg.kernel_h + ky)
                                        * cfg.kernel_w
                                        + kx];
                            }
                        }
                    }
                    od[((ni * co + c_out) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    out
}

/// im2col + GEMM convolution forward: `y = im2col(x) · Wᵀ`.
pub fn conv2d(x: &Tensor, w: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let (n, _ci, _h, _wd, co, ho, wo) = dims(x, w, cfg);
    let cols = im2col(x, cfg);
    let w2d = w.reshape(&[co, w.len() / co]);
    let flat = matmul_a_bt(&cols, &w2d); // [n*ho*wo, co]
    rows_to_nchw(&flat, n, co, ho, wo)
}

/// Gradient of the loss with respect to the convolution input:
/// `dX = col2im(dY₂d · W)`.
pub fn conv2d_backward_data(
    dy: &Tensor,
    w: &Tensor,
    x_shape: &[usize],
    cfg: Conv2dCfg,
) -> Tensor {
    let [n, ci, h, wd]: [usize; 4] =
        x_shape.try_into().expect("conv expects 4-D input shape");
    let co = w.shape()[0];
    let (ho, wo) = cfg.out_extent(h, wd);
    assert_eq!(dy.shape(), &[n, co, ho, wo], "dy shape mismatch");
    let dy2d = nchw_to_rows(dy); // [n*ho*wo, co]
    let w2d = w.reshape(&[co, w.len() / co]);
    let dcols = matmul(&dy2d, &w2d); // [n*ho*wo, ci*kh*kw]
    col2im(&dcols, n, ci, h, wd, cfg)
}

/// Gradient of the loss with respect to the weights:
/// `dW = dY₂dᵀ · im2col(x)`.
pub fn conv2d_backward_weights(x: &Tensor, dy: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let [_n, ci, _h, _wd]: [usize; 4] =
        x.shape().try_into().expect("conv expects 4-D input");
    let co = dy.shape()[1];
    let cols = im2col(x, cfg);
    let dy2d = nchw_to_rows(dy);
    let dw2d = matmul_at_b(&dy2d, &cols); // [co, ci*kh*kw]
    dw2d.reshape(&[co, ci, cfg.kernel_h, cfg.kernel_w])
}

/// `[n, c, h, w] → [n·h·w, c]` (im2col row order).
fn nchw_to_rows(t: &Tensor) -> Tensor {
    let [n, c, h, w]: [usize; 4] = t.shape().try_into().expect("expects 4-D");
    let mut out = Tensor::zeros(&[n * h * w, c]);
    let td = t.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    od[(((ni * h) + y) * w + x) * c + ci] = td[((ni * c + ci) * h + y) * w + x];
                }
            }
        }
    }
    out
}

/// `[n·h·w, c] → [n, c, h, w]`.
fn rows_to_nchw(t: &Tensor, n: usize, c: usize, h: usize, w: usize) -> Tensor {
    assert_eq!(t.shape(), &[n * h * w, c], "row matrix shape mismatch");
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let td = t.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    od[((ni * c + ci) * h + y) * w + x] = td[(((ni * h) + y) * w + x) * c + ci];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 31 + salt * 17) % 23) as f32 - 11.0) / 7.0)
                .collect(),
        )
    }

    #[test]
    fn im2col_matches_naive_forward() {
        for (stride, pad) in [(1, 0), (1, 1), (2, 1)] {
            let cfg = Conv2dCfg::square(3, stride, pad);
            let x = seeded(&[2, 3, 7, 7], 1);
            let w = seeded(&[4, 3, 3, 3], 2);
            let a = conv2d_naive(&x, &w, cfg);
            let b = conv2d(&x, &w, cfg);
            assert!(a.max_abs_diff(&b) < 1e-4, "stride {stride} pad {pad}");
        }
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let x = seeded(&[1, 2, 5, 5], 3);
        let mut w = seeded(&[3, 2, 3, 3], 4);
        let dy = seeded(&[1, 3, 5, 5], 5);

        let dw = conv2d_backward_weights(&x, &dy, cfg);
        // Check a handful of weight coordinates against (L(w+e) - L(w-e)) /
        // 2e where L = <conv(x, w), dy>.
        let eps = 1e-2;
        for idx in [0usize, 7, 23, 41] {
            let orig = w.data()[idx];
            w.data_mut()[idx] = orig + eps;
            let lp: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            w.data_mut()[idx] = orig - eps;
            let lm: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            w.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dw.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} analytic {}",
                dw.data()[idx]
            );
        }
    }

    #[test]
    fn data_gradient_matches_finite_difference() {
        let cfg = Conv2dCfg::square(3, 2, 1);
        let mut x = seeded(&[1, 2, 6, 6], 6);
        let w = seeded(&[3, 2, 3, 3], 7);
        let dy = seeded(&[1, 3, 3, 3], 8);

        let dx = conv2d_backward_data(&dy, &w, x.shape(), cfg);
        let eps = 1e-2;
        for idx in [0usize, 11, 35, 71] {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + eps;
            let lp: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig - eps;
            let lm: f32 = conv2d(&x, &w, cfg)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            x.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < 1e-2,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_is_linear_in_input() {
        let cfg = Conv2dCfg::square(3, 1, 1);
        let a = seeded(&[1, 2, 5, 5], 9);
        let b = seeded(&[1, 2, 5, 5], 10);
        let w = seeded(&[2, 2, 3, 3], 11);
        let lhs = conv2d(&a.add(&b), &w, cfg);
        let rhs = conv2d(&a, &w, cfg).add(&conv2d(&b, &w, cfg));
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }
}
