//! Pooling operators with their backward passes.

use crate::tensor::Tensor;

/// Output extent of a pooling window sweep over one spatial axis.
fn pooled_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(
        padded >= kernel && kernel > 0 && stride > 0,
        "window larger than padded input"
    );
    (padded - kernel) / stride + 1
}

/// Max-pool forward. Returns the pooled tensor and the flat input index of
/// each output's argmax (consumed by [`maxpool2d_backward`]).
///
/// Shorthand for [`maxpool2d_padded`] with zero padding.
///
/// # Panics
///
/// Panics if `x` is not 4-D or the window does not fit the input.
pub fn maxpool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    maxpool2d_padded(x, kernel, stride, 0)
}

/// Max-pool forward with symmetric zero padding (`pad` rows/columns on
/// each edge). Padding cells hold `-inf` conceptually: a window is clipped
/// to the valid input region and the maximum is taken over real elements
/// only, so the argmax always points at an input cell.
///
/// Returns the pooled tensor and the flat input index of each output's
/// argmax (consumed by [`maxpool2d_backward`]).
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::maxpool2d_padded;
/// use mbs_tensor::Tensor;
///
/// // 2x2 input, 3x3 window, stride 2, pad 1: four windows, each clipped
/// // to a 2x2 quadrant overlapping the single valid cell region.
/// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let (y, arg) = maxpool2d_padded(&x, 3, 2, 1);
/// assert_eq!(y.shape(), &[1, 1, 1, 1]);
/// assert_eq!(y.data(), &[4.0]);
/// assert_eq!(arg, vec![3]);
/// ```
///
/// # Panics
///
/// Panics if `x` is not 4-D, the window does not fit the padded input, or
/// `pad >= kernel` (some windows would lie entirely in padding).
pub fn maxpool2d_padded(
    x: &Tensor,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, Vec<usize>) {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("maxpool expects 4-D");
    assert!(pad < kernel, "pad >= kernel leaves all-padding windows");
    let ho = pooled_extent(h, kernel, stride, pad);
    let wo = pooled_extent(w, kernel, stride, pad);
    let mut out = Tensor::uninit(&[n, c, ho, wo]);
    let mut arg = vec![0usize; out.len()];
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..ho {
                // Window rows clipped to the valid input region.
                let y0 = (oy * stride).saturating_sub(pad);
                let y1 = (oy * stride + kernel - pad).min(h);
                for ox in 0..wo {
                    let x0 = (ox * stride).saturating_sub(pad);
                    let x1 = (ox * stride + kernel - pad).min(w);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            let idx = plane + iy * w + ix;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((ni * c + ci) * ho + oy) * wo + ox;
                    od[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

/// Max-pool backward: routes each output gradient to its argmax input.
pub fn maxpool2d_backward(dy: &Tensor, argmax: &[usize], x_shape: &[usize]) -> Tensor {
    assert_eq!(dy.len(), argmax.len(), "argmax length mismatch");
    let mut dx = Tensor::zeros(x_shape);
    let dxd = dx.data_mut();
    for (g, &idx) in dy.data().iter().zip(argmax) {
        dxd[idx] += g;
    }
    dx
}

/// Average-pool forward with symmetric zero padding. The divisor is the
/// full window area (`kernel * kernel`), padding included — zero-padding
/// cells contribute zeros to the sum, matching the convention of the
/// Inception-style `Pool { kind: Avg, pad: 1 }` layers this op lowers.
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::avgpool2d;
/// use mbs_tensor::Tensor;
///
/// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
/// let y = avgpool2d(&x, 2, 2, 0);
/// assert_eq!(y.shape(), &[1, 1, 1, 1]);
/// assert_eq!(y.data(), &[2.5]);
/// ```
///
/// # Panics
///
/// Panics if `x` is not 4-D, the window does not fit the padded input, or
/// `pad >= kernel`.
pub fn avgpool2d(x: &Tensor, kernel: usize, stride: usize, pad: usize) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("avgpool expects 4-D");
    assert!(pad < kernel, "pad >= kernel leaves all-padding windows");
    let ho = pooled_extent(h, kernel, stride, pad);
    let wo = pooled_extent(w, kernel, stride, pad);
    let mut out = Tensor::uninit(&[n, c, ho, wo]);
    let inv_area = 1.0 / (kernel * kernel) as f32;
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..ho {
                let y0 = (oy * stride).saturating_sub(pad);
                let y1 = (oy * stride + kernel - pad).min(h);
                for ox in 0..wo {
                    let x0 = (ox * stride).saturating_sub(pad);
                    let x1 = (ox * stride + kernel - pad).min(w);
                    let mut sum = 0.0f32;
                    for iy in y0..y1 {
                        sum += xd[plane + iy * w + x0..plane + iy * w + x1]
                            .iter()
                            .sum::<f32>();
                    }
                    od[((ni * c + ci) * ho + oy) * wo + ox] = sum * inv_area;
                }
            }
        }
    }
    out
}

/// Average-pool backward: spreads each output gradient uniformly over its
/// window's valid cells (scaled by the same full-window divisor the
/// forward used, so the pair is an exact adjoint).
pub fn avgpool2d_backward(
    dy: &Tensor,
    x_shape: &[usize],
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x_shape.try_into().expect("avgpool expects 4-D shape");
    let ho = pooled_extent(h, kernel, stride, pad);
    let wo = pooled_extent(w, kernel, stride, pad);
    assert_eq!(dy.shape(), &[n, c, ho, wo], "dy shape mismatch");
    let mut dx = Tensor::zeros(x_shape);
    let inv_area = 1.0 / (kernel * kernel) as f32;
    let dyd = dy.data();
    let dxd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let plane = (ni * c + ci) * h * w;
            for oy in 0..ho {
                let y0 = (oy * stride).saturating_sub(pad);
                let y1 = (oy * stride + kernel - pad).min(h);
                for ox in 0..wo {
                    let x0 = (ox * stride).saturating_sub(pad);
                    let x1 = (ox * stride + kernel - pad).min(w);
                    let g = dyd[((ni * c + ci) * ho + oy) * wo + ox] * inv_area;
                    for iy in y0..y1 {
                        for v in &mut dxd[plane + iy * w + x0..plane + iy * w + x1] {
                            *v += g;
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("gap expects 4-D");
    let mut out = Tensor::zeros(&[n, c]);
    let xd = x.data();
    let od = out.data_mut();
    let hw = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            od[ni * c + ci] = xd[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
    out
}

/// Global average pooling backward: spreads each channel gradient evenly.
pub fn global_avg_pool_backward(dy: &Tensor, x_shape: &[usize]) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x_shape.try_into().expect("gap expects 4-D shape");
    assert_eq!(dy.shape(), &[n, c], "dy shape mismatch");
    let mut dx = Tensor::zeros(x_shape);
    let hw = (h * w) as f32;
    let dyd = dy.data();
    let dxd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = dyd[ni * c + ci] / hw;
            let base = (ni * c + ci) * h * w;
            for v in &mut dxd[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maximum() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (_, arg) = maxpool2d(&x, 2, 2);
        let dy = Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]);
        let dx = maxpool2d_backward(&dy, &arg, x.shape());
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn padded_maxpool_ignores_padding_cells() {
        // All-negative input: -inf padding must never win a window.
        let x = Tensor::from_vec(&[1, 1, 3, 3], (0..9).map(|v| -(v as f32) - 1.0).collect());
        let (y, arg) = maxpool2d_padded(&x, 3, 2, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // Top-left window sees rows/cols {0,1}: max is x[0,0] = -1.
        assert_eq!(y.get(&[0, 0, 0, 0]), -1.0);
        assert_eq!(arg[0], 0);
        // Every argmax is a valid input index.
        assert!(arg.iter().all(|&i| i < 9));
    }

    #[test]
    fn padded_maxpool_matches_resnet_stem_shape() {
        // 7x7 input, 3x3/2 pad 1 -> 4x4 (the ResNet pool1 rule).
        let x = Tensor::from_vec(&[1, 1, 7, 7], (0..49).map(|v| v as f32).collect());
        let (y, _) = maxpool2d_padded(&x, 3, 2, 1);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert_eq!(y.get(&[0, 0, 3, 3]), 48.0);
    }

    #[test]
    #[should_panic(expected = "pad >= kernel")]
    fn all_padding_windows_are_rejected() {
        let x = Tensor::from_vec(&[1, 1, 4, 4], vec![0.0; 16]);
        let _ = maxpool2d_padded(&x, 2, 2, 2);
    }

    #[test]
    fn avgpool_means_windows() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = avgpool2d(&x, 2, 2, 0);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn padded_avgpool_counts_padding_in_divisor() {
        // 2x2 ones, 3x3/1 pad 1: center window sums all four ones, corner
        // windows sum four ones too... no: corner (0,0) window covers rows
        // {0,1} cols {0,1} = all four cells -> 4/9.
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4]);
        let y = avgpool2d(&x, 3, 1, 1);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        for &v in y.data() {
            assert!((v - 4.0 / 9.0).abs() < 1e-6, "got {v}");
        }
    }

    #[test]
    fn avgpool_backward_is_adjoint() {
        // <pool(x), dy> == <x, pool_backward(dy)> for an exact adjoint.
        let x = Tensor::from_vec(
            &[2, 2, 5, 5],
            (0..100).map(|v| (v as f32) / 7.0 - 6.0).collect(),
        );
        for (k, s, p) in [(3usize, 1usize, 1usize), (3, 2, 0), (2, 2, 0), (3, 2, 1)] {
            let y = avgpool2d(&x, k, s, p);
            let dy = Tensor::from_vec(y.shape(), (0..y.len()).map(|v| v as f32 - 3.0).collect());
            let dx = avgpool2d_backward(&dy, x.shape(), k, s, p);
            let lhs: f32 = y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
            assert!((lhs - rhs).abs() < 1e-3, "k{k} s{s} p{p}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn gap_means_channels() {
        let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[2.0, 6.0]);
        let dy = Tensor::from_vec(&[1, 2], vec![2.0, 4.0]);
        let dx = global_avg_pool_backward(&dy, x.shape());
        assert_eq!(dx.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_backward_is_adjoint() {
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|v| v as f32).collect());
        let y = global_avg_pool(&x);
        let dy = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32 - 2.0).collect());
        let dx = global_avg_pool_backward(&dy, x.shape());
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
