//! Pooling operators with their backward passes.

use crate::tensor::Tensor;

/// Max-pool forward. Returns the pooled tensor and the flat input index of
/// each output's argmax (consumed by [`maxpool2d_backward`]).
///
/// # Panics
///
/// Panics if `x` is not 4-D or the window does not tile the input
/// (`h`/`w` must be ≥ `kernel` and stride-reachable).
pub fn maxpool2d(x: &Tensor, kernel: usize, stride: usize) -> (Tensor, Vec<usize>) {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("maxpool expects 4-D");
    assert!(h >= kernel && w >= kernel, "window larger than input");
    let ho = (h - kernel) / stride + 1;
    let wo = (w - kernel) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let mut arg = vec![0usize; out.len()];
    let xd = x.data();
    let od = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            let idx = ((ni * c + ci) * h + iy) * w + ix;
                            if xd[idx] > best {
                                best = xd[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((ni * c + ci) * ho + oy) * wo + ox;
                    od[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    (out, arg)
}

/// Max-pool backward: routes each output gradient to its argmax input.
pub fn maxpool2d_backward(dy: &Tensor, argmax: &[usize], x_shape: &[usize]) -> Tensor {
    assert_eq!(dy.len(), argmax.len(), "argmax length mismatch");
    let mut dx = Tensor::zeros(x_shape);
    let dxd = dx.data_mut();
    for (g, &idx) in dy.data().iter().zip(argmax) {
        dxd[idx] += g;
    }
    dx
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("gap expects 4-D");
    let mut out = Tensor::zeros(&[n, c]);
    let xd = x.data();
    let od = out.data_mut();
    let hw = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            od[ni * c + ci] = xd[base..base + h * w].iter().sum::<f32>() / hw;
        }
    }
    out
}

/// Global average pooling backward: spreads each channel gradient evenly.
pub fn global_avg_pool_backward(dy: &Tensor, x_shape: &[usize]) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x_shape.try_into().expect("gap expects 4-D shape");
    assert_eq!(dy.shape(), &[n, c], "dy shape mismatch");
    let mut dx = Tensor::zeros(x_shape);
    let hw = (h * w) as f32;
    let dyd = dy.data();
    let dxd = dx.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = dyd[ni * c + ci] / hw;
            let base = (ni * c + ci) * h * w;
            for v in &mut dxd[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_selects_maximum() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (y, arg) = maxpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
        let (_, arg) = maxpool2d(&x, 2, 2);
        let dy = Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]);
        let dx = maxpool2d_backward(&dy, &arg, x.shape());
        assert_eq!(dx.data(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn gap_means_channels() {
        let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[2.0, 6.0]);
        let dy = Tensor::from_vec(&[1, 2], vec![2.0, 4.0]);
        let dx = global_avg_pool_backward(&dy, x.shape());
        assert_eq!(dx.data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_backward_is_adjoint() {
        let x = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|v| v as f32).collect());
        let y = global_avg_pool(&x);
        let dy = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32 - 2.0).collect());
        let dx = global_avg_pool_backward(&dy, x.shape());
        let lhs: f32 = y.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(dx.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
