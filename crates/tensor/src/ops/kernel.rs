//! Register micro-kernels for the blocked GEMM core and their runtime
//! dispatch.
//!
//! The innermost unit of the packed GEMM (see [`crate::ops::pack`]) is an
//! `mr × nr` register tile accumulated over a `kc`-deep panel. The seed
//! shipped a single autovectorized 8×8 tile whose size was pinned by LLVM's
//! 64-float scalar-replacement limit; this module adds hand-written
//! `core::arch` FMA kernels that sidestep that limit:
//!
//! | kernel | tile | ISA | accumulators |
//! |---|---|---|---|
//! | `avx512-fma-16x16` | 16×16 | AVX-512F | 16 zmm (one per row) |
//! | `avx2-fma-8x8` | 8×8 | AVX2+FMA | 8 ymm (one per row) |
//! | `scalar-8x8` | 8×8 | portable | 64-float stack tile (autovectorized) |
//!
//! Each kernel carries two tile bodies over the same registers: the f32
//! body (`run`) and a bf16 body (`run_bf16`) that widens bf16-packed
//! operands on load — `vpmovzxwd` + a 16-bit shift, which *is* the exact
//! bf16→f32 conversion — and accumulates in f32. The widening is plain bit
//! arithmetic on every ISA (no `vcvtne2ps2bf16` probing: a uniform
//! conversion rule keeps packed bytes identical across kernels, so the
//! per-kernel parity tests can compare encodings bitwise).
//!
//! The widest supported kernel is chosen **once per process** via
//! [`selected`], using `is_x86_feature_detected!` so a binary built for a
//! generic target still uses AVX-512 on capable hosts. The `MBS_KERNEL`
//! environment variable (`auto` | `avx512` | `avx2` | `scalar`) overrides
//! the choice for A/B testing and for forcing the portable path in parity
//! tests; requesting an ISA the CPU lacks falls back to the best available
//! kernel with a warning rather than faulting.
//!
//! # Contract
//!
//! A kernel reads `kc × mr` packed A (strip-major: `a[p·mr + i]`) and
//! `kc × nr` packed B (`b[p·nr + j]`), and **overwrites** `acc[i·nr + j]`
//! with `Σ_p a[p·mr+i] · b[p·nr+j]`. Accumulation over `p` is strictly
//! in-order within one kernel, so for a fixed kernel the blocked GEMM stays
//! bitwise thread-count-invariant; *different* kernels may round
//! differently (FMA fuses the multiply-add), which is why the dispatch is
//! per-process, never per-call.
//!
//! # Examples
//!
//! ```
//! use mbs_tensor::ops::kernel;
//!
//! let k = kernel::selected();
//! // One depth step: A strip = [1, 2, ...], B strip = all ones.
//! let a: Vec<f32> = (0..k.mr).map(|i| i as f32 + 1.0).collect();
//! let b = vec![1.0f32; k.nr];
//! let mut acc = vec![0.0f32; k.mr * k.nr];
//! k.run(1, &a, &b, &mut acc);
//! assert_eq!(acc[0], 1.0); // row 0 · col 0
//! assert_eq!(acc[k.nr], 2.0); // row 1 · col 0
//! ```

use std::sync::OnceLock;

/// Largest `mr` any registered kernel uses (sizes the caller's packing
/// strips and accumulator scratch).
pub const MAX_MR: usize = 16;
/// Largest `nr` any registered kernel uses.
pub const MAX_NR: usize = 16;

/// One register micro-kernel: an `mr × nr` tile accumulated over `kc`
/// packed depth steps. See the [module docs](self) for the data contract.
#[derive(Debug)]
pub struct MicroKernel {
    /// Stable identifier (recorded in `BENCH_tensor.json`).
    pub name: &'static str,
    /// Tile rows — the A packing strip width.
    pub mr: usize,
    /// Tile columns — the B packing strip width.
    pub nr: usize,
    /// The tile body. Safety: callable only when the ISA this kernel was
    /// registered for is present; [`available`] guarantees that.
    run: unsafe fn(kc: usize, a: *const f32, b: *const f32, acc: *mut f32),
    /// The tile body for bf16-packed operands (same ISA as `run`): widening
    /// loads (`bf16 → f32` is a 16-bit shift), f32 FMA accumulate. See
    /// [`MicroKernel::run_bf16`].
    run_bf16: unsafe fn(kc: usize, a: *const u16, b: *const u16, acc: *mut f32),
    /// Fused C write-back for one register tile (same ISA as `run`); see
    /// [`MicroKernel::store_tile`].
    store: unsafe fn(
        acc: *const f32,
        dst: *mut f32,
        stride: usize,
        i_hi: usize,
        j_hi: usize,
        bias: *const f32,
        add: bool,
        relu: bool,
        bits: *mut u32,
    ),
}

impl MicroKernel {
    /// Runs the tile: `acc[i·nr + j] = Σ_p a[p·mr+i] · b[p·nr+j]`,
    /// overwriting `acc`.
    ///
    /// # Panics
    ///
    /// Panics if `a`, `b`, or `acc` is shorter than `kc·mr`, `kc·nr`, or
    /// `mr·nr` respectively.
    #[inline]
    pub fn run(&self, kc: usize, a: &[f32], b: &[f32], acc: &mut [f32]) {
        assert!(a.len() >= kc * self.mr, "packed A strip too short");
        assert!(b.len() >= kc * self.nr, "packed B strip too short");
        assert!(acc.len() >= self.mr * self.nr, "accumulator too short");
        // SAFETY: bounds asserted above; the ISA requirement is upheld by
        // construction — kernels only enter `available()` after their
        // target feature is detected on this CPU.
        unsafe { (self.run)(kc, a.as_ptr(), b.as_ptr(), acc.as_mut_ptr()) }
    }

    /// [`MicroKernel::run`] for bf16-packed operand strips: each element is
    /// widened to f32 (exact — bf16 is the top half of an f32) and the tile
    /// accumulates in f32, in the same strictly-in-order reduction as the
    /// f32 body. The result therefore equals running the f32 kernel on the
    /// widened operands bit-for-bit, which is what the parity tests pin —
    /// reduced precision lives entirely in the *encoding* done at packing
    /// time, never in the arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `a`, `b`, or `acc` is shorter than `kc·mr`, `kc·nr`, or
    /// `mr·nr` respectively.
    #[inline]
    pub fn run_bf16(&self, kc: usize, a: &[u16], b: &[u16], acc: &mut [f32]) {
        assert!(a.len() >= kc * self.mr, "packed A strip too short");
        assert!(b.len() >= kc * self.nr, "packed B strip too short");
        assert!(acc.len() >= self.mr * self.nr, "accumulator too short");
        // SAFETY: as in `run`.
        unsafe { (self.run_bf16)(kc, a.as_ptr(), b.as_ptr(), acc.as_mut_ptr()) }
    }

    /// Fused write-back of one register tile — the epilogue unit of the
    /// blocked GEMM. For each row `i < i_hi` and column `j < j_hi`:
    ///
    /// ```text
    /// v = (if add { dst[i·stride + j] + acc[i·nr + j] } else { acc[i·nr + j] }) (+ bias[j])
    /// dst[i·stride + j] = if relu { if v > 0 { v } else { 0 } } else { v }
    /// bits[i] bit j     = (v > 0)            // when relu; 0 otherwise
    /// ```
    ///
    /// One indirect call covers the whole tile, so the bias vector and the
    /// edge-lane mask are loaded once and held in registers across up to
    /// `mr` rows. On AVX the sign bits come straight from the vector
    /// compare — the 1-bit mask MBS stores for back propagation is emitted
    /// by the store itself, not by a later pass. The arithmetic matches
    /// the unfused sequence (accumulate, then `+= bias[j]`, then the
    /// `v > 0` clamp) operation-for-operation, so fused results are
    /// bitwise identical to GEMM-then-bias-then-ReLU.
    ///
    /// # Panics
    ///
    /// Panics if the tile exceeds `mr × nr`, `acc` is shorter than
    /// `i_hi·nr`, `dst` cannot hold the strided tile, or `bias` is shorter
    /// than `j_hi`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn store_tile(
        &self,
        acc: &[f32],
        dst: &mut [f32],
        stride: usize,
        i_hi: usize,
        j_hi: usize,
        bias: Option<&[f32]>,
        add: bool,
        relu: bool,
        bits: &mut [u32; MAX_MR],
    ) {
        if i_hi == 0 || j_hi == 0 {
            return;
        }
        assert!(i_hi <= self.mr && j_hi <= self.nr, "tile exceeds mr x nr");
        assert!(acc.len() >= i_hi * self.nr, "accumulator tile too short");
        assert!(
            dst.len() >= (i_hi - 1) * stride + j_hi,
            "destination tile too short"
        );
        let bias = match bias {
            Some(b) => {
                assert!(b.len() >= j_hi, "bias row too short");
                b.as_ptr()
            }
            None => std::ptr::null(),
        };
        // SAFETY: bounds asserted above; ISA presence as in `run`.
        unsafe {
            (self.store)(
                acc.as_ptr(),
                dst.as_mut_ptr(),
                stride,
                i_hi,
                j_hi,
                bias,
                add,
                relu,
                bits.as_mut_ptr(),
            )
        }
    }
}

/// The portable autovectorized 8×8 tile (the seed's micro-kernel). LLVM
/// promotes the 64-float stack tile to vector registers on AVX2/AVX-512
/// targets; on anything else it is still a correct dense loop nest.
pub static SCALAR_8X8: MicroKernel = MicroKernel {
    name: "scalar-8x8",
    mr: 8,
    nr: 8,
    run: scalar_8x8,
    run_bf16: scalar_8x8_bf16,
    store: store_tile_scalar,
};

/// Hand-written AVX2+FMA 8×8 tile: 8 ymm accumulators, one `vbroadcastss`
/// + `vfmadd` per row per depth step.
#[cfg(target_arch = "x86_64")]
pub static AVX2_8X8: MicroKernel = MicroKernel {
    name: "avx2-fma-8x8",
    mr: 8,
    nr: 8,
    run: avx2_8x8,
    run_bf16: avx2_8x8_bf16,
    store: store_tile_avx2,
};

/// Hand-written AVX-512F 16×16 tile: 16 zmm accumulators (4× the FLOPs of
/// the 8×8 tile per B-row load), beyond what scalar replacement allows the
/// autovectorizer.
#[cfg(target_arch = "x86_64")]
pub static AVX512_16X16: MicroKernel = MicroKernel {
    name: "avx512-fma-16x16",
    mr: 16,
    nr: 16,
    run: avx512_16x16,
    run_bf16: avx512_16x16_bf16,
    store: store_tile_avx512,
};

/// Every kernel usable on this CPU, widest first. The scalar kernel is
/// always present and always last.
pub fn available() -> Vec<&'static MicroKernel> {
    let mut kernels: Vec<&'static MicroKernel> = Vec::with_capacity(3);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            kernels.push(&AVX512_16X16);
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            kernels.push(&AVX2_8X8);
        }
    }
    kernels.push(&SCALAR_8X8);
    kernels
}

/// The kernel every GEMM in this process uses: the `MBS_KERNEL` override
/// if set and satisfiable, else the widest detected kernel. Resolved once;
/// subsequent calls are a static load.
pub fn selected() -> &'static MicroKernel {
    static SELECTED: OnceLock<&'static MicroKernel> = OnceLock::new();
    SELECTED.get_or_init(|| select(std::env::var("MBS_KERNEL").ok().as_deref()))
}

/// Resolves an `MBS_KERNEL` value against the detected kernel set
/// (separated from [`selected`] so tests can exercise the parsing without
/// touching process-global state).
pub(crate) fn select(request: Option<&str>) -> &'static MicroKernel {
    let kernels = available();
    let fallback = kernels[0];
    let Some(req) = request else {
        return fallback;
    };
    let req = req.trim();
    if req.is_empty() || req.eq_ignore_ascii_case("auto") {
        return fallback;
    }
    let wanted = kernels.iter().find(|k| {
        k.name.eq_ignore_ascii_case(req)
            || k.name
                .split('-')
                .next()
                .is_some_and(|isa| isa.eq_ignore_ascii_case(req))
    });
    match wanted {
        Some(k) => k,
        None => {
            eprintln!(
                "warning: MBS_KERNEL={req} is not available on this CPU \
                 (have: {}); using {}",
                kernels
                    .iter()
                    .map(|k| k.name)
                    .collect::<Vec<_>>()
                    .join(", "),
                fallback.name
            );
            fallback
        }
    }
}

/// The seed's 8×8 tile, verbatim: a `[[f32; 8]; 8]` accumulator small
/// enough for LLVM scalar replacement, written back at the end.
///
/// # Safety
///
/// `a` must hold `kc·8` floats, `b` `kc·8`, `acc` 64 (asserted by
/// [`MicroKernel::run`]); no ISA requirement.
unsafe fn scalar_8x8(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    let a = std::slice::from_raw_parts(a, kc * 8);
    let b = std::slice::from_raw_parts(b, kc * 8);
    let mut tile = [[0.0f32; 8]; 8];
    for (av, bv) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        for (ai, row) in av.iter().zip(tile.iter_mut()) {
            for (slot, bj) in row.iter_mut().zip(bv) {
                *slot += ai * bj;
            }
        }
    }
    let out = std::slice::from_raw_parts_mut(acc, 64);
    for (dst, src) in out.chunks_exact_mut(8).zip(tile.iter()) {
        dst.copy_from_slice(src);
    }
}

/// [`scalar_8x8`] over bf16-packed strips: every element is widened to f32
/// up front (a 16-bit shift — exact) and the accumulation is the identical
/// f32 loop nest, so results match the f32 kernel on widened operands
/// bit-for-bit.
///
/// # Safety
///
/// `a` must hold `kc·8` bf16 codes, `b` `kc·8`, `acc` 64 floats (asserted
/// by [`MicroKernel::run_bf16`]); no ISA requirement.
unsafe fn scalar_8x8_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    let a = std::slice::from_raw_parts(a, kc * 8);
    let b = std::slice::from_raw_parts(b, kc * 8);
    let mut tile = [[0.0f32; 8]; 8];
    for (av, bv) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        let mut bw = [0.0f32; 8];
        for (slot, &code) in bw.iter_mut().zip(bv) {
            *slot = crate::prec::bf16_to_f32(code);
        }
        for (&ai, row) in av.iter().zip(tile.iter_mut()) {
            let aw = crate::prec::bf16_to_f32(ai);
            for (slot, bj) in row.iter_mut().zip(&bw) {
                *slot += aw * bj;
            }
        }
    }
    let out = std::slice::from_raw_parts_mut(acc, 64);
    for (dst, src) in out.chunks_exact_mut(8).zip(tile.iter()) {
        dst.copy_from_slice(src);
    }
}

/// 8×8 AVX2 FMA tile: one ymm accumulator per row; each depth step is one
/// B-row load plus eight broadcast-FMAs.
///
/// # Safety
///
/// Requires AVX2 and FMA; operand extents as in [`scalar_8x8`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn avx2_8x8(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use core::arch::x86_64::*;
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    for p in 0..kc {
        let bv = _mm256_loadu_ps(b.add(p * 8));
        let ap = a.add(p * 8);
        c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), bv, c0);
        c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), bv, c1);
        c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), bv, c2);
        c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), bv, c3);
        c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(4)), bv, c4);
        c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(5)), bv, c5);
        c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(6)), bv, c6);
        c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(7)), bv, c7);
    }
    _mm256_storeu_ps(acc, c0);
    _mm256_storeu_ps(acc.add(8), c1);
    _mm256_storeu_ps(acc.add(16), c2);
    _mm256_storeu_ps(acc.add(24), c3);
    _mm256_storeu_ps(acc.add(32), c4);
    _mm256_storeu_ps(acc.add(40), c5);
    _mm256_storeu_ps(acc.add(48), c6);
    _mm256_storeu_ps(acc.add(56), c7);
}

/// [`avx2_8x8`] over bf16-packed strips. The B row widens with one
/// `vpmovzxwd` + 16-bit shift (bf16 is literally the top half of an f32,
/// so the shift *is* the conversion — exact); A elements widen scalar-wise
/// into the broadcast. The FMA sequence is identical to the f32 body, so
/// results match the f32 kernel on widened operands bit-for-bit.
///
/// # Safety
///
/// Requires AVX2 and FMA; operand extents as in [`scalar_8x8_bf16`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn avx2_8x8_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    use core::arch::x86_64::*;
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn widen8(p: *const u16) -> __m256 {
        let raw = _mm_loadu_si128(p.cast::<__m128i>());
        _mm256_castsi256_ps(_mm256_slli_epi32::<16>(_mm256_cvtepu16_epi32(raw)))
    }
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut c4 = _mm256_setzero_ps();
    let mut c5 = _mm256_setzero_ps();
    let mut c6 = _mm256_setzero_ps();
    let mut c7 = _mm256_setzero_ps();
    for p in 0..kc {
        let bv = widen8(b.add(p * 8));
        let ap = a.add(p * 8);
        macro_rules! fma_row {
            ($c:ident, $i:literal) => {
                $c = _mm256_fmadd_ps(
                    _mm256_set1_ps(crate::prec::bf16_to_f32(*ap.add($i))),
                    bv,
                    $c,
                );
            };
        }
        fma_row!(c0, 0);
        fma_row!(c1, 1);
        fma_row!(c2, 2);
        fma_row!(c3, 3);
        fma_row!(c4, 4);
        fma_row!(c5, 5);
        fma_row!(c6, 6);
        fma_row!(c7, 7);
    }
    _mm256_storeu_ps(acc, c0);
    _mm256_storeu_ps(acc.add(8), c1);
    _mm256_storeu_ps(acc.add(16), c2);
    _mm256_storeu_ps(acc.add(24), c3);
    _mm256_storeu_ps(acc.add(32), c4);
    _mm256_storeu_ps(acc.add(40), c5);
    _mm256_storeu_ps(acc.add(48), c6);
    _mm256_storeu_ps(acc.add(56), c7);
}

/// 16×16 AVX-512 FMA tile: 16 zmm accumulators; each depth step is one
/// 16-float B-row load plus sixteen broadcast-FMAs (the broadcasts fold
/// into the FMAs' embedded-broadcast memory operands).
///
/// # Safety
///
/// Requires AVX-512F; `a` must hold `kc·16` floats, `b` `kc·16`, `acc`
/// 256.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn avx512_16x16(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    use core::arch::x86_64::*;
    macro_rules! rows {
        ($mac:ident) => {
            $mac!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15)
        };
    }
    let mut cc = [_mm512_setzero_ps(); 16];
    for p in 0..kc {
        let bv = _mm512_loadu_ps(b.add(p * 16));
        let ap = a.add(p * 16);
        macro_rules! fma_rows {
            ($($i:literal)+) => {
                $(cc[$i] = _mm512_fmadd_ps(_mm512_set1_ps(*ap.add($i)), bv, cc[$i]);)+
            };
        }
        rows!(fma_rows);
    }
    macro_rules! store_rows {
        ($($i:literal)+) => {
            $(_mm512_storeu_ps(acc.add($i * 16), cc[$i]);)+
        };
    }
    rows!(store_rows);
}

/// [`avx512_16x16`] over bf16-packed strips: the 16-code B row widens with
/// one `vpmovzxwd` (zmm) + 16-bit shift, A elements widen scalar-wise into
/// the broadcast. FMA sequence identical to the f32 body — results match
/// the f32 kernel on widened operands bit-for-bit.
///
/// # Safety
///
/// Requires AVX-512F (the `vpmovzxwd ymm→zmm` widening is AVX-512F); `a`
/// must hold `kc·16` bf16 codes, `b` `kc·16`, `acc` 256 floats.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn avx512_16x16_bf16(kc: usize, a: *const u16, b: *const u16, acc: *mut f32) {
    use core::arch::x86_64::*;
    macro_rules! rows {
        ($mac:ident) => {
            $mac!(0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15)
        };
    }
    let mut cc = [_mm512_setzero_ps(); 16];
    for p in 0..kc {
        let raw = _mm256_loadu_si256(b.add(p * 16).cast::<__m256i>());
        let bv = _mm512_castsi512_ps(_mm512_slli_epi32::<16>(_mm512_cvtepu16_epi32(raw)));
        let ap = a.add(p * 16);
        macro_rules! fma_rows {
            ($($i:literal)+) => {
                $(cc[$i] = _mm512_fmadd_ps(
                    _mm512_set1_ps(crate::prec::bf16_to_f32(*ap.add($i))),
                    bv,
                    cc[$i],
                );)+
            };
        }
        rows!(fma_rows);
    }
    macro_rules! store_rows {
        ($($i:literal)+) => {
            $(_mm512_storeu_ps(acc.add($i * 16), cc[$i]);)+
        };
    }
    rows!(store_rows);
}

/// Portable fused write-back tile (pairs with [`scalar_8x8`], usable by
/// any tile shape).
///
/// # Safety
///
/// Extents as asserted by [`MicroKernel::store_tile`] for an 8-column
/// tile; no ISA requirement. `nr` is fixed at 8 (the scalar kernel's
/// width).
#[allow(clippy::too_many_arguments)]
unsafe fn store_tile_scalar(
    acc: *const f32,
    dst: *mut f32,
    stride: usize,
    i_hi: usize,
    j_hi: usize,
    bias: *const f32,
    add: bool,
    relu: bool,
    bits: *mut u32,
) {
    store_tile_generic(acc, 8, dst, stride, i_hi, j_hi, bias, add, relu, bits)
}

/// The portable tile epilogue for an arbitrary accumulator row stride
/// (shared by the scalar kernel and the tests' reference).
#[allow(clippy::too_many_arguments)]
unsafe fn store_tile_generic(
    acc: *const f32,
    nr: usize,
    dst: *mut f32,
    stride: usize,
    i_hi: usize,
    j_hi: usize,
    bias: *const f32,
    add: bool,
    relu: bool,
    bits: *mut u32,
) {
    for i in 0..i_hi {
        let acc_row = acc.add(i * nr);
        let dst_row = dst.add(i * stride);
        let mut row_bits = 0u32;
        for j in 0..j_hi {
            let mut v = if add {
                *dst_row.add(j) + *acc_row.add(j)
            } else {
                *acc_row.add(j)
            };
            if !bias.is_null() {
                v += *bias.add(j);
            }
            if relu {
                if v > 0.0 {
                    row_bits |= 1 << j;
                } else {
                    v = 0.0;
                }
            }
            *dst_row.add(j) = v;
        }
        *bits.add(i) = row_bits;
    }
}

/// AVX2 fused write-back tile: the edge-lane mask and the bias vector are
/// materialized once and held across all rows; per row the sign bits fall
/// out of `vcmpps` + `vmovmskps` and the clamp is an AND with the compare
/// mask (so lanes that fail `v > 0` store `+0.0`, exactly like the scalar
/// path).
///
/// # Safety
///
/// Requires AVX2; extents as asserted by [`MicroKernel::store_tile`] for
/// an 8×8 tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn store_tile_avx2(
    acc: *const f32,
    dst: *mut f32,
    stride: usize,
    i_hi: usize,
    j_hi: usize,
    bias: *const f32,
    add: bool,
    relu: bool,
    bits: *mut u32,
) {
    use core::arch::x86_64::*;
    debug_assert!(i_hi <= 8 && j_hi <= 8);
    // `+ 0.0` is not a bitwise no-op (-0.0 + 0.0 == +0.0), so a null bias
    // must skip the add entirely to stay bit-identical to the plain path.
    let with_bias = !bias.is_null();
    let zero = _mm256_setzero_ps();
    if j_hi == 8 {
        // Full-width tile: plain loads/stores (masked memory ops cost
        // extra µops even with an all-ones mask).
        let bv = if with_bias {
            _mm256_loadu_ps(bias)
        } else {
            zero
        };
        for i in 0..i_hi {
            let mut v = _mm256_loadu_ps(acc.add(i * 8));
            let dst_row = dst.add(i * stride);
            if add {
                v = _mm256_add_ps(_mm256_loadu_ps(dst_row), v);
            }
            if with_bias {
                v = _mm256_add_ps(v, bv);
            }
            let mut row_bits = 0u32;
            if relu {
                let pos = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
                row_bits = _mm256_movemask_ps(pos) as u32;
                v = _mm256_and_ps(v, pos);
            }
            _mm256_storeu_ps(dst_row, v);
            *bits.add(i) = row_bits;
        }
        return;
    }
    let lanes = _mm256_cmpgt_epi32(
        _mm256_set1_epi32(j_hi as i32),
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
    );
    let bv = if with_bias {
        _mm256_maskload_ps(bias, lanes)
    } else {
        zero
    };
    let edge = (1u32 << j_hi) - 1;
    for i in 0..i_hi {
        // Full-width acc load: the packed accumulator always holds the
        // whole 8-float row; garbage lanes are masked off at the store.
        let mut v = _mm256_loadu_ps(acc.add(i * 8));
        let dst_row = dst.add(i * stride);
        if add {
            v = _mm256_add_ps(_mm256_maskload_ps(dst_row, lanes), v);
        }
        if with_bias {
            v = _mm256_add_ps(v, bv);
        }
        let mut row_bits = 0u32;
        if relu {
            let pos = _mm256_cmp_ps::<_CMP_GT_OQ>(v, zero);
            row_bits = _mm256_movemask_ps(pos) as u32 & edge;
            v = _mm256_and_ps(v, pos);
        }
        _mm256_maskstore_ps(dst_row, lanes, v);
        *bits.add(i) = row_bits;
    }
}

/// AVX-512 fused write-back tile: the edge clamp is a `__mmask16` computed
/// once, the bias vector lives in a zmm register across rows, and the ReLU
/// sign bits *are* the `vcmpps` k-register — the 1-bit MBS mask costs one
/// instruction per 16 outputs at the store.
///
/// # Safety
///
/// Requires AVX-512F; extents as asserted by [`MicroKernel::store_tile`]
/// for a 16×16 tile.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn store_tile_avx512(
    acc: *const f32,
    dst: *mut f32,
    stride: usize,
    i_hi: usize,
    j_hi: usize,
    bias: *const f32,
    add: bool,
    relu: bool,
    bits: *mut u32,
) {
    use core::arch::x86_64::*;
    debug_assert!(i_hi <= 16 && j_hi <= 16);
    // See the AVX2 tile: a null bias must skip the add to preserve -0.0.
    let with_bias = !bias.is_null();
    let zero = _mm512_setzero_ps();
    if j_hi == 16 {
        // Full-width tile (the common case on interior panels): plain
        // loads/stores — masked memory ops cost extra µops even with an
        // all-ones mask.
        let bv = if with_bias {
            _mm512_loadu_ps(bias)
        } else {
            zero
        };
        for i in 0..i_hi {
            let mut v = _mm512_loadu_ps(acc.add(i * 16));
            let dst_row = dst.add(i * stride);
            if add {
                v = _mm512_add_ps(_mm512_loadu_ps(dst_row), v);
            }
            if with_bias {
                v = _mm512_add_ps(v, bv);
            }
            let mut row_bits = 0u32;
            if relu {
                let pos = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, zero);
                row_bits = u32::from(pos);
                v = _mm512_maskz_mov_ps(pos, v);
            }
            _mm512_storeu_ps(dst_row, v);
            *bits.add(i) = row_bits;
        }
        return;
    }
    let m: __mmask16 = ((1u32 << j_hi) - 1) as __mmask16;
    let bv = if with_bias {
        _mm512_maskz_loadu_ps(m, bias)
    } else {
        zero
    };
    for i in 0..i_hi {
        let mut v = _mm512_loadu_ps(acc.add(i * 16));
        let dst_row = dst.add(i * stride);
        if add {
            v = _mm512_add_ps(_mm512_maskz_loadu_ps(m, dst_row), v);
        }
        if with_bias {
            v = _mm512_add_ps(v, bv);
        }
        let mut row_bits = 0u32;
        if relu {
            let pos = _mm512_mask_cmp_ps_mask::<_CMP_GT_OQ>(m, v, zero);
            row_bits = u32::from(pos);
            v = _mm512_maskz_mov_ps(pos, v);
        }
        _mm512_mask_storeu_ps(dst_row, m, v);
        *bits.add(i) = row_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference dot-product tile for arbitrary (mr, nr).
    fn reference(kc: usize, mr: usize, nr: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut acc = vec![0.0f32; mr * nr];
        for p in 0..kc {
            for i in 0..mr {
                for j in 0..nr {
                    acc[i * nr + j] += a[p * mr + i] * b[p * nr + j];
                }
            }
        }
        acc
    }

    #[test]
    fn every_available_kernel_matches_reference_tile() {
        for kern in available() {
            for kc in [0usize, 1, 3, 37] {
                let a: Vec<f32> = (0..kc * kern.mr)
                    .map(|v| ((v * 7) % 23) as f32 / 4.0 - 2.5)
                    .collect();
                let b: Vec<f32> = (0..kc * kern.nr)
                    .map(|v| ((v * 11) % 19) as f32 / 4.0 - 2.0)
                    .collect();
                let mut acc = vec![f32::NAN; kern.mr * kern.nr]; // must overwrite
                kern.run(kc, &a, &b, &mut acc);
                let want = reference(kc, kern.mr, kern.nr, &a, &b);
                for (idx, (x, y)) in acc.iter().zip(&want).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-4 * y.abs().max(1.0),
                        "{} kc={kc} idx={idx}: {x} vs {y}",
                        kern.name
                    );
                }
            }
        }
    }

    #[test]
    fn bf16_tile_equals_f32_tile_on_widened_operands() {
        // The bf16 body must be the f32 reduction on exactly-widened
        // operands — bitwise, per kernel. Reduced precision lives in the
        // encoding (done at pack time), never in the kernel arithmetic.
        use crate::prec::{bf16_to_f32, f32_to_bf16};
        for kern in available() {
            for kc in [0usize, 1, 5, 33] {
                let a16: Vec<u16> = (0..kc * kern.mr)
                    .map(|v| f32_to_bf16(((v * 7) % 23) as f32 * 0.37 - 2.5))
                    .collect();
                let b16: Vec<u16> = (0..kc * kern.nr)
                    .map(|v| f32_to_bf16(((v * 11) % 19) as f32 * 0.29 - 2.0))
                    .collect();
                let a32: Vec<f32> = a16.iter().map(|&c| bf16_to_f32(c)).collect();
                let b32: Vec<f32> = b16.iter().map(|&c| bf16_to_f32(c)).collect();
                let mut got = vec![f32::NAN; kern.mr * kern.nr];
                let mut want = vec![f32::NAN; kern.mr * kern.nr];
                kern.run_bf16(kc, &a16, &b16, &mut got);
                kern.run(kc, &a32, &b32, &mut want);
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "{} kc={kc}", kern.name);
            }
        }
    }

    #[test]
    fn scalar_is_always_available_and_last() {
        let kernels = available();
        assert_eq!(kernels.last().unwrap().name, "scalar-8x8");
    }

    #[test]
    fn select_honors_requests_and_falls_back() {
        assert_eq!(select(None).name, available()[0].name);
        assert_eq!(select(Some("auto")).name, available()[0].name);
        assert_eq!(select(Some("scalar")).name, "scalar-8x8");
        assert_eq!(select(Some("SCALAR-8X8")).name, "scalar-8x8");
        // Unknown names warn and fall back to the widest kernel.
        assert_eq!(select(Some("neon")).name, available()[0].name);
    }

    #[test]
    fn store_tile_matches_scalar_reference_for_every_kernel() {
        // Every (add, bias, relu, i_hi, j_hi) combination must agree
        // bitwise with the portable epilogue — including NaN sums (v > 0
        // is false for NaN, so fused ReLU clamps NaN to 0 exactly like
        // `ops::relu`) and untouched elements outside the tile.
        for kern in available() {
            let stride = kern.nr + 3; // strided C, like a real edge panel
            for i_hi in [0usize, 1, kern.mr - 1, kern.mr] {
                for j_hi in [0usize, 1, 3, kern.nr - 1, kern.nr] {
                    for add in [false, true] {
                        for with_bias in [false, true] {
                            for relu in [false, true] {
                                let mut acc: Vec<f32> = (0..kern.mr * kern.nr)
                                    .map(|j| ((j * 13) % 7) as f32 - 3.0)
                                    .collect();
                                if !acc.is_empty() {
                                    let mid = acc.len() / 2;
                                    acc[0] = f32::NAN;
                                    acc[mid] = -0.0;
                                }
                                let bias: Vec<f32> =
                                    (0..kern.nr).map(|j| ((j * 5) % 3) as f32 - 1.0).collect();
                                let init: Vec<f32> = (0..kern.mr * stride)
                                    .map(|j| j as f32 / 2.0 - 1.0)
                                    .collect();
                                let bias_ptr = if with_bias {
                                    bias.as_ptr()
                                } else {
                                    std::ptr::null()
                                };

                                let mut want = init.clone();
                                let mut want_bits = [0u32; MAX_MR];
                                unsafe {
                                    store_tile_generic(
                                        acc.as_ptr(),
                                        kern.nr,
                                        want.as_mut_ptr(),
                                        stride,
                                        i_hi,
                                        j_hi,
                                        bias_ptr,
                                        add,
                                        relu,
                                        want_bits.as_mut_ptr(),
                                    );
                                }
                                let mut got = init.clone();
                                let mut got_bits = [0u32; MAX_MR];
                                kern.store_tile(
                                    &acc,
                                    &mut got,
                                    stride,
                                    i_hi,
                                    j_hi,
                                    if with_bias { Some(&bias[..]) } else { None },
                                    add,
                                    relu,
                                    &mut got_bits,
                                );
                                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                                assert_eq!(
                                    gb, wb,
                                    "{} i_hi={i_hi} j_hi={j_hi} add={add} bias={with_bias} relu={relu}",
                                    kern.name
                                );
                                assert_eq!(
                                    &got_bits[..i_hi],
                                    &want_bits[..i_hi],
                                    "{} mask bits",
                                    kern.name
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tiles_fit_the_declared_maximums() {
        for kern in available() {
            assert!(kern.mr <= MAX_MR, "{}", kern.name);
            assert!(kern.nr <= MAX_NR, "{}", kern.name);
        }
    }
}
