//! im2col / col2im lowering (the transformation WaveCore uses to map
//! convolutions onto its systolic array, paper §4.1).

use crate::tensor::Tensor;

/// Convolution geometry shared by the conv/im2col operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dCfg {
    /// Filter height.
    pub kernel_h: usize,
    /// Filter width.
    pub kernel_w: usize,
    /// Stride (both dimensions).
    pub stride: usize,
    /// Zero padding rows on each vertical edge.
    pub pad_h: usize,
    /// Zero padding columns on each horizontal edge.
    pub pad_w: usize,
}

impl Conv2dCfg {
    /// Square kernel with symmetric padding.
    pub fn square(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            pad_h: pad,
            pad_w: pad,
        }
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_extent(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.pad_h;
        let pw = w + 2 * self.pad_w;
        assert!(
            ph >= self.kernel_h && pw >= self.kernel_w,
            "kernel does not fit padded input"
        );
        (
            (ph - self.kernel_h) / self.stride + 1,
            (pw - self.kernel_w) / self.stride + 1,
        )
    }
}

/// Lowers `x: [n, ci, h, w]` to a matrix `[n·ho·wo, ci·kh·kw]` whose rows
/// are flattened receptive fields.
///
/// # Panics
///
/// Panics if `x` is not 4-D or the kernel does not fit.
pub fn im2col(x: &Tensor, cfg: Conv2dCfg) -> Tensor {
    let [n, ci, h, w]: [usize; 4] = x.shape().try_into().expect("im2col expects 4-D input");
    let (ho, wo) = cfg.out_extent(h, w);
    let cols_w = ci * cfg.kernel_h * cfg.kernel_w;
    let mut out = Tensor::zeros(&[n * ho * wo, cols_w]);
    let xd = x.data();
    let od = out.data_mut();

    for ni in 0..n {
        for oy in 0..ho {
            for ox in 0..wo {
                let row = ((ni * ho) + oy) * wo + ox;
                let base = row * cols_w;
                for c in 0..ci {
                    for ky in 0..cfg.kernel_h {
                        let iy = (oy * cfg.stride + ky) as isize - cfg.pad_h as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for kx in 0..cfg.kernel_w {
                            let ix = (ox * cfg.stride + kx) as isize - cfg.pad_w as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            let col = (c * cfg.kernel_h + ky) * cfg.kernel_w + kx;
                            od[base + col] =
                                xd[((ni * ci + c) * h + iy as usize) * w + ix as usize];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Adjoint of [`im2col`]: scatters column gradients back to the input
/// layout `[n, ci, h, w]` (overlapping fields accumulate).
///
/// # Panics
///
/// Panics if `cols` does not match the geometry implied by the arguments.
pub fn col2im(cols: &Tensor, n: usize, ci: usize, h: usize, w: usize, cfg: Conv2dCfg) -> Tensor {
    let (ho, wo) = cfg.out_extent(h, w);
    let cols_w = ci * cfg.kernel_h * cfg.kernel_w;
    assert_eq!(
        cols.shape(),
        &[n * ho * wo, cols_w],
        "col2im shape mismatch"
    );
    col2im_slice(cols.data(), n, ci, h, w, cfg)
}

/// [`col2im`] over a raw slice.
///
/// # Panics
///
/// Panics if `cols.len()` does not match the implied geometry.
pub fn col2im_slice(
    cols: &[f32],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    cfg: Conv2dCfg,
) -> Tensor {
    let (ho, wo) = cfg.out_extent(h, w);
    let cols_w = ci * cfg.kernel_h * cfg.kernel_w;
    assert_eq!(cols.len(), n * ho * wo * cols_w, "col2im size mismatch");
    let mut out = Tensor::zeros(&[n, ci, h, w]);
    let plane = ci * h * w;
    let rows_per = ho * wo * cols_w;
    for (ni, dst) in out.data_mut().chunks_mut(plane.max(1)).enumerate() {
        scatter_sample(
            &cols[ni * rows_per..(ni + 1) * rows_per],
            dst,
            ci,
            h,
            w,
            cfg,
        );
    }
    out
}

/// Adjoint scatter from a **transposed** column matrix `cols_t:
/// [ci·kh·kw, n·ho·wo]` back to `[n, ci, h, w]`.
///
/// The layout makes both sides of the inner accumulate contiguous for
/// stride-1 convolutions (one zip per `(tap, sample, output row)`), which
/// is why the blocked data-gradient GEMM produces its column gradient
/// transposed. Parallel over samples; per-sample order is fixed, so
/// results are bitwise identical for any thread count.
///
/// # Panics
///
/// Panics if `cols_t.len()` does not match the implied geometry.
pub fn col2im_t(
    cols_t: &[f32],
    n: usize,
    ci: usize,
    h: usize,
    w: usize,
    cfg: Conv2dCfg,
    threads: usize,
) -> Tensor {
    let (ho, wo) = cfg.out_extent(h, w);
    let cols_w = ci * cfg.kernel_h * cfg.kernel_w;
    let pixels = n * ho * wo;
    assert_eq!(cols_t.len(), cols_w * pixels, "col2im_t size mismatch");
    let mut out = Tensor::zeros(&[n, ci, h, w]);
    let plane = ci * h * w;
    crate::ops::pack::scoped_chunks(out.data_mut(), plane, n, threads, |_, first, planes| {
        for (s, dst) in planes.chunks_mut(plane).enumerate() {
            scatter_sample_t(cols_t, pixels, first + s, dst, ci, h, w, cfg);
        }
    });
    out
}

/// One sample's scatter from the transposed column layout: for each tap,
/// each output row contributes one contiguous zip-add into the input row.
#[allow(clippy::too_many_arguments)]
fn scatter_sample_t(
    cols_t: &[f32],
    pixels: usize,
    ni: usize,
    out: &mut [f32],
    ci: usize,
    h: usize,
    w: usize,
    cfg: Conv2dCfg,
) {
    let (ho, wo) = cfg.out_extent(h, w);
    let (kh, kw) = (cfg.kernel_h, cfg.kernel_w);
    let pad_w = cfg.pad_w as isize;
    let row0 = ni * ho * wo;
    for c in 0..ci {
        for ky in 0..kh {
            for kx in 0..kw {
                let tap = (c * kh + ky) * kw + kx;
                let kxi = kx as isize;
                let ox_lo = ((pad_w - kxi).max(0) as usize).div_ceil(cfg.stride);
                let ox_hi = {
                    let top = w as isize - 1 - kxi + pad_w;
                    if top < 0 {
                        0
                    } else {
                        ((top / cfg.stride as isize) as usize + 1).min(wo)
                    }
                };
                if ox_lo >= ox_hi {
                    continue;
                }
                let len = ox_hi - ox_lo;
                for oy in 0..ho {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.pad_h as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let src0 = tap * pixels + row0 + oy * wo + ox_lo;
                    let ix0 = ((ox_lo * cfg.stride) as isize + kxi - pad_w) as usize;
                    let dst_row = (c * h + iy as usize) * w;
                    if cfg.stride == 1 {
                        for (dst, &v) in out[dst_row + ix0..dst_row + ix0 + len]
                            .iter_mut()
                            .zip(&cols_t[src0..src0 + len])
                        {
                            *dst += v;
                        }
                    } else {
                        for q in 0..len {
                            out[dst_row + ix0 + q * cfg.stride] += cols_t[src0 + q];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters one sample's column rows into its `[ci, h, w]` plane.
///
/// Pixel-major (column rows are read contiguously); for each `(pixel, c,
/// ky)` the valid `kx` interval is precomputed, so the inner accumulate is
/// a branch-free zip of two contiguous slices.
fn scatter_sample(rows: &[f32], out: &mut [f32], ci: usize, h: usize, w: usize, cfg: Conv2dCfg) {
    let (ho, wo) = cfg.out_extent(h, w);
    let (kh, kw) = (cfg.kernel_h, cfg.kernel_w);
    let cols_w = ci * kh * kw;
    for oy in 0..ho {
        for ox in 0..wo {
            let base = (oy * wo + ox) * cols_w;
            let iy0 = (oy * cfg.stride) as isize - cfg.pad_h as isize;
            let ix0 = (ox * cfg.stride) as isize - cfg.pad_w as isize;
            // Valid kx interval for this output column.
            let kx_lo = (-ix0).max(0) as usize;
            let kx_hi = (w as isize - ix0).clamp(0, kw as isize) as usize;
            if kx_lo >= kx_hi {
                continue;
            }
            for c in 0..ci {
                for ky in 0..kh {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let dst0 = (c * h + iy as usize) * w + (ix0 + kx_lo as isize) as usize;
                    let src0 = base + (c * kh + ky) * kw + kx_lo;
                    let len = kx_hi - kx_lo;
                    for (dst, &v) in out[dst0..dst0 + len]
                        .iter_mut()
                        .zip(&rows[src0..src0 + len])
                    {
                        *dst += v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_rows_are_receptive_fields() {
        // 1x1 input channel, 3x3 image, 2x2 kernel, no pad.
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let cols = im2col(&x, Conv2dCfg::square(2, 1, 0));
        assert_eq!(cols.shape(), &[4, 4]);
        // Top-left field: 1 2 / 4 5.
        assert_eq!(&cols.data()[0..4], &[1.0, 2.0, 4.0, 5.0]);
        // Bottom-right field: 5 6 / 8 9.
        assert_eq!(&cols.data()[12..16], &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_produces_zero_border() {
        let x = Tensor::full(&[1, 1, 2, 2], 1.0);
        let cols = im2col(&x, Conv2dCfg::square(3, 1, 1));
        assert_eq!(cols.shape(), &[4, 9]);
        // Top-left field has zeros along its first row and column.
        let first = &cols.data()[0..9];
        assert_eq!(first, &[0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish tensors: the
        // defining property of an adjoint pair (used by conv backward).
        let x = Tensor::from_vec(
            &[2, 3, 5, 5],
            (0..150).map(|v| (v % 13) as f32 - 6.0).collect(),
        );
        let cfg = Conv2dCfg::square(3, 2, 1);
        let cols = im2col(&x, cfg);
        let y = Tensor::from_vec(
            cols.shape(),
            (0..cols.len()).map(|v| (v % 7) as f32 - 3.0).collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, 2, 3, 5, 5, cfg);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn out_extent_matches_formula() {
        let cfg = Conv2dCfg::square(3, 2, 1);
        assert_eq!(cfg.out_extent(56, 56), (28, 28));
    }
}
