//! Channel-wise concatenation and its inverse split — the merge/unmerge
//! pair Inception-style blocks are built from.
//!
//! Both operate on NCHW tensors sharing batch and spatial extents. The
//! concat is the forward merge; the split is its exact adjoint (backward
//! routes each channel range of the output gradient to its branch).

use crate::tensor::Tensor;

/// Concatenates NCHW tensors along the channel axis.
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::concat_channels;
/// use mbs_tensor::Tensor;
///
/// let a = Tensor::from_vec(&[1, 1, 1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec(&[1, 2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]);
/// let y = concat_channels(&[&a, &b]);
/// assert_eq!(y.shape(), &[1, 3, 1, 2]);
/// assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// ```
///
/// # Panics
///
/// Panics if `parts` is empty, any part is not 4-D, or batch/spatial
/// extents disagree.
pub fn concat_channels(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat needs at least one operand");
    let [n, _, h, w]: [usize; 4] = parts[0]
        .shape()
        .try_into()
        .expect("concat expects 4-D operands");
    let mut c_total = 0usize;
    for p in parts {
        let [pn, pc, ph, pw]: [usize; 4] =
            p.shape().try_into().expect("concat expects 4-D operands");
        assert_eq!((pn, ph, pw), (n, h, w), "concat batch/spatial mismatch");
        c_total += pc;
    }
    let mut out = Tensor::uninit(&[n, c_total, h, w]);
    let od = out.data_mut();
    let hw = h * w;
    let mut c_off = 0usize;
    for p in parts {
        let pc = p.shape()[1];
        let pd = p.data();
        for ni in 0..n {
            let src = ni * pc * hw;
            let dst = (ni * c_total + c_off) * hw;
            od[dst..dst + pc * hw].copy_from_slice(&pd[src..src + pc * hw]);
        }
        c_off += pc;
    }
    out
}

/// Extracts channels `[c_start, c_start + channels)` of an NCHW tensor —
/// the adjoint routing of [`concat_channels`], used by the concat block's
/// backward to hand each branch its slice of the output gradient.
///
/// # Examples
///
/// ```
/// use mbs_tensor::ops::{concat_channels, slice_channels};
/// use mbs_tensor::Tensor;
///
/// let a = Tensor::from_vec(&[1, 1, 1, 2], vec![1.0, 2.0]);
/// let b = Tensor::from_vec(&[1, 2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]);
/// let y = concat_channels(&[&a, &b]);
/// assert_eq!(slice_channels(&y, 0, 1), a);
/// assert_eq!(slice_channels(&y, 1, 2), b);
/// ```
///
/// # Panics
///
/// Panics if `x` is not 4-D or the channel range is out of bounds.
pub fn slice_channels(x: &Tensor, c_start: usize, channels: usize) -> Tensor {
    let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("slice expects 4-D");
    assert!(c_start + channels <= c, "channel slice out of range");
    let mut out = Tensor::uninit(&[n, channels, h, w]);
    let od = out.data_mut();
    let xd = x.data();
    let hw = h * w;
    for ni in 0..n {
        let src = (ni * c + c_start) * hw;
        let dst = ni * channels * hw;
        od[dst..dst + channels * hw].copy_from_slice(&xd[src..src + channels * hw]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_then_slice_round_trips() {
        let a = Tensor::from_vec(&[2, 2, 2, 2], (0..16).map(|v| v as f32).collect());
        let b = Tensor::from_vec(&[2, 3, 2, 2], (0..24).map(|v| 100.0 + v as f32).collect());
        let c = Tensor::from_vec(&[2, 1, 2, 2], (0..8).map(|v| 200.0 + v as f32).collect());
        let y = concat_channels(&[&a, &b, &c]);
        assert_eq!(y.shape(), &[2, 6, 2, 2]);
        assert_eq!(slice_channels(&y, 0, 2), a);
        assert_eq!(slice_channels(&y, 2, 3), b);
        assert_eq!(slice_channels(&y, 5, 1), c);
    }

    #[test]
    #[should_panic(expected = "spatial mismatch")]
    fn concat_rejects_spatial_mismatch() {
        let a = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1, 1, 3, 3]);
        let _ = concat_channels(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_overrun() {
        let a = Tensor::zeros(&[1, 2, 2, 2]);
        let _ = slice_channels(&a, 1, 2);
    }
}
