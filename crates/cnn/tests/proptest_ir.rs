//! Property-based tests of the CNN IR: shape inference and statistics stay
//! coherent over randomized layer stacks.

use proptest::prelude::*;

use mbs_cnn::networks::toy::conv_chain;
use mbs_cnn::stats::{backward_store_bytes, layer_footprints, reuse_summary};
use mbs_cnn::{FeatureShape, Layer, PoolKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conv shape inference matches the closed-form extent formula for any
    /// geometry where the kernel fits.
    #[test]
    fn conv_extent_formula(
        h in 4usize..64,
        w in 4usize..64,
        kernel in 1usize..5,
        stride in 1usize..4,
        pad in 0usize..3,
        ci in 1usize..16,
        co in 1usize..16,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let input = FeatureShape::new(ci, h, w);
        let conv = Layer::conv("c", input, co, kernel, stride, pad).unwrap();
        prop_assert_eq!(conv.output.height, (h + 2 * pad - kernel) / stride + 1);
        prop_assert_eq!(conv.output.width, (w + 2 * pad - kernel) / stride + 1);
        prop_assert_eq!(conv.output.channels, co);
        // MACs = out elems x kernel volume x input channels.
        prop_assert_eq!(
            conv.forward_macs(),
            conv.output.elems() * ci * kernel * kernel
        );
    }

    /// Pooling preserves channels and never grows the spatial extent when
    /// unpadded.
    #[test]
    fn pooling_shrinks(
        h in 4usize..40,
        kernel in 2usize..4,
        stride in 1usize..4,
    ) {
        prop_assume!(h >= kernel);
        let input = FeatureShape::new(8, h, h);
        let pool = Layer::pool("p", input, PoolKind::Max, kernel, stride, 0).unwrap();
        prop_assert_eq!(pool.output.channels, 8);
        prop_assert!(pool.output.height <= h);
    }

    /// Footprints scale linearly with batch; parameters do not.
    #[test]
    fn footprints_scale_with_batch(
        widths in proptest::collection::vec(2usize..32, 1..5),
        batch in 1usize..16,
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), batch);
        let f1 = layer_footprints(&net, 1);
        let fb = layer_footprints(&net, batch);
        for (a, b) in f1.iter().zip(&fb) {
            prop_assert_eq!(a.inter_layer_bytes * batch, b.inter_layer_bytes);
            prop_assert_eq!(a.param_bytes, b.param_bytes);
        }
    }

    /// Reuse percentage is monotone in buffer size and bounded by 100.
    #[test]
    fn reuse_is_monotone_in_buffer(
        widths in proptest::collection::vec(2usize..32, 1..4),
        buf_kib in 16usize..4096,
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), 8);
        let small = reuse_summary(&net, 8, buf_kib * 1024);
        let large = reuse_summary(&net, 8, buf_kib * 2048);
        prop_assert!(small.reusable_pct <= large.reusable_pct + 1e-9);
        prop_assert!(large.reusable_pct <= 100.0);
    }

    /// Networks survive a serde round trip exactly — the IR is now the
    /// source of truth for *runnable* models (the train crate lowers it),
    /// so a serialized network must deserialize to an identical graph.
    #[test]
    fn network_serde_round_trip(
        widths in proptest::collection::vec(2usize..32, 1..5),
        batch in 1usize..16,
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), batch);
        let json = serde_json::to_string(&net).expect("serialize network");
        let back: mbs_cnn::Network = serde_json::from_str(&json).expect("deserialize network");
        prop_assert_eq!(back, net);
    }

    /// Backward stores never exceed total inter-layer data.
    #[test]
    fn backward_stores_bounded(
        widths in proptest::collection::vec(2usize..32, 1..4),
        batch in 1usize..8,
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), batch);
        let stores = backward_store_bytes(&net, batch);
        let total: usize = layer_footprints(&net, batch)
            .iter()
            .map(|f| f.inter_layer_bytes)
            .sum();
        prop_assert!(stores <= total);
    }
}
