//! Whole-network IR: a sequential chain of [`Node`]s plus a builder that
//! tracks the running feature shape.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::block::{Block, Node};
use crate::layer::{FeatureShape, Layer, NormKind, PoolKind, ShapeError};

/// A CNN described as a sequential chain of scheduling units.
///
/// Multi-branch structure lives *inside* [`Node::Block`] values; at the top
/// level every node consumes the previous node's output, which is exactly
/// the granularity at which the paper's scheduler forms layer groups.
///
/// # Examples
///
/// ```
/// use mbs_cnn::networks::resnet;
///
/// let net = resnet(50);
/// // stem conv/norm/relu + pool + 16 blocks + norm/relu + pool + fc
/// assert_eq!(net.nodes().len(), 24);
/// assert_eq!(net.output().channels, 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input: FeatureShape,
    nodes: Vec<Node>,
    default_batch: usize,
}

impl Network {
    /// Network name (e.g. `ResNet50`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-sample input shape.
    pub fn input(&self) -> FeatureShape {
        self.input
    }

    /// Per-sample output shape of the last node.
    pub fn output(&self) -> FeatureShape {
        self.nodes.last().map_or(self.input, Node::output)
    }

    /// The scheduling units in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The per-core mini-batch size used in the paper's evaluation for this
    /// network (32 for the deep CNNs, 64 for AlexNet).
    pub fn default_batch(&self) -> usize {
        self.default_batch
    }

    /// Iterates over every layer of the network in execution order.
    pub fn layers(&self) -> impl Iterator<Item = &Layer> {
        self.nodes.iter().flat_map(|n| n.layers())
    }

    /// Total learnable parameter elements.
    pub fn param_elems(&self) -> usize {
        self.nodes.iter().map(Node::param_elems).sum()
    }

    /// Total forward multiply-accumulates per sample.
    pub fn forward_macs(&self) -> usize {
        self.nodes.iter().map(Node::forward_macs).sum()
    }

    /// Input shape of node `i` (output of node `i - 1`).
    pub fn node_input(&self, i: usize) -> FeatureShape {
        if i == 0 {
            self.input
        } else {
            self.nodes[i - 1].output()
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (input {}, batch {})",
            self.name, self.input, self.default_batch
        )?;
        for node in &self.nodes {
            writeln!(f, "  {node}")?;
        }
        Ok(())
    }
}

/// Incremental [`Network`] builder that tracks the running per-sample shape.
///
/// # Examples
///
/// ```
/// use mbs_cnn::{NetworkBuilder, FeatureShape, NormKind, PoolKind};
///
/// # fn main() -> Result<(), mbs_cnn::ShapeError> {
/// let net = NetworkBuilder::new("tiny", FeatureShape::new(3, 32, 32), 16)
///     .conv("conv1", 16, 3, 1, 1)?
///     .norm("norm1", NormKind::Group { groups: 4 })
///     .relu("relu1")
///     .pool("pool1", PoolKind::Max, 2, 2, 0)?
///     .global_avg_pool("gap")
///     .fully_connected("fc", 10)
///     .build();
/// assert_eq!(net.output().channels, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input: FeatureShape,
    nodes: Vec<Node>,
    cursor: FeatureShape,
    default_batch: usize,
}

impl NetworkBuilder {
    /// Starts a network with the given input shape and default per-core
    /// mini-batch size.
    pub fn new(name: impl Into<String>, input: FeatureShape, default_batch: usize) -> Self {
        Self {
            name: name.into(),
            input,
            nodes: Vec::new(),
            cursor: input,
            default_batch,
        }
    }

    /// Current running shape.
    pub fn shape(&self) -> FeatureShape {
        self.cursor
    }

    /// Appends a pre-built node; its input must match the running shape.
    ///
    /// # Panics
    ///
    /// Panics if the node input does not match the running shape — this is a
    /// construction-time bug, not a runtime condition.
    pub fn push(mut self, node: Node) -> Self {
        assert_eq!(
            node.input(),
            self.cursor,
            "node {} input does not match running shape",
            node.name()
        );
        self.cursor = node.output();
        self.nodes.push(node);
        self
    }

    /// Appends a convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the kernel does not fit.
    pub fn conv(
        self,
        name: &str,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ShapeError> {
        let layer = Layer::conv(name, self.cursor, out_channels, kernel, stride, pad)?;
        Ok(self.push(Node::Single(layer)))
    }

    /// Appends a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the window does not fit.
    pub fn pool(
        self,
        name: &str,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ShapeError> {
        let layer = Layer::pool(name, self.cursor, kind, kernel, stride, pad)?;
        Ok(self.push(Node::Single(layer)))
    }

    /// Appends a normalization layer.
    pub fn norm(self, name: &str, kind: NormKind) -> Self {
        let layer = Layer::norm(name, self.cursor, kind);
        self.push(Node::Single(layer))
    }

    /// Appends a ReLU layer.
    pub fn relu(self, name: &str) -> Self {
        let layer = Layer::relu(name, self.cursor);
        self.push(Node::Single(layer))
    }

    /// Appends a global average pooling layer.
    pub fn global_avg_pool(self, name: &str) -> Self {
        let layer = Layer::global_avg_pool(name, self.cursor);
        self.push(Node::Single(layer))
    }

    /// Appends a fully-connected layer.
    pub fn fully_connected(self, name: &str, out_features: usize) -> Self {
        let layer = Layer::fully_connected(name, self.cursor, out_features);
        self.push(Node::Single(layer))
    }

    /// Appends a multi-branch block.
    pub fn block(self, block: Block) -> Self {
        self.push(Node::Block(block))
    }

    /// Finishes the network.
    pub fn build(self) -> Network {
        Network {
            name: self.name,
            input: self.input,
            nodes: self.nodes,
            default_batch: self.default_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_shape() {
        let b = NetworkBuilder::new("t", FeatureShape::new(3, 8, 8), 4)
            .conv("c", 8, 3, 1, 1)
            .unwrap();
        assert_eq!(b.shape(), FeatureShape::new(8, 8, 8));
        let net = b.relu("r").build();
        assert_eq!(net.nodes().len(), 2);
        assert_eq!(net.node_input(0), FeatureShape::new(3, 8, 8));
        assert_eq!(net.node_input(1), FeatureShape::new(8, 8, 8));
    }

    #[test]
    #[should_panic(expected = "does not match running shape")]
    fn builder_rejects_shape_mismatch() {
        let layer = Layer::relu("r", FeatureShape::new(5, 5, 5));
        let _ = NetworkBuilder::new("t", FeatureShape::new(3, 8, 8), 4).push(Node::Single(layer));
    }

    #[test]
    fn empty_network_output_is_input() {
        let net = NetworkBuilder::new("e", FeatureShape::new(3, 8, 8), 4).build();
        assert_eq!(net.output(), net.input());
        assert_eq!(net.param_elems(), 0);
    }

    #[test]
    fn display_contains_layers() {
        let net = NetworkBuilder::new("t", FeatureShape::new(3, 8, 8), 4)
            .conv("c", 8, 3, 1, 1)
            .unwrap()
            .build();
        let s = net.to_string();
        assert!(s.contains('c'));
        assert!(s.contains("8x8x8"));
    }
}
