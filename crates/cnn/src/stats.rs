//! Per-layer footprint statistics (the paper's Fig. 3 analysis).

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::network::Network;

/// Footprint of one layer for a given mini-batch size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerFootprint {
    /// Layer name.
    pub name: String,
    /// Layer type tag (`conv`, `norm`, ...).
    pub kind: String,
    /// Inter-layer data (input + output features) bytes for the whole
    /// mini-batch.
    pub inter_layer_bytes: usize,
    /// Parameter bytes.
    pub param_bytes: usize,
}

/// Computes the per-layer footprints of `net` for a mini-batch of `batch`
/// samples, in execution order.
///
/// # Examples
///
/// ```
/// use mbs_cnn::{networks::resnet, stats};
///
/// let fp = stats::layer_footprints(&resnet(50), 32);
/// assert!(fp.len() > 100); // >100 layers in ResNet50
/// ```
pub fn layer_footprints(net: &Network, batch: usize) -> Vec<LayerFootprint> {
    net.layers().map(|l| layer_footprint(l, batch)).collect()
}

fn layer_footprint(layer: &Layer, batch: usize) -> LayerFootprint {
    LayerFootprint {
        name: layer.name.clone(),
        kind: layer.kind.type_tag().to_owned(),
        inter_layer_bytes: layer.inter_layer_bytes() * batch,
        param_bytes: layer.param_bytes(),
    }
}

/// Summary of how much inter-layer data a given on-chip buffer could reuse
/// under conventional (whole-mini-batch) training — the paper's "only 9.3%
/// of inter-layer data can be reused even with 10MiB" observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReuseSummary {
    /// Total inter-layer bytes across all layers.
    pub total_inter_layer_bytes: usize,
    /// Inter-layer bytes belonging to layers whose whole-mini-batch
    /// footprint fits in the buffer.
    pub reusable_bytes: usize,
    /// `reusable / total` as a percentage.
    pub reusable_pct: f64,
}

/// Computes the fraction of inter-layer data reusable on chip when whole
/// mini-batch footprints must fit in `buffer_bytes`.
pub fn reuse_summary(net: &Network, batch: usize, buffer_bytes: usize) -> ReuseSummary {
    let fps = layer_footprints(net, batch);
    let total: usize = fps.iter().map(|f| f.inter_layer_bytes).sum();
    let reusable: usize = fps
        .iter()
        .filter(|f| f.inter_layer_bytes <= buffer_bytes)
        .map(|f| f.inter_layer_bytes)
        .sum();
    ReuseSummary {
        total_inter_layer_bytes: total,
        reusable_bytes: reusable,
        reusable_pct: if total == 0 {
            0.0
        } else {
            100.0 * reusable as f64 / total as f64
        },
    }
}

/// Total bytes of all feature maps that must be stored during the forward
/// pass for reuse in back propagation (conv/FC/norm/max-pool inputs), for
/// one mini-batch.
pub fn backward_store_bytes(net: &Network, batch: usize) -> usize {
    net.layers()
        .filter(|l| l.kind.needs_input_in_backward())
        .map(|l| l.input_bytes() * batch)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks::{resnet, toy};

    #[test]
    fn footprints_scale_linearly_with_batch() {
        let net = toy::fig1_toy();
        let f1 = layer_footprints(&net, 1);
        let f8 = layer_footprints(&net, 8);
        for (a, b) in f1.iter().zip(&f8) {
            assert_eq!(a.inter_layer_bytes * 8, b.inter_layer_bytes);
            assert_eq!(a.param_bytes, b.param_bytes);
        }
    }

    #[test]
    fn resnet50_reuse_under_10mib_is_small() {
        // Paper Fig. 3: only ~9.3% of ResNet50 inter-layer data fits a
        // 10MiB buffer at mini-batch 32. Our layer decomposition differs
        // slightly (norm/relu counted separately), so allow a band.
        let s = reuse_summary(&resnet(50), 32, 10 * 1024 * 1024);
        assert!(s.reusable_pct < 25.0, "reusable {:.1}%", s.reusable_pct);
        assert!(s.reusable_pct > 0.0);
    }

    #[test]
    fn larger_buffer_reuses_more() {
        let net = resnet(50);
        let small = reuse_summary(&net, 32, 5 * 1024 * 1024);
        let large = reuse_summary(&net, 32, 40 * 1024 * 1024);
        assert!(large.reusable_bytes > small.reusable_bytes);
    }

    #[test]
    fn backward_stores_are_positive_and_below_total() {
        let net = resnet(50);
        let stores = backward_store_bytes(&net, 32);
        let total: usize = layer_footprints(&net, 32)
            .iter()
            .map(|f| f.inter_layer_bytes)
            .sum();
        assert!(stores > 0);
        assert!(stores < total);
    }
}
