//! Multi-branch blocks (residual / inception modules) and the [`Node`]
//! scheduling unit.
//!
//! The paper treats a multi-branch module as a single unit for locality
//! optimization (§3, "Data Reuse Within Multi-Branch Modules"): the block
//! input is shared by all branches and branch outputs merge via a sum
//! (residual) or concatenation (inception).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layer::{FeatureShape, Layer, ShapeError};

/// How branch outputs are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeOp {
    /// Element-wise sum (residual blocks). All branches must produce the
    /// same shape.
    Sum,
    /// Channel-wise concatenation (inception modules). All branches must
    /// produce the same spatial extent.
    Concat,
}

/// Block flavor, which selects the buffer-provisioning equation used by the
/// MBS scheduler (paper Eq. 1 for residual, Eq. 2 for inception).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Two-branch residual module: a main branch plus a shortcut branch
    /// (identity or a projection convolution).
    Residual,
    /// N-branch inception module merged by concatenation.
    Inception,
}

/// A multi-branch module scheduled as one unit.
///
/// Branch 0 is the *main* branch by convention (paper Eq. 1 uses `b = 1` for
/// the main branch). An empty branch represents an identity shortcut.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (e.g. `res2a`).
    pub name: String,
    /// Residual or inception.
    pub kind: BlockKind,
    /// Layer chains, each starting from the block input.
    pub branches: Vec<Vec<Layer>>,
    /// The merge layer (`Add` or `Concat`).
    pub merge: Layer,
    /// Post-merge layers (e.g. the ReLU after a residual add).
    pub post: Vec<Layer>,
    /// Block input shape (shared by all branches).
    pub input: FeatureShape,
    /// Block output shape (after merge and post layers).
    pub output: FeatureShape,
}

fn branch_output(input: FeatureShape, branch: &[Layer]) -> FeatureShape {
    branch.last().map_or(input, |l| l.output)
}

impl Block {
    /// Builds a residual block from a main branch and a shortcut branch
    /// (empty = identity), adding the merge `Add` and a post-merge ReLU.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if branch outputs disagree or a branch does
    /// not start from the block input shape.
    pub fn residual(
        name: impl Into<String>,
        input: FeatureShape,
        main: Vec<Layer>,
        shortcut: Vec<Layer>,
    ) -> Result<Self, ShapeError> {
        let name = name.into();
        let branches = vec![main, shortcut];
        let out = validate_branches(input, &branches)?;
        for b in &branches {
            let o = branch_output(input, b);
            if o != out {
                return Err(ShapeError::new(format!(
                    "residual block {name}: branch output {o} != {out}"
                )));
            }
        }
        let merge = Layer::add(format!("{name}.add"), out);
        let post = vec![Layer::relu(format!("{name}.relu"), out)];
        Ok(Self {
            name,
            kind: BlockKind::Residual,
            branches,
            merge,
            post,
            input,
            output: out,
        })
    }

    /// Builds an inception block whose branches merge by concatenation.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if branch spatial extents disagree or a branch
    /// is empty (identity branches are not meaningful under `Concat`).
    pub fn inception(
        name: impl Into<String>,
        input: FeatureShape,
        branches: Vec<Vec<Layer>>,
    ) -> Result<Self, ShapeError> {
        let name = name.into();
        if branches.iter().any(Vec::is_empty) {
            return Err(ShapeError::new(format!(
                "inception block {name}: empty branch not allowed"
            )));
        }
        validate_branches(input, &branches)?;
        let outs: Vec<FeatureShape> = branches.iter().map(|b| branch_output(input, b)).collect();
        let (h, w) = (outs[0].height, outs[0].width);
        for o in &outs {
            if (o.height, o.width) != (h, w) {
                return Err(ShapeError::new(format!(
                    "inception block {name}: branch spatial {o} != {h}x{w}"
                )));
            }
        }
        let total_c: usize = outs.iter().map(|o| o.channels).sum();
        let merge = Layer::concat(
            format!("{name}.concat"),
            FeatureShape::new(0, h, w),
            total_c,
        );
        let output = merge.output;
        Ok(Self {
            name,
            kind: BlockKind::Inception,
            branches,
            merge,
            post: Vec::new(),
            input,
            output,
        })
    }

    /// Number of branches.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Iterates over every layer inside the block, in execution order
    /// (branch by branch, then merge, then post layers).
    pub fn layers(&self) -> impl Iterator<Item = &Layer> {
        self.branches
            .iter()
            .flatten()
            .chain(std::iter::once(&self.merge))
            .chain(self.post.iter())
    }

    /// Output shape of branch `b` (the block input for identity branches).
    pub fn branch_output(&self, b: usize) -> FeatureShape {
        branch_output(self.input, &self.branches[b])
    }

    /// Total learnable parameter elements in the block.
    pub fn param_elems(&self) -> usize {
        self.layers().map(Layer::param_elems).sum()
    }

    /// Total forward multiply-accumulates per sample in the block.
    pub fn forward_macs(&self) -> usize {
        self.layers().map(Layer::forward_macs).sum()
    }
}

fn validate_branches(
    input: FeatureShape,
    branches: &[Vec<Layer>],
) -> Result<FeatureShape, ShapeError> {
    if branches.is_empty() {
        return Err(ShapeError::new("block must have at least one branch"));
    }
    for branch in branches {
        let mut cur = input;
        for layer in branch {
            if layer.input != cur {
                return Err(ShapeError::new(format!(
                    "layer {} expects input {} but receives {}",
                    layer.name, layer.input, cur
                )));
            }
            cur = layer.output;
        }
    }
    Ok(branch_output(input, &branches[0]))
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:?}, {} branches] {} -> {}",
            self.name,
            self.kind,
            self.branch_count(),
            self.input,
            self.output
        )
    }
}

/// One scheduling unit in a [`crate::Network`]: either a single layer or a
/// whole multi-branch block (the granularity of the paper's Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// A single layer.
    Single(Layer),
    /// A multi-branch block.
    Block(Block),
}

impl Node {
    /// Node name.
    pub fn name(&self) -> &str {
        match self {
            Node::Single(l) => &l.name,
            Node::Block(b) => &b.name,
        }
    }

    /// Per-sample input shape.
    pub fn input(&self) -> FeatureShape {
        match self {
            Node::Single(l) => l.input,
            Node::Block(b) => b.input,
        }
    }

    /// Per-sample output shape.
    pub fn output(&self) -> FeatureShape {
        match self {
            Node::Single(l) => l.output,
            Node::Block(b) => b.output,
        }
    }

    /// Iterates over all layers contained in the node.
    pub fn layers(&self) -> Box<dyn Iterator<Item = &Layer> + '_> {
        match self {
            Node::Single(l) => Box::new(std::iter::once(l)),
            Node::Block(b) => Box::new(b.layers()),
        }
    }

    /// Total learnable parameter elements.
    pub fn param_elems(&self) -> usize {
        self.layers().map(Layer::param_elems).sum()
    }

    /// Total forward multiply-accumulates per sample.
    pub fn forward_macs(&self) -> usize {
        self.layers().map(Layer::forward_macs).sum()
    }

    /// Short tag describing the node for schedule printouts, mirroring the
    /// x-axis labels of the paper's Fig. 4 (`CONV`, `POOL`, `RES_BLK`, ...).
    pub fn tag(&self) -> String {
        match self {
            Node::Single(l) => l.kind.type_tag().to_uppercase(),
            Node::Block(b) => match b.kind {
                BlockKind::Residual => "RES_BLK".to_owned(),
                BlockKind::Inception => "INC_BLK".to_owned(),
            },
        }
    }

    /// Whether the first layer(s) consuming the node input require it again
    /// during back propagation (drives forward stores, see traffic model).
    pub fn is_block(&self) -> bool {
        matches!(self, Node::Block(_))
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Single(l) => l.fmt(f),
            Node::Block(b) => b.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::NormKind;

    fn shape() -> FeatureShape {
        FeatureShape::new(64, 56, 56)
    }

    fn conv_norm_relu(
        prefix: &str,
        input: FeatureShape,
        co: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Vec<Layer> {
        let conv = Layer::conv(format!("{prefix}.conv"), input, co, k, stride, pad).unwrap();
        let norm = Layer::norm(
            format!("{prefix}.norm"),
            conv.output,
            NormKind::Group { groups: 32 },
        );
        let relu = Layer::relu(format!("{prefix}.relu"), norm.output);
        vec![conv, norm, relu]
    }

    #[test]
    fn residual_block_with_identity_shortcut() {
        let s = shape();
        let mut main = conv_norm_relu("a", s, 64, 3, 1, 1);
        main.extend(conv_norm_relu("b", s, 64, 3, 1, 1));
        let block = Block::residual("res", s, main, vec![]).unwrap();
        assert_eq!(block.output, s);
        assert_eq!(block.branch_count(), 2);
        assert_eq!(block.branch_output(1), s);
        // 6 branch layers + add + post relu
        assert_eq!(block.layers().count(), 8);
    }

    #[test]
    fn residual_block_rejects_mismatched_branches() {
        let s = shape();
        let main = conv_norm_relu("a", s, 128, 3, 1, 1);
        let err = Block::residual("res", s, main, vec![]).unwrap_err();
        assert!(err.to_string().contains("branch output"));
    }

    #[test]
    fn residual_block_rejects_discontinuous_chain() {
        let s = shape();
        let c1 = Layer::conv("c1", s, 64, 3, 1, 1).unwrap();
        let c2 = Layer::conv("c2", FeatureShape::new(32, 56, 56), 64, 3, 1, 1).unwrap();
        let err = Block::residual("res", s, vec![c1, c2], vec![]).unwrap_err();
        assert!(err.to_string().contains("expects input"));
    }

    #[test]
    fn inception_block_concatenates_channels() {
        let s = FeatureShape::new(192, 35, 35);
        let b1 = vec![Layer::conv("b1", s, 64, 1, 1, 0).unwrap()];
        let b2 = vec![
            Layer::conv("b2a", s, 48, 1, 1, 0).unwrap(),
            Layer::conv("b2b", FeatureShape::new(48, 35, 35), 64, 5, 1, 2).unwrap(),
        ];
        let block = Block::inception("incA", s, vec![b1, b2]).unwrap();
        assert_eq!(block.output, FeatureShape::new(128, 35, 35));
    }

    #[test]
    fn inception_block_rejects_empty_branch() {
        let s = FeatureShape::new(192, 35, 35);
        let b1 = vec![Layer::conv("b1", s, 64, 1, 1, 0).unwrap()];
        assert!(Block::inception("incA", s, vec![b1, vec![]]).is_err());
    }

    #[test]
    fn inception_block_rejects_spatial_mismatch() {
        let s = FeatureShape::new(192, 35, 35);
        let b1 = vec![Layer::conv("b1", s, 64, 1, 1, 0).unwrap()];
        let b2 = vec![Layer::conv("b2", s, 64, 3, 2, 0).unwrap()];
        assert!(Block::inception("incA", s, vec![b1, b2]).is_err());
    }

    #[test]
    fn node_accessors() {
        let s = shape();
        let node = Node::Single(Layer::relu("r", s));
        assert_eq!(node.name(), "r");
        assert_eq!(node.input(), s);
        assert_eq!(node.tag(), "RELU");
        assert!(!node.is_block());
    }
}
