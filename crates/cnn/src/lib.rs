//! CNN graph intermediate representation for the Mini-batch Serialization
//! (MBS) reproduction.
//!
//! The paper schedules CNN *training* at the granularity of layers and
//! multi-branch blocks (residual / inception modules). This crate provides:
//!
//! - [`Layer`] / [`LayerKind`]: single layers with shape inference,
//! - [`Block`] / [`Node`]: multi-branch modules treated as scheduling units,
//! - [`Network`]: a sequential chain of nodes (the paper's Fig. 4/5 view),
//! - [`networks`]: the evaluated network zoo (ResNet-50/101/152,
//!   Inception v3/v4, AlexNet) plus toy networks,
//! - [`stats`]: per-layer footprint and parameter statistics (paper Fig. 3).
//!
//! All sizes use 16-bit words ([`WORD_BYTES`]) as in the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use mbs_cnn::networks::resnet;
//!
//! let net = resnet(50);
//! assert_eq!(net.name(), "ResNet50");
//! // ~25.5M parameters for ResNet50.
//! let params = net.param_elems();
//! assert!(params > 23_000_000 && params < 28_000_000, "params = {params}");
//! ```

pub mod block;
pub mod layer;
pub mod network;
pub mod networks;
pub mod stats;

pub use block::{Block, BlockKind, MergeOp, Node};
pub use layer::{FeatureShape, Layer, LayerKind, NormKind, PoolKind, ShapeError};
pub use network::{Network, NetworkBuilder};

/// Size in bytes of one feature/weight word (16-bit floating point, as in the
/// paper's mixed-precision evaluation).
pub const WORD_BYTES: usize = 2;
