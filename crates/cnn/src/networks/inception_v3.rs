//! Inception v3 for 299×299 inputs (Szegedy et al., 2015).
//!
//! The 8×8 "InceptionC" modules contain branches that split *internally*
//! (one 1×1 feeding both a 1×3 and a 3×1 convolution). The IR models a
//! block as independent branches from a shared input, so the shared 1×1
//! prefix is duplicated into both branches. This slightly overstates compute
//! and intra-branch traffic for those two modules and is noted in DESIGN.md.

use crate::block::{Block, Node};
use crate::layer::{FeatureShape, Layer, PoolKind};
use crate::network::{Network, NetworkBuilder};

use super::conv_norm_relu;

fn cnr(
    prefix: &str,
    input: FeatureShape,
    co: usize,
    kernel: (usize, usize),
    stride: usize,
    pad: (usize, usize),
) -> Vec<Layer> {
    conv_norm_relu(prefix, input, co, kernel, stride, pad)
}

fn chain(input: FeatureShape, parts: Vec<Vec<Layer>>) -> Vec<Layer> {
    let mut out = Vec::new();
    let mut cur = input;
    for part in parts {
        debug_assert_eq!(part.first().expect("chain part non-empty").input, cur);
        cur = part.last().expect("chain part non-empty").output;
        out.extend(part);
    }
    out
}

fn avg_pool_proj(prefix: &str, input: FeatureShape, proj: usize) -> Vec<Layer> {
    let pool = Layer::pool(format!("{prefix}.pool"), input, PoolKind::Avg, 3, 1, 1)
        .expect("inception pool");
    let mut v = vec![pool];
    let p = v[0].output;
    v.extend(cnr(&format!("{prefix}.proj"), p, proj, (1, 1), 1, (0, 0)));
    v
}

/// 35×35 module: 1×1, 5×5, double-3×3 and pooled-projection branches.
fn inception_a(name: &str, input: FeatureShape, pool_proj: usize) -> Block {
    let b1 = cnr(&format!("{name}.b1"), input, 64, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 48, (1, 1), 1, (0, 0)),
            cnr(
                &format!("{name}.b2b"),
                FeatureShape::new(48, input.height, input.width),
                64,
                (5, 5),
                1,
                (2, 2),
            ),
        ],
    );
    let s96 = FeatureShape::new(96, input.height, input.width);
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, 64, (1, 1), 1, (0, 0)),
            cnr(
                &format!("{name}.b3b"),
                FeatureShape::new(64, input.height, input.width),
                96,
                (3, 3),
                1,
                (1, 1),
            ),
            cnr(&format!("{name}.b3c"), s96, 96, (3, 3), 1, (1, 1)),
        ],
    );
    let b4 = avg_pool_proj(&format!("{name}.b4"), input, pool_proj);
    Block::inception(name, input, vec![b1, b2, b3, b4])
        .unwrap_or_else(|e| panic!("inception_a {name}: {e}"))
}

/// 35→17 grid reduction.
fn reduction_a(name: &str, input: FeatureShape) -> Block {
    let b1 = cnr(&format!("{name}.b1"), input, 384, (3, 3), 2, (0, 0));
    let s = input;
    let b2 = chain(
        s,
        vec![
            cnr(&format!("{name}.b2a"), s, 64, (1, 1), 1, (0, 0)),
            cnr(
                &format!("{name}.b2b"),
                FeatureShape::new(64, s.height, s.width),
                96,
                (3, 3),
                1,
                (1, 1),
            ),
            cnr(
                &format!("{name}.b2c"),
                FeatureShape::new(96, s.height, s.width),
                96,
                (3, 3),
                2,
                (0, 0),
            ),
        ],
    );
    let b3 = vec![
        Layer::pool(format!("{name}.pool"), input, PoolKind::Max, 3, 2, 0).expect("reduction pool"),
    ];
    Block::inception(name, input, vec![b1, b2, b3])
        .unwrap_or_else(|e| panic!("reduction_a {name}: {e}"))
}

/// 17×17 module with factorized 7×7 convolutions; `c7` is the bottleneck
/// width (128, 160, 160, 192 across the four modules).
fn inception_b(name: &str, input: FeatureShape, c7: usize) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 192, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, c7, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(c7), c7, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b2c"), sp(c7), 192, (7, 1), 1, (3, 0)),
        ],
    );
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, c7, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b3b"), sp(c7), c7, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b3c"), sp(c7), c7, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b3d"), sp(c7), c7, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b3e"), sp(c7), 192, (1, 7), 1, (0, 3)),
        ],
    );
    let b4 = avg_pool_proj(&format!("{name}.b4"), input, 192);
    Block::inception(name, input, vec![b1, b2, b3, b4])
        .unwrap_or_else(|e| panic!("inception_b {name}: {e}"))
}

/// 17→8 grid reduction.
fn reduction_b(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = chain(
        input,
        vec![
            cnr(&format!("{name}.b1a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b1b"), sp(192), 320, (3, 3), 2, (0, 0)),
        ],
    );
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(192), 192, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b2c"), sp(192), 192, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b2d"), sp(192), 192, (3, 3), 2, (0, 0)),
        ],
    );
    let b3 = vec![
        Layer::pool(format!("{name}.pool"), input, PoolKind::Max, 3, 2, 0).expect("reduction pool"),
    ];
    Block::inception(name, input, vec![b1, b2, b3])
        .unwrap_or_else(|e| panic!("reduction_b {name}: {e}"))
}

/// 8×8 module with the expanded 1×3/3×1 filter bank (split branches
/// duplicated, see module docs).
fn inception_c(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 320, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(384), 384, (1, 3), 1, (0, 1)),
        ],
    );
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b3b"), sp(384), 384, (3, 1), 1, (1, 0)),
        ],
    );
    let b4 = chain(
        input,
        vec![
            cnr(&format!("{name}.b4a"), input, 448, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b4b"), sp(448), 384, (3, 3), 1, (1, 1)),
            cnr(&format!("{name}.b4c"), sp(384), 384, (1, 3), 1, (0, 1)),
        ],
    );
    let b5 = chain(
        input,
        vec![
            cnr(&format!("{name}.b5a"), input, 448, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b5b"), sp(448), 384, (3, 3), 1, (1, 1)),
            cnr(&format!("{name}.b5c"), sp(384), 384, (3, 1), 1, (1, 0)),
        ],
    );
    let b6 = avg_pool_proj(&format!("{name}.b6"), input, 192);
    Block::inception(name, input, vec![b1, b2, b3, b4, b5, b6])
        .unwrap_or_else(|e| panic!("inception_c {name}: {e}"))
}

/// Builds Inception v3 (299×299 input, 1000 classes).
///
/// # Examples
///
/// ```
/// let net = mbs_cnn::networks::inception_v3();
/// assert_eq!(net.output().channels, 1000);
/// ```
pub fn inception_v3() -> Network {
    let mut b = NetworkBuilder::new("InceptionV3", FeatureShape::new(3, 299, 299), 32);
    for l in cnr("stem1", b.shape(), 32, (3, 3), 2, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    for l in cnr("stem2", b.shape(), 32, (3, 3), 1, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    for l in cnr("stem3", b.shape(), 64, (3, 3), 1, (1, 1)) {
        b = b.push(Node::Single(l));
    }
    b = b
        .pool("stem.pool1", PoolKind::Max, 3, 2, 0)
        .expect("stem pool1");
    for l in cnr("stem4", b.shape(), 80, (1, 1), 1, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    for l in cnr("stem5", b.shape(), 192, (3, 3), 1, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    b = b
        .pool("stem.pool2", PoolKind::Max, 3, 2, 0)
        .expect("stem pool2");

    let blk = inception_a("mixed0", b.shape(), 32);
    b = b.block(blk);
    let blk = inception_a("mixed1", b.shape(), 64);
    b = b.block(blk);
    let blk = inception_a("mixed2", b.shape(), 64);
    b = b.block(blk);
    let blk = reduction_a("mixed3", b.shape());
    b = b.block(blk);
    for (i, c7) in [128usize, 160, 160, 192].iter().enumerate() {
        let blk = inception_b(&format!("mixed{}", 4 + i), b.shape(), *c7);
        b = b.block(blk);
    }
    let blk = reduction_b("mixed8", b.shape());
    b = b.block(blk);
    let blk = inception_c("mixed9", b.shape());
    b = b.block(blk);
    let blk = inception_c("mixed10", b.shape());
    b = b.block(blk);
    b = b.global_avg_pool("pool_final");
    b.fully_connected("fc", 1000).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_reaches_35x35x192() {
        let net = inception_v3();
        let first_block = net
            .nodes()
            .iter()
            .find(|n| n.is_block())
            .expect("has blocks");
        assert_eq!(first_block.input(), FeatureShape::new(192, 35, 35));
    }

    #[test]
    fn module_output_channels() {
        let net = inception_v3();
        let blocks: Vec<_> = net.nodes().iter().filter(|n| n.is_block()).collect();
        assert_eq!(blocks.len(), 11);
        let chans: Vec<usize> = blocks.iter().map(|b| b.output().channels).collect();
        assert_eq!(
            chans,
            [256, 288, 288, 768, 768, 768, 768, 768, 1280, 2048, 2048]
        );
    }

    #[test]
    fn grid_sizes() {
        let net = inception_v3();
        let blocks: Vec<_> = net.nodes().iter().filter(|n| n.is_block()).collect();
        assert_eq!(blocks[0].output().height, 35);
        assert_eq!(blocks[3].output().height, 17);
        assert_eq!(blocks[8].output().height, 8);
    }

    #[test]
    fn param_count_plausible() {
        // ~24M canonical; split-branch duplication adds the shared 1x1/3x3
        // prefixes of the two C modules (~+5M).
        let p = inception_v3().param_elems();
        assert!((22_000_000..33_000_000).contains(&p), "params {p}");
    }
}
