//! ResNet-50/101/152 for 224×224 ImageNet inputs (He et al., 2016), built
//! from bottleneck residual blocks.

use crate::block::{Block, Node};
use crate::layer::{FeatureShape, NormKind, PoolKind};
use crate::network::{Network, NetworkBuilder};

use super::{conv_norm, conv_norm_relu, norm_groups};

/// Builds a standard ResNet.
///
/// Supported depths: 50, 101, 152 (the three the paper evaluates).
///
/// # Panics
///
/// Panics if `depth` is not one of the supported values. Use
/// [`resnet_custom`] for other stage configurations.
///
/// # Examples
///
/// ```
/// let net = mbs_cnn::networks::resnet(50);
/// assert_eq!(net.output().channels, 1000);
/// ```
pub fn resnet(depth: usize) -> Network {
    let stages: [usize; 4] = match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        152 => [3, 8, 36, 3],
        other => panic!("unsupported ResNet depth {other}; use resnet_custom"),
    };
    resnet_custom(&format!("ResNet{depth}"), stages, 1000, 32)
}

/// Builds a bottleneck ResNet with arbitrary per-stage block counts.
///
/// `stages` gives the number of bottleneck blocks in each of the four
/// stages (56², 28², 14², 7² feature maps).
pub fn resnet_custom(
    name: &str,
    stages: [usize; 4],
    classes: usize,
    default_batch: usize,
) -> Network {
    let mut b = NetworkBuilder::new(name, FeatureShape::new(3, 224, 224), default_batch);
    for layer in conv_norm_relu("conv1", b.shape(), 64, (7, 7), 2, (3, 3)) {
        b = b.push(Node::Single(layer));
    }
    b = b
        .pool("pool1", PoolKind::Max, 3, 2, 1)
        .expect("resnet pool1");

    for (stage, &blocks) in stages.iter().enumerate() {
        let mid = 64 << stage; // 64, 128, 256, 512
        let out = mid * 4;
        for i in 0..blocks {
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let block = bottleneck(
                &format!("res{}{}", stage + 2, letter(i)),
                b.shape(),
                mid,
                out,
                stride,
            );
            b = b.block(block);
        }
    }

    let shape = b.shape();
    b = b.push(Node::Single(crate::layer::Layer::norm(
        "norm5",
        shape,
        NormKind::Group {
            groups: norm_groups(shape.channels),
        },
    )));
    b = b.relu("relu5");
    b = b.global_avg_pool("pool5");
    b.fully_connected("fc", classes).build()
}

fn letter(i: usize) -> String {
    // resnet block naming: a, b, c, ... then b10, b11 ... for very deep nets
    if i < 26 {
        ((b'a' + i as u8) as char).to_string()
    } else {
        format!("b{i}")
    }
}

/// A 1×1 → 3×3 → 1×1 bottleneck residual block with an optional projection
/// shortcut (first block of each stage, or whenever shapes change).
fn bottleneck(
    name: &str,
    input: FeatureShape,
    mid_channels: usize,
    out_channels: usize,
    stride: usize,
) -> Block {
    let mut main = Vec::new();
    main.extend(conv_norm_relu(
        &format!("{name}.1"),
        input,
        mid_channels,
        (1, 1),
        1,
        (0, 0),
    ));
    let s1 = main.last().expect("bottleneck chain non-empty").output;
    main.extend(conv_norm_relu(
        &format!("{name}.2"),
        s1,
        mid_channels,
        (3, 3),
        stride,
        (1, 1),
    ));
    let s2 = main.last().expect("bottleneck chain non-empty").output;
    main.extend(conv_norm(
        &format!("{name}.3"),
        s2,
        out_channels,
        (1, 1),
        1,
        (0, 0),
    ));

    let shortcut = if stride != 1 || input.channels != out_channels {
        conv_norm(
            &format!("{name}.sc"),
            input,
            out_channels,
            (1, 1),
            stride,
            (0, 0),
        )
    } else {
        Vec::new()
    };

    Block::residual(name, input, main, shortcut)
        .unwrap_or_else(|e| panic!("bottleneck {name} invalid: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Node;

    #[test]
    fn resnet50_structure() {
        let net = resnet(50);
        // conv1(conv,norm,relu) + pool + 16 blocks + norm + relu + gap + fc = 23
        let blocks = net.nodes().iter().filter(|n| n.is_block()).count();
        assert_eq!(blocks, 3 + 4 + 6 + 3);
        assert_eq!(net.output().channels, 1000);
        // Parameter count ~25.5M (conv weights + norms + fc).
        let p = net.param_elems();
        assert!((23_000_000..28_000_000).contains(&p), "params {p}");
    }

    #[test]
    fn resnet101_and_152_depths() {
        assert_eq!(
            resnet(101).nodes().iter().filter(|n| n.is_block()).count(),
            3 + 4 + 23 + 3
        );
        assert_eq!(
            resnet(152).nodes().iter().filter(|n| n.is_block()).count(),
            3 + 8 + 36 + 3
        );
    }

    #[test]
    fn stage_shapes_downsample() {
        let net = resnet(50);
        let mut sizes = Vec::new();
        for n in net.nodes() {
            if let Node::Block(b) = n {
                sizes.push((b.output.height, b.output.channels));
            }
        }
        assert_eq!(sizes[0], (56, 256));
        assert_eq!(sizes[3], (28, 512));
        assert_eq!(sizes[7], (14, 1024));
        assert_eq!(sizes[13], (7, 2048));
    }

    #[test]
    fn first_stage_block_has_projection_then_identity() {
        let net = resnet(50);
        let blocks: Vec<&crate::Block> = net
            .nodes()
            .iter()
            .filter_map(|n| match n {
                Node::Block(b) => Some(b),
                _ => None,
            })
            .collect();
        assert!(!blocks[0].branches[1].is_empty(), "first block projects");
        assert!(blocks[1].branches[1].is_empty(), "second block identity");
    }

    #[test]
    fn resnet50_macs_are_about_4_gmacs() {
        // ~4.1 GMACs per 224x224 sample for the convolution-dominated graph.
        let macs = resnet(50).forward_macs();
        assert!(
            (3_500_000_000..5_000_000_000).contains(&macs),
            "macs {macs}"
        );
    }

    #[test]
    #[should_panic(expected = "unsupported ResNet depth")]
    fn unsupported_depth_panics() {
        let _ = resnet(34);
    }
}
