//! Small synthetic networks for tests, examples, and property-based fuzzing
//! of the scheduler.

use crate::block::{Block, Node};
use crate::layer::{FeatureShape, Layer, NormKind, PoolKind};
use crate::network::{Network, NetworkBuilder};

use super::{conv_norm, conv_norm_relu};

/// The paper's Fig. 1 toy network: convolutions and pooling whose early
/// layers exceed a small on-chip buffer.
pub fn fig1_toy() -> Network {
    NetworkBuilder::new("Fig1Toy", FeatureShape::new(3, 64, 64), 8)
        .conv("conv1", 16, 3, 1, 1)
        .expect("conv1")
        .relu("relu1")
        .pool("pool1", PoolKind::Max, 2, 2, 0)
        .expect("pool1")
        .conv("conv2", 32, 3, 1, 1)
        .expect("conv2")
        .relu("relu2")
        .pool("pool2", PoolKind::Max, 2, 2, 0)
        .expect("pool2")
        .conv("conv3", 64, 3, 1, 1)
        .expect("conv3")
        .relu("relu3")
        .global_avg_pool("gap")
        .fully_connected("fc", 10)
        .build()
}

/// A small residual network (stem + `blocks` bottleneck-free residual pairs
/// per stage over two stages), useful for exercising block scheduling
/// without ResNet-scale compute.
pub fn tiny_resnet(blocks_per_stage: usize, default_batch: usize) -> Network {
    let mut b = NetworkBuilder::new(
        format!("TinyResNet{blocks_per_stage}"),
        FeatureShape::new(3, 32, 32),
        default_batch,
    );
    for l in conv_norm_relu("stem", b.shape(), 16, (3, 3), 1, (1, 1)) {
        b = b.push(Node::Single(l));
    }
    for stage in 0..2 {
        let channels = 16 << stage;
        for i in 0..blocks_per_stage {
            let input = b.shape();
            let stride = if stage > 0 && i == 0 { 2 } else { 1 };
            let name = format!("res{stage}_{i}");
            let mut main = conv_norm_relu(
                &format!("{name}.1"),
                input,
                channels,
                (3, 3),
                stride,
                (1, 1),
            );
            let mid = main.last().expect("non-empty").output;
            main.extend(conv_norm(
                &format!("{name}.2"),
                mid,
                channels,
                (3, 3),
                1,
                (1, 1),
            ));
            let shortcut = if stride != 1 || input.channels != channels {
                conv_norm(
                    &format!("{name}.sc"),
                    input,
                    channels,
                    (1, 1),
                    stride,
                    (0, 0),
                )
            } else {
                Vec::new()
            };
            let block = Block::residual(&name, input, main, shortcut)
                .unwrap_or_else(|e| panic!("tiny_resnet block {name}: {e}"));
            b = b.block(block);
        }
    }
    b = b.global_avg_pool("gap");
    b.fully_connected("fc", 10).build()
}

/// The runtime-lowering showcase: a network that exercises every IR
/// construct the training substrate implements (conv / group norm / ReLU,
/// unpadded max pooling, an identity-shortcut residual block, global
/// average pooling, fully-connected) at a spatial size small enough to
/// train on the CPU in tests and demos. `size` is the square input extent
/// (must be even — the stem pools by 2); `default_batch` is the per-core
/// mini-batch recorded in the IR.
pub fn runtime_mix(size: usize, default_batch: usize) -> Network {
    assert!(
        size >= 4 && size.is_multiple_of(2),
        "size must be even and >= 4"
    );
    let mut b = NetworkBuilder::new(
        "RuntimeMix",
        FeatureShape::new(3, size, size),
        default_batch,
    );
    for l in conv_norm_relu("stem", b.shape(), 8, (3, 3), 1, (1, 1)) {
        b = b.push(Node::Single(l));
    }
    b = b
        .pool("pool1", PoolKind::Max, 2, 2, 0)
        .expect("even input halves cleanly");
    let input = b.shape();
    let mut main = conv_norm_relu("res.1", input, 8, (3, 3), 1, (1, 1));
    main.extend(conv_norm("res.2", input, 8, (3, 3), 1, (1, 1)));
    let block = Block::residual("res", input, main, Vec::new()).expect("shapes are preserved");
    b.block(block)
        .global_avg_pool("gap")
        .fully_connected("fc", 10)
        .build()
}

/// A structurally faithful miniature of Inception v3: a conv stem, one
/// `inception_a`-shaped concat block (1×1 / 3×3 / pooled-projection
/// branches, the pooled branch using the padded 3×3/1 **average** pool),
/// a reduction block whose third branch is a bare max pool, then GAP and
/// the classifier. Exercises every construct full Inception needs from
/// the lowering — `Concat` merges, average pooling, padded pooling —
/// at a size small enough to train in tests. `size` is the square input
/// extent (must be even); `default_batch` is the IR's mini-batch.
pub fn tiny_inception(size: usize, default_batch: usize) -> Network {
    assert!(
        size >= 8 && size.is_multiple_of(2),
        "size must be even and >= 8"
    );
    let mut b = NetworkBuilder::new(
        "TinyInception",
        FeatureShape::new(3, size, size),
        default_batch,
    );
    for l in conv_norm_relu("stem", b.shape(), 8, (3, 3), 1, (1, 1)) {
        b = b.push(Node::Single(l));
    }

    // inception_a in miniature: 1x1, 1x1->3x3, and avg-pool->1x1 branches.
    let input = b.shape();
    let b1 = conv_norm_relu("mix.b1", input, 4, (1, 1), 1, (0, 0));
    let mut b2 = conv_norm_relu("mix.b2a", input, 4, (1, 1), 1, (0, 0));
    b2.extend(conv_norm_relu(
        "mix.b2b",
        b2.last().expect("non-empty").output,
        8,
        (3, 3),
        1,
        (1, 1),
    ));
    let pool = Layer::pool("mix.b3.pool", input, PoolKind::Avg, 3, 1, 1)
        .expect("same-padded avg pool fits");
    let mut b3 = vec![pool];
    b3.extend(conv_norm_relu(
        "mix.b3.proj",
        b3[0].output,
        4,
        (1, 1),
        1,
        (0, 0),
    ));
    let block =
        Block::inception("mix", input, vec![b1, b2, b3]).expect("branch spatials all match");
    b = b.block(block);

    // reduction_a in miniature: strided conv branch + bare max-pool branch.
    let input = b.shape();
    let r1 = conv_norm_relu("red.b1", input, 8, (3, 3), 2, (0, 0));
    let r2 =
        vec![Layer::pool("red.pool", input, PoolKind::Max, 3, 2, 0).expect("reduction pool fits")];
    let block = Block::inception("red", input, vec![r1, r2]).expect("spatials match");
    b = b.block(block);

    b = b.global_avg_pool("gap");
    b.fully_connected("fc", 10).build()
}

/// A structurally faithful miniature of AlexNet: conv → ReLU → **LRN** →
/// padded max pool stages followed by two fully-connected layers — the
/// norm-after-activation, FC-heavy shape that makes AlexNet the paper's
/// contrast case, with every layer kind the full `alexnet()` needs from
/// the lowering (local response norm, padded pooling, multiple FCs).
pub fn tiny_alexnet(size: usize, default_batch: usize) -> Network {
    assert!(size >= 8, "size must be >= 8");
    let mut b = NetworkBuilder::new(
        "TinyAlexNet",
        FeatureShape::new(3, size, size),
        default_batch,
    );
    b = b
        .conv("conv1", 8, 3, 1, 1)
        .expect("conv1")
        .relu("relu1")
        .norm("lrn1", NormKind::Local)
        .pool("pool1", PoolKind::Max, 3, 2, 1)
        .expect("pool1")
        .conv("conv2", 16, 3, 1, 1)
        .expect("conv2")
        .relu("relu2")
        .norm("lrn2", NormKind::Local)
        .pool("pool2", PoolKind::Max, 3, 2, 1)
        .expect("pool2");
    b = b.fully_connected("fc3", 32).relu("relu3");
    b.fully_connected("fc4", 10).build()
}

/// A plain chain of conv/norm/relu stages with the given output channel
/// counts, downsampling by 2 at each stage; handy for property tests where
/// footprints must vary monotonically.
pub fn conv_chain(channels: &[usize], input: FeatureShape, default_batch: usize) -> Network {
    let mut b = NetworkBuilder::new("ConvChain", input, default_batch);
    for (i, &c) in channels.iter().enumerate() {
        let stride = if i == 0 { 1 } else { 2 };
        for l in conv_norm_relu(&format!("s{i}"), b.shape(), c, (3, 3), stride, (1, 1)) {
            b = b.push(Node::Single(l));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_toy_builds() {
        let net = fig1_toy();
        assert_eq!(net.output().channels, 10);
    }

    #[test]
    fn tiny_resnet_has_blocks() {
        let net = tiny_resnet(2, 8);
        assert_eq!(net.nodes().iter().filter(|n| n.is_block()).count(), 4);
        assert_eq!(net.output().channels, 10);
    }

    #[test]
    fn runtime_mix_covers_the_lowerable_kinds() {
        let net = runtime_mix(8, 4);
        assert_eq!(net.output().channels, 10);
        assert_eq!(net.nodes().iter().filter(|n| n.is_block()).count(), 1);
        let tags: Vec<String> = net.nodes().iter().map(Node::tag).collect();
        for want in ["CONV", "NORM", "RELU", "POOL", "RES_BLK", "FC"] {
            assert!(tags.iter().any(|t| t == want), "missing {want} in {tags:?}");
        }
    }

    #[test]
    fn conv_chain_downsamples() {
        let net = conv_chain(&[8, 16, 32], FeatureShape::new(3, 32, 32), 4);
        assert_eq!(net.output(), FeatureShape::new(32, 8, 8));
    }

    #[test]
    fn tiny_inception_has_concat_blocks_and_avg_pool() {
        let net = tiny_inception(16, 4);
        assert_eq!(net.nodes().iter().filter(|n| n.is_block()).count(), 2);
        assert!(net.layers().any(|l| matches!(
            l.kind,
            crate::LayerKind::Pool {
                kind: PoolKind::Avg,
                pad: 1,
                ..
            }
        )));
        // Concat: 4 + 8 + 4 channels out of the mixing block.
        let mix = net.nodes().iter().find(|n| n.name() == "mix").unwrap();
        assert_eq!(mix.output().channels, 16);
        assert_eq!(net.output().channels, 10);
    }

    #[test]
    fn tiny_alexnet_has_lrn_and_padded_pools() {
        let net = tiny_alexnet(16, 4);
        assert!(net.layers().any(|l| matches!(
            l.kind,
            crate::LayerKind::Norm {
                kind: NormKind::Local
            }
        )));
        assert!(net.layers().any(|l| matches!(
            l.kind,
            crate::LayerKind::Pool {
                kind: PoolKind::Max,
                pad: 1,
                ..
            }
        )));
        // 16 -> pool1 -> 8 -> pool2 -> 4.
        let pool2 = net.nodes().iter().find(|n| n.name() == "pool2").unwrap();
        assert_eq!(pool2.output(), FeatureShape::new(16, 4, 4));
        assert_eq!(net.output().channels, 10);
    }
}
