//! AlexNet (Krizhevsky et al., 2012) for 227×227 inputs.
//!
//! The paper evaluates AlexNet as the "shallow CNN with few memory-BW bound
//! layers" contrast case: three large fully-connected layers dominate its
//! weight traffic, which is what makes MBS-FS counterproductive on it
//! (Fig. 10). Local response normalization is modeled as a per-sample norm
//! layer; grouped convolutions are modeled dense (the original's 2-GPU
//! grouping halves conv parameters but does not change the traffic shape).

use crate::layer::{FeatureShape, NormKind, PoolKind};
use crate::network::{Network, NetworkBuilder};

/// Builds AlexNet (1000 classes, default per-core batch of 64 as in the
/// paper's methodology §5).
///
/// # Examples
///
/// ```
/// let net = mbs_cnn::networks::alexnet();
/// assert!(net.param_elems() > 60_000_000); // FC-dominated
/// ```
pub fn alexnet() -> Network {
    NetworkBuilder::new("AlexNet", FeatureShape::new(3, 227, 227), 64)
        .conv("conv1", 96, 11, 4, 0)
        .expect("conv1")
        .relu("relu1")
        .norm("lrn1", NormKind::Local)
        .pool("pool1", PoolKind::Max, 3, 2, 0)
        .expect("pool1")
        .conv("conv2", 256, 5, 1, 2)
        .expect("conv2")
        .relu("relu2")
        .norm("lrn2", NormKind::Local)
        .pool("pool2", PoolKind::Max, 3, 2, 0)
        .expect("pool2")
        .conv("conv3", 384, 3, 1, 1)
        .expect("conv3")
        .relu("relu3")
        .conv("conv4", 384, 3, 1, 1)
        .expect("conv4")
        .relu("relu4")
        .conv("conv5", 256, 3, 1, 1)
        .expect("conv5")
        .relu("relu5")
        .pool("pool5", PoolKind::Max, 3, 2, 0)
        .expect("pool5")
        .fully_connected("fc6", 4096)
        .relu("relu6")
        .fully_connected("fc7", 4096)
        .relu("relu7")
        .fully_connected("fc8", 1000)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_shapes() {
        let net = alexnet();
        let conv1 = net.nodes().iter().find(|n| n.name() == "conv1").unwrap();
        assert_eq!(conv1.output(), FeatureShape::new(96, 55, 55));
        let pool5 = net.nodes().iter().find(|n| n.name() == "pool5").unwrap();
        assert_eq!(pool5.output(), FeatureShape::new(256, 6, 6));
    }

    #[test]
    fn fc_layers_dominate_parameters() {
        let net = alexnet();
        let fc_params: usize = net
            .layers()
            .filter(|l| l.kind.type_tag() == "fc")
            .map(|l| l.param_elems())
            .sum();
        let total = net.param_elems();
        assert!(fc_params * 10 > total * 9, "fc {fc_params} of {total}");
        // Dense-conv AlexNet has ~62M params (grouped original: ~61M).
        assert!((58_000_000..70_000_000).contains(&total), "total {total}");
    }

    #[test]
    fn default_batch_is_64() {
        assert_eq!(alexnet().default_batch(), 64);
    }
}
