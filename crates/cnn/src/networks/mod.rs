//! Network zoo: the six CNNs evaluated in the paper plus toy networks used
//! in tests and examples.
//!
//! Every convolution is paired with a normalization layer and ReLU, matching
//! the training graphs of Fig. 2. Normalization defaults to group
//! normalization (the MBS-compatible choice, §3.1); the norm kind does not
//! affect shapes, traffic, or timing in the simulator, only the training
//! substrate distinguishes BN from GN numerically.

mod alexnet;
mod inception_v3;
mod inception_v4;
mod resnet;
pub mod toy;

pub use alexnet::alexnet;
pub use inception_v3::inception_v3;
pub use inception_v4::inception_v4;
pub use resnet::{resnet, resnet_custom};

use crate::layer::NormKind;
use crate::layer::{FeatureShape, Layer};

/// All six networks of the paper's evaluation (Fig. 10), in figure order.
pub fn evaluation_suite() -> Vec<crate::Network> {
    vec![
        resnet(50),
        resnet(101),
        resnet(152),
        inception_v3(),
        inception_v4(),
        alexnet(),
    ]
}

/// Largest group count from {32, 16, 8, 4, 2, 1} dividing `channels`; used
/// so every zoo normalization layer is a valid group norm.
pub(crate) fn norm_groups(channels: usize) -> usize {
    for g in [32, 16, 8, 4, 2] {
        if channels.is_multiple_of(g) {
            return g;
        }
    }
    1
}

/// Conv → GroupNorm → ReLU triple, the basic unit of every zoo network.
pub(crate) fn conv_norm_relu(
    prefix: &str,
    input: FeatureShape,
    out_channels: usize,
    kernel: (usize, usize),
    stride: usize,
    pad: (usize, usize),
) -> Vec<Layer> {
    let conv = Layer::conv_rect(
        format!("{prefix}.conv"),
        input,
        out_channels,
        kernel,
        stride,
        pad,
    )
    .unwrap_or_else(|e| panic!("zoo network definition invalid at {prefix}: {e}"));
    let norm = Layer::norm(
        format!("{prefix}.norm"),
        conv.output,
        NormKind::Group {
            groups: norm_groups(out_channels),
        },
    );
    let relu = Layer::relu(format!("{prefix}.relu"), norm.output);
    vec![conv, norm, relu]
}

/// Conv → GroupNorm pair without activation (bottleneck tails, projection
/// shortcuts: the ReLU comes after the residual add).
pub(crate) fn conv_norm(
    prefix: &str,
    input: FeatureShape,
    out_channels: usize,
    kernel: (usize, usize),
    stride: usize,
    pad: (usize, usize),
) -> Vec<Layer> {
    let conv = Layer::conv_rect(
        format!("{prefix}.conv"),
        input,
        out_channels,
        kernel,
        stride,
        pad,
    )
    .unwrap_or_else(|e| panic!("zoo network definition invalid at {prefix}: {e}"));
    let norm = Layer::norm(
        format!("{prefix}.norm"),
        conv.output,
        NormKind::Group {
            groups: norm_groups(out_channels),
        },
    );
    vec![conv, norm]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_networks() {
        let nets = evaluation_suite();
        assert_eq!(nets.len(), 6);
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            [
                "ResNet50",
                "ResNet101",
                "ResNet152",
                "InceptionV3",
                "InceptionV4",
                "AlexNet"
            ]
        );
    }

    #[test]
    fn norm_groups_divides_channels() {
        for c in [3, 32, 48, 64, 80, 96, 192, 2048] {
            assert_eq!(c % norm_groups(c), 0, "channels {c}");
        }
    }
}
