//! Inception v4 for 299×299 inputs (Szegedy et al., 2017).
//!
//! As in [`super::inception_v3`], branches that split internally in the 8×8
//! "C" modules are duplicated into independent branches (shared prefixes
//! re-computed), since the IR models blocks as independent branches from a
//! shared input. Noted in DESIGN.md.

use crate::block::{Block, Node};
use crate::layer::{FeatureShape, Layer, PoolKind};
use crate::network::{Network, NetworkBuilder};

use super::conv_norm_relu;

fn cnr(
    prefix: &str,
    input: FeatureShape,
    co: usize,
    kernel: (usize, usize),
    stride: usize,
    pad: (usize, usize),
) -> Vec<Layer> {
    conv_norm_relu(prefix, input, co, kernel, stride, pad)
}

fn chain(input: FeatureShape, parts: Vec<Vec<Layer>>) -> Vec<Layer> {
    let mut out = Vec::new();
    let mut cur = input;
    for part in parts {
        debug_assert_eq!(part.first().expect("chain part non-empty").input, cur);
        cur = part.last().expect("chain part non-empty").output;
        out.extend(part);
    }
    out
}

fn avg_pool_proj(prefix: &str, input: FeatureShape, proj: usize) -> Vec<Layer> {
    let pool = Layer::pool(format!("{prefix}.pool"), input, PoolKind::Avg, 3, 1, 1)
        .expect("inception pool");
    let mut v = vec![pool];
    let p = v[0].output;
    v.extend(cnr(&format!("{prefix}.proj"), p, proj, (1, 1), 1, (0, 0)));
    v
}

fn inception_a(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 96, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 64, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(64), 96, (3, 3), 1, (1, 1)),
        ],
    );
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, 64, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b3b"), sp(64), 96, (3, 3), 1, (1, 1)),
            cnr(&format!("{name}.b3c"), sp(96), 96, (3, 3), 1, (1, 1)),
        ],
    );
    let b4 = avg_pool_proj(&format!("{name}.b4"), input, 96);
    Block::inception(name, input, vec![b1, b2, b3, b4])
        .unwrap_or_else(|e| panic!("inception_a {name}: {e}"))
}

fn reduction_a(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 384, (3, 3), 2, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(192), 224, (3, 3), 1, (1, 1)),
            cnr(&format!("{name}.b2c"), sp(224), 256, (3, 3), 2, (0, 0)),
        ],
    );
    let b3 = vec![
        Layer::pool(format!("{name}.pool"), input, PoolKind::Max, 3, 2, 0).expect("reduction pool"),
    ];
    Block::inception(name, input, vec![b1, b2, b3])
        .unwrap_or_else(|e| panic!("reduction_a {name}: {e}"))
}

fn inception_b(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 384, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(192), 224, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b2c"), sp(224), 256, (7, 1), 1, (3, 0)),
        ],
    );
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b3b"), sp(192), 192, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b3c"), sp(192), 224, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b3d"), sp(224), 224, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b3e"), sp(224), 256, (1, 7), 1, (0, 3)),
        ],
    );
    let b4 = avg_pool_proj(&format!("{name}.b4"), input, 128);
    Block::inception(name, input, vec![b1, b2, b3, b4])
        .unwrap_or_else(|e| panic!("inception_b {name}: {e}"))
}

fn reduction_b(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = chain(
        input,
        vec![
            cnr(&format!("{name}.b1a"), input, 192, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b1b"), sp(192), 192, (3, 3), 2, (0, 0)),
        ],
    );
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 256, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(256), 256, (1, 7), 1, (0, 3)),
            cnr(&format!("{name}.b2c"), sp(256), 320, (7, 1), 1, (3, 0)),
            cnr(&format!("{name}.b2d"), sp(320), 320, (3, 3), 2, (0, 0)),
        ],
    );
    let b3 = vec![
        Layer::pool(format!("{name}.pool"), input, PoolKind::Max, 3, 2, 0).expect("reduction pool"),
    ];
    Block::inception(name, input, vec![b1, b2, b3])
        .unwrap_or_else(|e| panic!("reduction_b {name}: {e}"))
}

fn inception_c(name: &str, input: FeatureShape) -> Block {
    let sp = |c| FeatureShape::new(c, input.height, input.width);
    let b1 = cnr(&format!("{name}.b1"), input, 256, (1, 1), 1, (0, 0));
    let b2 = chain(
        input,
        vec![
            cnr(&format!("{name}.b2a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b2b"), sp(384), 256, (1, 3), 1, (0, 1)),
        ],
    );
    let b3 = chain(
        input,
        vec![
            cnr(&format!("{name}.b3a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b3b"), sp(384), 256, (3, 1), 1, (1, 0)),
        ],
    );
    let b4 = chain(
        input,
        vec![
            cnr(&format!("{name}.b4a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b4b"), sp(384), 448, (3, 1), 1, (1, 0)),
            cnr(&format!("{name}.b4c"), sp(448), 512, (1, 3), 1, (0, 1)),
            cnr(&format!("{name}.b4d"), sp(512), 256, (1, 3), 1, (0, 1)),
        ],
    );
    let b5 = chain(
        input,
        vec![
            cnr(&format!("{name}.b5a"), input, 384, (1, 1), 1, (0, 0)),
            cnr(&format!("{name}.b5b"), sp(384), 448, (3, 1), 1, (1, 0)),
            cnr(&format!("{name}.b5c"), sp(448), 512, (1, 3), 1, (0, 1)),
            cnr(&format!("{name}.b5d"), sp(512), 256, (3, 1), 1, (1, 0)),
        ],
    );
    let b6 = avg_pool_proj(&format!("{name}.b6"), input, 256);
    Block::inception(name, input, vec![b1, b2, b3, b4, b5, b6])
        .unwrap_or_else(|e| panic!("inception_c {name}: {e}"))
}

/// Builds Inception v4 (299×299 input, 1000 classes).
///
/// # Examples
///
/// ```
/// let net = mbs_cnn::networks::inception_v4();
/// assert_eq!(net.output().channels, 1000);
/// ```
pub fn inception_v4() -> Network {
    let mut b = NetworkBuilder::new("InceptionV4", FeatureShape::new(3, 299, 299), 32);
    for l in cnr("stem1", b.shape(), 32, (3, 3), 2, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    for l in cnr("stem2", b.shape(), 32, (3, 3), 1, (0, 0)) {
        b = b.push(Node::Single(l));
    }
    for l in cnr("stem3", b.shape(), 64, (3, 3), 1, (1, 1)) {
        b = b.push(Node::Single(l));
    }

    // Stem split 1: maxpool || conv3x3/2 -> 160 @ 73
    let s = b.shape();
    let pool_branch =
        vec![Layer::pool("stem4.pool", s, PoolKind::Max, 3, 2, 0).expect("stem pool")];
    let conv_branch = cnr("stem4.conv", s, 96, (3, 3), 2, (0, 0));
    b = b.block(Block::inception("stem4", s, vec![conv_branch, pool_branch]).expect("stem4"));

    // Stem split 2: two conv chains -> 192 @ 71
    let s = b.shape();
    let sp = |c| FeatureShape::new(c, s.height, s.width);
    let br1 = chain(
        s,
        vec![
            cnr("stem5.b1a", s, 64, (1, 1), 1, (0, 0)),
            cnr("stem5.b1b", sp(64), 96, (3, 3), 1, (0, 0)),
        ],
    );
    let br2 = chain(
        s,
        vec![
            cnr("stem5.b2a", s, 64, (1, 1), 1, (0, 0)),
            cnr("stem5.b2b", sp(64), 64, (7, 1), 1, (3, 0)),
            cnr("stem5.b2c", sp(64), 64, (1, 7), 1, (0, 3)),
            cnr("stem5.b2d", sp(64), 96, (3, 3), 1, (0, 0)),
        ],
    );
    b = b.block(Block::inception("stem5", s, vec![br1, br2]).expect("stem5"));

    // Stem split 3: conv3x3/2 || maxpool -> 384 @ 35
    let s = b.shape();
    let br1 = cnr("stem6.conv", s, 192, (3, 3), 2, (0, 0));
    let br2 = vec![Layer::pool("stem6.pool", s, PoolKind::Max, 3, 2, 0).expect("stem pool")];
    b = b.block(Block::inception("stem6", s, vec![br1, br2]).expect("stem6"));

    for i in 0..4 {
        let blk = inception_a(&format!("incA{i}"), b.shape());
        b = b.block(blk);
    }
    let blk = reduction_a("redA", b.shape());
    b = b.block(blk);
    for i in 0..7 {
        let blk = inception_b(&format!("incB{i}"), b.shape());
        b = b.block(blk);
    }
    let blk = reduction_b("redB", b.shape());
    b = b.block(blk);
    for i in 0..3 {
        let blk = inception_c(&format!("incC{i}"), b.shape());
        b = b.block(blk);
    }
    b = b.global_avg_pool("pool_final");
    b.fully_connected("fc", 1000).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_reaches_384_at_35() {
        let net = inception_v4();
        let a0 = net
            .nodes()
            .iter()
            .find(|n| n.name() == "incA0")
            .expect("has incA0");
        assert_eq!(a0.input(), FeatureShape::new(384, 35, 35));
        assert_eq!(a0.output(), FeatureShape::new(384, 35, 35));
    }

    #[test]
    fn grid_and_channel_progression() {
        let net = inception_v4();
        let red_a = net.nodes().iter().find(|n| n.name() == "redA").unwrap();
        assert_eq!(red_a.output(), FeatureShape::new(1024, 17, 17));
        let red_b = net.nodes().iter().find(|n| n.name() == "redB").unwrap();
        assert_eq!(red_b.output(), FeatureShape::new(1536, 8, 8));
    }

    #[test]
    fn deeper_than_v3() {
        let v3 = super::super::inception_v3();
        let v4 = inception_v4();
        assert!(v4.layers().count() > v3.layers().count());
        assert!(v4.forward_macs() > v3.forward_macs());
    }

    #[test]
    fn param_count_plausible() {
        // ~43M canonical; split-branch duplication adds the shared prefixes
        // of the three C modules.
        let p = inception_v4().param_elems();
        assert!((38_000_000..56_000_000).contains(&p), "params {p}");
    }
}
