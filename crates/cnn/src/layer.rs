//! Single-layer IR: shapes, layer kinds, shape inference, and per-layer
//! arithmetic/parameter statistics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::WORD_BYTES;

/// Shape of one feature map for a single sample (`C × H × W`).
///
/// # Examples
///
/// ```
/// use mbs_cnn::FeatureShape;
///
/// let s = FeatureShape::new(64, 56, 56);
/// assert_eq!(s.elems(), 64 * 56 * 56);
/// assert_eq!(s.bytes(), s.elems() * 2); // 16-bit words
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureShape {
    /// Number of channels.
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl FeatureShape {
    /// Creates a new shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Creates a `C × 1 × 1` vector shape (used for fully-connected layers).
    pub fn vector(channels: usize) -> Self {
        Self {
            channels,
            height: 1,
            width: 1,
        }
    }

    /// Number of scalar elements per sample.
    pub fn elems(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Size in bytes per sample at 16-bit precision.
    pub fn bytes(&self) -> usize {
        self.elems() * WORD_BYTES
    }
}

impl fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling. Requires the forward input during back propagation.
    Max,
    /// Average pooling. Back propagation needs only the output gradient.
    Avg,
}

/// Feature-normalization flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormKind {
    /// Batch normalization: statistics across the whole per-processor
    /// mini-batch. Incompatible with MBS serialization (paper §3.1).
    Batch,
    /// Group normalization over `groups` channel groups of a single sample.
    /// Compatible with MBS.
    Group {
        /// Number of channel groups.
        groups: usize,
    },
    /// Local response normalization (AlexNet); per-sample, MBS-compatible.
    Local,
}

/// The operator computed by a [`Layer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution (no bias; the zoo pairs convolutions with norms).
    Conv {
        /// Filter height (R in the paper's Tab. 1).
        kernel_h: usize,
        /// Filter width (S in the paper's Tab. 1).
        kernel_w: usize,
        /// Stride (same in both dimensions).
        stride: usize,
        /// Zero padding rows added on each vertical edge.
        pad_h: usize,
        /// Zero padding columns added on each horizontal edge.
        pad_w: usize,
    },
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each edge.
        pad: usize,
    },
    /// Global average pooling down to `C × 1 × 1`.
    GlobalAvgPool,
    /// Feature normalization.
    Norm {
        /// Normalization flavor.
        kind: NormKind,
    },
    /// Element-wise activation (ReLU).
    Relu,
    /// Fully-connected layer (with bias).
    FullyConnected,
    /// Element-wise sum merging a residual block's branches.
    Add,
    /// Channel-wise concatenation merging inception branches.
    Concat,
}

impl LayerKind {
    /// Short layer-type tag used for reporting breakdowns (paper Fig. 12).
    pub fn type_tag(&self) -> &'static str {
        match self {
            LayerKind::Conv { .. } => "conv",
            LayerKind::Pool { .. } | LayerKind::GlobalAvgPool => "pool",
            LayerKind::Norm { .. } => "norm",
            LayerKind::Relu => "relu",
            LayerKind::FullyConnected => "fc",
            LayerKind::Add => "sum",
            LayerKind::Concat => "concat",
        }
    }

    /// Whether the layer runs on the systolic array (convolutions and
    /// fully-connected layers); everything else uses the vector units.
    pub fn is_systolic(&self) -> bool {
        matches!(self, LayerKind::Conv { .. } | LayerKind::FullyConnected)
    }

    /// Whether back propagation through this layer re-reads the layer's
    /// forward *input* (so the producer of that tensor must store it to
    /// DRAM during the forward pass).
    ///
    /// - Convolution / FC need the input for the weight-gradient GEMM.
    /// - Normalization needs the input to compute parameter gradients and
    ///   the input gradient.
    /// - Max pooling needs the input to locate the argmax.
    /// - ReLU needs only the *sign* of its input, handled separately
    ///   (1-bit masks under MBS, see paper §3 "Back Propagation").
    pub fn needs_input_in_backward(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv { .. }
                | LayerKind::FullyConnected
                | LayerKind::Norm { .. }
                | LayerKind::Pool {
                    kind: PoolKind::Max,
                    ..
                }
        )
    }
}

/// Error produced when shape inference fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl ShapeError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape inference failed: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

/// A single CNN layer with resolved input and output shapes.
///
/// # Examples
///
/// ```
/// use mbs_cnn::{FeatureShape, Layer};
///
/// # fn main() -> Result<(), mbs_cnn::ShapeError> {
/// let input = FeatureShape::new(3, 224, 224);
/// let conv = Layer::conv("conv1", input, 64, 7, 2, 3)?;
/// assert_eq!(conv.output, FeatureShape::new(64, 112, 112));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable layer name (unique within a network by construction).
    pub name: String,
    /// Operator kind.
    pub kind: LayerKind,
    /// Per-sample input shape.
    pub input: FeatureShape,
    /// Per-sample output shape.
    pub output: FeatureShape,
}

fn conv_extent(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<usize, ShapeError> {
    let padded = input + 2 * pad;
    if kernel == 0 || stride == 0 {
        return Err(ShapeError::new("kernel and stride must be non-zero"));
    }
    if padded < kernel {
        return Err(ShapeError::new(format!(
            "kernel {kernel} larger than padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

impl Layer {
    /// Builds a square-ish convolution layer with symmetric padding.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the kernel does not fit the padded input.
    pub fn conv(
        name: impl Into<String>,
        input: FeatureShape,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ShapeError> {
        Self::conv_rect(
            name,
            input,
            out_channels,
            (kernel, kernel),
            stride,
            (pad, pad),
        )
    }

    /// Builds a rectangular convolution layer (used by Inception's 1×7 / 7×1
    /// factorized convolutions).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the kernel does not fit the padded input.
    pub fn conv_rect(
        name: impl Into<String>,
        input: FeatureShape,
        out_channels: usize,
        kernel: (usize, usize),
        stride: usize,
        pad: (usize, usize),
    ) -> Result<Self, ShapeError> {
        let (kernel_h, kernel_w) = kernel;
        let (pad_h, pad_w) = pad;
        let out_h = conv_extent(input.height, kernel_h, stride, pad_h)?;
        let out_w = conv_extent(input.width, kernel_w, stride, pad_w)?;
        Ok(Self {
            name: name.into(),
            kind: LayerKind::Conv {
                kernel_h,
                kernel_w,
                stride,
                pad_h,
                pad_w,
            },
            input,
            output: FeatureShape::new(out_channels, out_h, out_w),
        })
    }

    /// Builds a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the window does not fit the padded input.
    pub fn pool(
        name: impl Into<String>,
        input: FeatureShape,
        kind: PoolKind,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self, ShapeError> {
        let out_h = conv_extent(input.height, kernel, stride, pad)?;
        let out_w = conv_extent(input.width, kernel, stride, pad)?;
        Ok(Self {
            name: name.into(),
            kind: LayerKind::Pool {
                kind,
                kernel,
                stride,
                pad,
            },
            input,
            output: FeatureShape::new(input.channels, out_h, out_w),
        })
    }

    /// Builds a global average pooling layer.
    pub fn global_avg_pool(name: impl Into<String>, input: FeatureShape) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::GlobalAvgPool,
            input,
            output: FeatureShape::vector(input.channels),
        }
    }

    /// Builds a normalization layer (shape preserving).
    pub fn norm(name: impl Into<String>, input: FeatureShape, kind: NormKind) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Norm { kind },
            input,
            output: input,
        }
    }

    /// Builds a ReLU activation layer (shape preserving).
    pub fn relu(name: impl Into<String>, input: FeatureShape) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Relu,
            input,
            output: input,
        }
    }

    /// Builds a fully-connected layer over the flattened input.
    pub fn fully_connected(
        name: impl Into<String>,
        input: FeatureShape,
        out_features: usize,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::FullyConnected,
            input,
            output: FeatureShape::vector(out_features),
        }
    }

    /// Builds the element-wise sum layer at a residual merge point.
    pub fn add(name: impl Into<String>, input: FeatureShape) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Add,
            input,
            output: input,
        }
    }

    /// Builds a concat layer merging `branch_channels` into one tensor.
    pub fn concat(name: impl Into<String>, spatial: FeatureShape, total_channels: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Concat,
            input: spatial,
            output: FeatureShape::new(total_channels, spatial.height, spatial.width),
        }
    }

    /// Number of learnable parameter elements.
    pub fn param_elems(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kernel_h, kernel_w, ..
            } => self.output.channels * self.input.channels * kernel_h * kernel_w,
            LayerKind::FullyConnected => {
                self.input.elems() * self.output.channels + self.output.channels
            }
            // Scale and shift per channel; LRN is parameterless (its
            // constants are hyperparameters, not learned).
            LayerKind::Norm {
                kind: NormKind::Local,
            } => 0,
            LayerKind::Norm { .. } => 2 * self.input.channels,
            _ => 0,
        }
    }

    /// Parameter size in bytes at 16-bit precision.
    pub fn param_bytes(&self) -> usize {
        self.param_elems() * WORD_BYTES
    }

    /// Multiply-accumulate operations per sample in the forward pass.
    pub fn forward_macs(&self) -> usize {
        match self.kind {
            LayerKind::Conv {
                kernel_h, kernel_w, ..
            } => self.output.elems() * self.input.channels * kernel_h * kernel_w,
            LayerKind::FullyConnected => self.input.elems() * self.output.channels,
            LayerKind::Pool { kernel, .. } => self.output.elems() * kernel * kernel,
            LayerKind::GlobalAvgPool => self.input.elems(),
            // Two passes: statistics + normalize (paper §2).
            LayerKind::Norm { .. } => 2 * self.input.elems(),
            LayerKind::Relu | LayerKind::Add => self.input.elems(),
            LayerKind::Concat => 0,
        }
    }

    /// Input size in bytes per sample.
    pub fn input_bytes(&self) -> usize {
        self.input.bytes()
    }

    /// Output size in bytes per sample.
    pub fn output_bytes(&self) -> usize {
        self.output.bytes()
    }

    /// Inter-layer data (input + output) bytes per sample: the quantity the
    /// paper plots per layer in Fig. 3 and uses for sub-batch sizing.
    pub fn inter_layer_bytes(&self) -> usize {
        self.input_bytes() + self.output_bytes()
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} -> {}",
            self.name,
            self.kind.type_tag(),
            self.input,
            self.output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference_matches_resnet_stem() {
        let input = FeatureShape::new(3, 224, 224);
        let conv = Layer::conv("conv1", input, 64, 7, 2, 3).unwrap();
        assert_eq!(conv.output, FeatureShape::new(64, 112, 112));
        let pool = Layer::pool("pool1", conv.output, PoolKind::Max, 3, 2, 1).unwrap();
        assert_eq!(pool.output, FeatureShape::new(64, 56, 56));
    }

    #[test]
    fn conv_valid_padding_matches_inception_stem() {
        let input = FeatureShape::new(3, 299, 299);
        let conv = Layer::conv("stem1", input, 32, 3, 2, 0).unwrap();
        assert_eq!(conv.output, FeatureShape::new(32, 149, 149));
        let conv2 = Layer::conv("stem2", conv.output, 32, 3, 1, 0).unwrap();
        assert_eq!(conv2.output, FeatureShape::new(32, 147, 147));
    }

    #[test]
    fn rect_conv_preserves_shape_with_same_padding() {
        let input = FeatureShape::new(192, 17, 17);
        let c = Layer::conv_rect("b", input, 224, (1, 7), 1, (0, 3)).unwrap();
        assert_eq!(c.output, FeatureShape::new(224, 17, 17));
        let c = Layer::conv_rect("b", input, 224, (7, 1), 1, (3, 0)).unwrap();
        assert_eq!(c.output, FeatureShape::new(224, 17, 17));
    }

    #[test]
    fn conv_param_and_mac_counts() {
        let input = FeatureShape::new(64, 56, 56);
        let conv = Layer::conv("c", input, 64, 3, 1, 1).unwrap();
        assert_eq!(conv.param_elems(), 64 * 64 * 3 * 3);
        assert_eq!(conv.forward_macs(), 64 * 56 * 56 * 64 * 3 * 3);
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let input = FeatureShape::new(3, 4, 4);
        assert!(Layer::conv("bad", input, 8, 7, 1, 0).is_err());
        let err = Layer::conv("bad", input, 8, 7, 1, 0).unwrap_err();
        assert!(err.to_string().contains("kernel"));
    }

    #[test]
    fn zero_stride_is_rejected() {
        let input = FeatureShape::new(3, 8, 8);
        assert!(Layer::conv("bad", input, 8, 3, 0, 1).is_err());
    }

    #[test]
    fn backward_input_requirements() {
        let s = FeatureShape::new(8, 8, 8);
        assert!(Layer::conv("c", s, 8, 3, 1, 1)
            .unwrap()
            .kind
            .needs_input_in_backward());
        assert!(Layer::norm("n", s, NormKind::Batch)
            .kind
            .needs_input_in_backward());
        assert!(!Layer::relu("r", s).kind.needs_input_in_backward());
        assert!(Layer::pool("p", s, PoolKind::Max, 2, 2, 0)
            .unwrap()
            .kind
            .needs_input_in_backward());
        assert!(!Layer::pool("p", s, PoolKind::Avg, 2, 2, 0)
            .unwrap()
            .kind
            .needs_input_in_backward());
    }

    #[test]
    fn norm_params_are_two_per_channel() {
        let s = FeatureShape::new(256, 14, 14);
        let n = Layer::norm("n", s, NormKind::Group { groups: 32 });
        assert_eq!(n.param_elems(), 512);
    }

    #[test]
    fn fully_connected_params_include_bias() {
        let s = FeatureShape::vector(2048);
        let fc = Layer::fully_connected("fc", s, 1000);
        assert_eq!(fc.param_elems(), 2048 * 1000 + 1000);
    }
}
