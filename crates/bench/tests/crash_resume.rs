//! Real-crash integration test: spawn the `crash_resume` binary, SIGKILL
//! it mid-epoch once checkpoints start landing, then resume in-process
//! and require the epoch curve to match an uninterrupted baseline
//! exactly. This is the un-faked version of the in-crate fault tests —
//! the process genuinely dies with no destructors, exactly like a
//! preempted or OOM-killed training job.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbscrash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn finished_checkpoints(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| {
                    e.file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".mbsckpt"))
                })
                .count()
        })
        .unwrap_or(0)
}

/// Kills the child once at least `want` checkpoints exist; returns true
/// if it was killed, false if it finished first (fast machine).
fn kill_once_checkpointed(child: &mut Child, dir: &Path, want: usize) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(_status) = child.try_wait().expect("try_wait") {
            return false;
        }
        if finished_checkpoints(dir) >= want {
            // SIGKILL on unix: no cleanup, no atexit — a real crash.
            child.kill().expect("kill child");
            let _ = child.wait();
            return true;
        }
        assert!(
            Instant::now() < deadline,
            "child produced no checkpoints within the deadline"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn sigkilled_training_resumes_to_the_baseline_curve() {
    let baseline = mbs_bench::crash::run(None).expect("baseline run");

    let dir = scratch();
    let mut child = Command::new(env!("CARGO_BIN_EXE_crash_resume"))
        .arg(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash_resume");
    let killed = kill_once_checkpointed(&mut child, &dir, 2);

    // Whether the child died mid-run or beat us to the finish line, a
    // resume from its directory must land on the baseline curve.
    let resumed = mbs_bench::crash::run(Some(&dir)).expect("resume after SIGKILL");
    assert_eq!(
        resumed,
        baseline,
        "resume after {} must reproduce the uninterrupted curve",
        if killed { "SIGKILL" } else { "completion" }
    );
    let _ = std::fs::remove_dir_all(&dir);
}
