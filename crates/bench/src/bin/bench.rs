//! Quick-mode bench runner: executes the tensor-ops and training-step
//! Criterion suites with short measurement windows and writes
//! `BENCH_tensor.json` (measurements plus blocked-vs-naive speedup ratios)
//! so the perf trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p mbs-bench --bin bench [-- <out_dir>]
//! ```

use std::collections::HashMap;
use std::path::PathBuf;

use criterion::Criterion;
use serde::Serialize;

/// The report written to `BENCH_tensor.json`.
#[derive(Debug, Clone, Serialize)]
struct Report {
    /// GEMM worker threads the kernels ran with.
    threads: usize,
    /// Raw measurements from both suites.
    measurements: Vec<criterion::Measurement>,
    /// `blocked-vs-naive` mean-time ratios (naive / blocked; >1 is a win).
    speedups: Vec<Speedup>,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    /// Blocked-kernel bench name.
    fast: String,
    /// Naive-reference bench name.
    baseline: String,
    /// `mean(baseline) / mean(fast)`.
    ratio: f64,
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| ".".into());

    let mut c = Criterion::with_quick(true);
    println!("== tensor_ops (quick mode) ==");
    mbs_bench::suites::tensor_ops(&mut c);
    println!("== training_step (quick mode) ==");
    mbs_bench::suites::training_step(&mut c);

    let means: HashMap<&str, f64> = c
        .measurements()
        .iter()
        .map(|m| (m.name.as_str(), m.mean_ns))
        .collect();
    let pairs = [
        ("conv2d_im2col", "conv2d_naive"),
        ("matmul_128", "matmul_naive_128"),
        ("matmul_256", "matmul_naive_256"),
    ];
    let speedups: Vec<Speedup> = pairs
        .iter()
        .filter_map(|&(fast, baseline)| {
            let (f, b) = (means.get(fast)?, means.get(baseline)?);
            Some(Speedup {
                fast: fast.to_string(),
                baseline: baseline.to_string(),
                ratio: b / f,
            })
        })
        .collect();
    for s in &speedups {
        println!(
            "speedup {:>24} vs {:<24} {:>6.2}x",
            s.fast, s.baseline, s.ratio
        );
    }

    let report = Report {
        threads: mbs_tensor::ops::configured_threads(),
        measurements: c.measurements().to_vec(),
        speedups,
    };
    match mbs_bench::write_json(&out_dir, "BENCH_tensor", &report) {
        Ok(()) => println!("wrote {}", out_dir.join("BENCH_tensor.json").display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_tensor.json: {e}");
            std::process::exit(1);
        }
    }
}
