//! Quick-mode bench runner: executes the tensor-ops and training-step
//! Criterion suites plus two GEMM-core sweeps — a per-micro-kernel
//! comparison and an `MBS_THREADS` scaling run — and writes
//! `BENCH_tensor.json` so the perf trajectory is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p mbs-bench --bin bench [-- <out_dir>]
//! ```
//!
//! See `docs/ARCHITECTURE.md` ("BENCH_tensor.json schema") for the full
//! layout of the report.

use std::collections::HashMap;
use std::path::PathBuf;

use criterion::Criterion;
use serde::Serialize;

use mbs_tensor::ops::kernel::{self, MicroKernel};
use mbs_tensor::ops::{gemm_with_kernel, Conv2dCfg, Im2colGeom, MatSrc};

/// The report written to `BENCH_tensor.json`.
#[derive(Debug, Clone, Serialize)]
struct Report {
    /// GEMM worker threads the suites ran with (the process default).
    threads: usize,
    /// The micro-kernel every suite measurement used.
    kernel: String,
    /// Raw measurements from all suites and sweeps.
    measurements: Vec<criterion::Measurement>,
    /// `blocked-vs-naive` mean-time ratios (naive / blocked; >1 is a win).
    speedups: Vec<Speedup>,
    /// Single-core GEMM core, one entry per micro-kernel available on this
    /// CPU (hand-written FMA tiles vs the autovectorized scalar tile).
    kernel_comparison: Vec<KernelBench>,
    /// Multi-thread GEMM core at `MBS_THREADS ∈ {1, 2, 4, max}` (deduped),
    /// with bitwise-identity checks against the 1-thread result.
    thread_scaling: Vec<ThreadScale>,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    /// Blocked-kernel bench name.
    fast: String,
    /// Naive-reference bench name.
    baseline: String,
    /// `mean(baseline) / mean(fast)`.
    ratio: f64,
}

/// One micro-kernel's single-core GEMM-core measurement.
#[derive(Debug, Clone, Serialize)]
struct KernelBench {
    /// Kernel identifier (`scalar-8x8`, `avx2-fma-8x8`, …).
    kernel: String,
    /// Register tile shape, `mr x nr`.
    tile: String,
    /// Mean ns for the 256×256×256 GEMM core, 1 thread.
    matmul_256_mean_ns: f64,
    /// `mean(scalar) / mean(this)` — >1 means the hand-written kernel
    /// beats the autovectorized one.
    speedup_vs_scalar: f64,
    /// Whether this is the kernel [`kernel::selected`] picked.
    selected: bool,
}

/// One thread count of the scaling sweep.
#[derive(Debug, Clone, Serialize)]
struct ThreadScale {
    /// Sweep workload (`matmul_256` or `conv_fwd_gemm`).
    bench: String,
    /// Worker threads (the value `MBS_THREADS` would be set to).
    threads: usize,
    /// Workers that actually ran: the GEMM clamps to the row-block count
    /// (`m.div_ceil(MC)`), so small workloads cap out — flat scaling
    /// beyond this value is the workload, not the scheduler.
    effective_threads: usize,
    /// Mean ns at this thread count.
    mean_ns: f64,
    /// `mean(1 thread) / mean(this)` — >1 is a multi-core win.
    speedup_vs_1: f64,
    /// Whether the output matched the 1-thread run bit-for-bit (the
    /// shared-B-panel determinism guarantee).
    bitwise_equal_to_1_thread: bool,
}

fn filled(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|v| (((v * 7 + salt) % 17) as f32 - 8.0) / 4.0)
        .collect()
}

/// Benches the bare GEMM core (256×256×256, row-major) under every
/// available micro-kernel, single-threaded.
fn kernel_comparison(c: &mut Criterion) -> Vec<KernelBench> {
    const DIM: usize = 256;
    let a = filled(DIM * DIM, 6);
    let b = filled(DIM * DIM, 7);
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: DIM,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: DIM,
    };
    let kernels = kernel::available();
    for kern in &kernels {
        let mut out = vec![0.0f32; DIM * DIM];
        c.bench_function(&format!("matmul_256_kernel/{}", kern.name), |bch| {
            bch.iter(|| gemm_with_kernel(&asrc, &bsrc, &mut out, DIM, DIM, DIM, 1, kern))
        });
    }
    let means: HashMap<String, f64> = c
        .measurements()
        .iter()
        .map(|m| (m.name.clone(), m.mean_ns))
        .collect();
    let scalar_mean = means
        .get(&format!("matmul_256_kernel/{}", kernel::SCALAR_8X8.name))
        .copied()
        .unwrap_or(f64::NAN);
    kernels
        .iter()
        .map(|kern| {
            let mean = means
                .get(&format!("matmul_256_kernel/{}", kern.name))
                .copied()
                .unwrap_or(f64::NAN);
            KernelBench {
                kernel: kern.name.to_string(),
                tile: format!("{}x{}", kern.mr, kern.nr),
                matmul_256_mean_ns: mean,
                speedup_vs_scalar: scalar_mean / mean,
                selected: std::ptr::eq(*kern, kernel::selected()),
            }
        })
        .collect()
}

/// One workload of the thread-scaling sweep: a named GEMM-core shape run
/// at every swept thread count on the process-selected kernel.
#[allow(clippy::too_many_arguments)]
fn scale_workload(
    c: &mut Criterion,
    bench: &str,
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    m: usize,
    n: usize,
    k: usize,
    counts: &[usize],
    kern: &MicroKernel,
) -> Vec<ThreadScale> {
    let mut reference = vec![0.0f32; m * n];
    gemm_with_kernel(a, b, &mut reference, m, n, k, 1, kern);
    let mut rows = Vec::with_capacity(counts.len());
    let mut base_mean = f64::NAN;
    for &threads in counts {
        let mut out = vec![0.0f32; m * n];
        gemm_with_kernel(a, b, &mut out, m, n, k, threads, kern);
        let bitwise = out == reference;
        c.bench_function(&format!("gemm_threads/{bench}/{threads}"), |bch| {
            bch.iter(|| gemm_with_kernel(a, b, &mut out, m, n, k, threads, kern))
        });
        let mean = c
            .measurements()
            .last()
            .map(|meas| meas.mean_ns)
            .unwrap_or(f64::NAN);
        if threads == 1 {
            base_mean = mean;
        }
        rows.push(ThreadScale {
            bench: bench.to_string(),
            threads,
            effective_threads: mbs_tensor::ops::pack::effective_workers(m, threads),
            mean_ns: mean,
            speedup_vs_1: base_mean / mean,
            bitwise_equal_to_1_thread: bitwise,
        });
    }
    rows
}

/// Sweeps `MBS_THREADS ∈ {1, 2, 4, max}` (deduped, sorted) over a square
/// GEMM and a conv-forward-shaped fused-im2col GEMM.
fn thread_scaling(c: &mut Criterion) -> Vec<ThreadScale> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    let kern = kernel::selected();

    const DIM: usize = 256;
    let a = filled(DIM * DIM, 8);
    let b = filled(DIM * DIM, 9);
    let mut rows = scale_workload(
        c,
        "matmul_256",
        &MatSrc::RowMajor {
            data: &a,
            stride: DIM,
        },
        &MatSrc::RowMajor {
            data: &b,
            stride: DIM,
        },
        DIM,
        DIM,
        DIM,
        &counts,
        kern,
    );

    // The conv-forward GEMM at the tensor_ops suite shape: virtual im2col
    // of x[4, 8, 16, 16] against 16 3×3 filters.
    let geom = Im2colGeom::new(4, 8, 16, 16, Conv2dCfg::square(3, 1, 1));
    let x = filled(4 * 8 * 16 * 16, 1);
    let w = filled(16 * geom.cols(), 2);
    rows.extend(scale_workload(
        c,
        "conv_fwd_gemm",
        &MatSrc::Im2col { x: &x, geom },
        &MatSrc::ColMajor {
            data: &w,
            stride: geom.cols(),
        },
        geom.rows(),
        16,
        geom.cols(),
        &counts,
        kern,
    ));
    rows
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| ".".into());

    let mut c = Criterion::with_quick(true);
    println!("== tensor_ops (quick mode) ==");
    mbs_bench::suites::tensor_ops(&mut c);
    println!("== training_step (quick mode) ==");
    mbs_bench::suites::training_step(&mut c);
    println!("== kernel comparison (1 thread) ==");
    let kernel_comparison = kernel_comparison(&mut c);
    println!("== thread scaling (MBS_THREADS sweep) ==");
    let thread_scaling = thread_scaling(&mut c);

    let means: HashMap<&str, f64> = c
        .measurements()
        .iter()
        .map(|m| (m.name.as_str(), m.mean_ns))
        .collect();
    let pairs = [
        ("conv2d_im2col", "conv2d_naive"),
        ("matmul_128", "matmul_naive_128"),
        ("matmul_256", "matmul_naive_256"),
    ];
    let speedups: Vec<Speedup> = pairs
        .iter()
        .filter_map(|&(fast, baseline)| {
            let (f, b) = (means.get(fast)?, means.get(baseline)?);
            Some(Speedup {
                fast: fast.to_string(),
                baseline: baseline.to_string(),
                ratio: b / f,
            })
        })
        .collect();
    for s in &speedups {
        println!(
            "speedup {:>24} vs {:<24} {:>6.2}x",
            s.fast, s.baseline, s.ratio
        );
    }
    for kb in &kernel_comparison {
        println!(
            "kernel {:>20} ({}) {:>12.0} ns  {:>5.2}x vs scalar{}",
            kb.kernel,
            kb.tile,
            kb.matmul_256_mean_ns,
            kb.speedup_vs_scalar,
            if kb.selected { "  [selected]" } else { "" }
        );
    }
    for ts in &thread_scaling {
        println!(
            "threads {:>14} x{:<2} {:>12.0} ns  {:>5.2}x vs 1 thread  bitwise_equal={}",
            ts.bench, ts.threads, ts.mean_ns, ts.speedup_vs_1, ts.bitwise_equal_to_1_thread
        );
    }

    let report = Report {
        threads: mbs_tensor::ops::configured_threads(),
        kernel: kernel::selected().name.to_string(),
        measurements: c.measurements().to_vec(),
        speedups,
        kernel_comparison,
        thread_scaling,
    };
    match mbs_bench::write_json(&out_dir, "BENCH_tensor", &report) {
        Ok(()) => println!("wrote {}", out_dir.join("BENCH_tensor.json").display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_tensor.json: {e}");
            std::process::exit(1);
        }
    }
}
