//! Quick-mode bench runner: executes the tensor-ops and training-step
//! Criterion suites plus two GEMM-core sweeps — a per-micro-kernel
//! comparison and an `MBS_THREADS` scaling run — and writes
//! `BENCH_tensor.json`, then sweeps the **serialized training step**
//! (sub-batch size × fused/unfused epilogues, plus steady-state arena
//! stats) into `BENCH_train.json`, and finally drives the dynamic-batching
//! server through an open-loop load sweep (p50/p99 latency per offered
//! rate, dispatched-batch histogram) into `BENCH_serve.json` — so the
//! kernel-level, executor-level, and serving-level perf trajectories are
//! all tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p mbs-bench --bin bench [-- <out_dir>]
//! ```
//!
//! See `docs/ARCHITECTURE.md` ("BENCH_tensor.json schema",
//! "BENCH_train.json schema", and "BENCH_serve.json schema") for the full
//! layout of the reports.

use std::collections::HashMap;
use std::path::PathBuf;

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use mbs_cnn::networks::toy;
use mbs_serve::{ModelHandle, ServeConfig, Server};
use mbs_tensor::arena;
use mbs_tensor::ops::kernel::{self, MicroKernel};
use mbs_tensor::ops::{gemm_fused_prec, gemm_with_kernel, Conv2dCfg, Epilogue, Im2colGeom, MatSrc};
use mbs_tensor::prec::Precision;
use mbs_tensor::Tensor;
use mbs_train::data::generate;
use mbs_train::executor::train_step_mbs;
use mbs_train::model::{ConvNet, MiniResNet};
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;
use mbs_train::Module;

/// The report written to `BENCH_tensor.json`.
#[derive(Debug, Clone, Serialize)]
struct Report {
    /// GEMM worker threads the suites ran with (the process default).
    threads: usize,
    /// The micro-kernel every suite measurement used.
    kernel: String,
    /// Raw measurements from all suites and sweeps.
    measurements: Vec<criterion::Measurement>,
    /// `blocked-vs-naive` mean-time ratios (naive / blocked; >1 is a win).
    speedups: Vec<Speedup>,
    /// Single-core GEMM core, one entry per micro-kernel available on this
    /// CPU (hand-written FMA tiles vs the autovectorized scalar tile).
    kernel_comparison: Vec<KernelBench>,
    /// Multi-thread GEMM core at `MBS_THREADS ∈ {1, 2, 4, max}` (deduped),
    /// with bitwise-identity checks against the 1-thread result.
    thread_scaling: Vec<ThreadScale>,
    /// f32 vs bf16 packed operands on the same fused GEMM core (the
    /// `MBS_PREC` knob, swept in-process via the explicit-precision entry
    /// point).
    precision: Vec<PrecisionGemmBench>,
}

#[derive(Debug, Clone, Serialize)]
struct Speedup {
    /// Blocked-kernel bench name.
    fast: String,
    /// Naive-reference bench name.
    baseline: String,
    /// `mean(baseline) / mean(fast)`.
    ratio: f64,
}

/// One micro-kernel's single-core GEMM-core measurement.
#[derive(Debug, Clone, Serialize)]
struct KernelBench {
    /// Kernel identifier (`scalar-8x8`, `avx2-fma-8x8`, …).
    kernel: String,
    /// Register tile shape, `mr x nr`.
    tile: String,
    /// Mean ns for the 256×256×256 GEMM core, 1 thread.
    matmul_256_mean_ns: f64,
    /// `mean(scalar) / mean(this)` — >1 means the hand-written kernel
    /// beats the autovectorized one.
    speedup_vs_scalar: f64,
    /// Whether this is the kernel [`kernel::selected`] picked.
    selected: bool,
}

/// One thread count of the scaling sweep.
#[derive(Debug, Clone, Serialize)]
struct ThreadScale {
    /// Sweep workload (`matmul_256` or `conv_fwd_gemm`).
    bench: String,
    /// Worker threads (the value `MBS_THREADS` would be set to).
    threads: usize,
    /// Workers that actually ran: the GEMM clamps to the row-block count
    /// (`m.div_ceil(MC)`), so small workloads cap out — flat scaling
    /// beyond this value is the workload, not the scheduler.
    effective_threads: usize,
    /// Mean ns at this thread count.
    mean_ns: f64,
    /// `mean(1 thread) / mean(this)` — >1 is a multi-core win.
    speedup_vs_1: f64,
    /// Whether the output matched the 1-thread run bit-for-bit (the
    /// shared-B-panel determinism guarantee).
    bitwise_equal_to_1_thread: bool,
}

/// One precision leg of the packed-operand GEMM comparison
/// (`BENCH_tensor.json` `precision` section).
#[derive(Debug, Clone, Serialize)]
struct PrecisionGemmBench {
    /// Precision the A/B panels were packed at (`f32` / `bf16`).
    precision: String,
    /// Best-of-rounds ns for the 256×256×256 fused GEMM core, 1 thread,
    /// on the selected kernel.
    matmul_256_best_ns: f64,
    /// `best(f32) / best(this)` — >1 means the half-width panels win.
    /// The win is packed-panel memory *traffic* (arithmetic still
    /// accumulates in f32), so it needs bandwidth-bound shapes and
    /// hardware; on a cache-resident 256³ toy the per-element encode
    /// cost can put this below 1.
    speedup_vs_f32: f64,
    /// Max |bf16 − f32| over the 256×256 output (0 for the f32 row): the
    /// cost of one round-to-nearest-even per packed operand element.
    max_abs_err_vs_f32: f64,
}

/// The report written to `BENCH_train.json`: the serialized training step
/// at executor level, swept over sub-batch sizes with fused epilogues on
/// and off.
#[derive(Debug, Clone, Serialize)]
struct TrainReport {
    /// GEMM worker threads the steps ran with (the process default).
    threads: usize,
    /// The micro-kernel every measurement used.
    kernel: String,
    /// One row per (model, sub-batch): fused vs unfused step time.
    train_step: Vec<TrainStepBench>,
    /// A/A control for the step sweep: two *identical* fused models
    /// measured by the same interleaved harness. How far this sits from
    /// 1.0 is the measurement noise floor — step-sweep speedups inside
    /// that band are not significant (on the shared 1-CPU dev container
    /// the floor is ~±2%, which swallows the few-percent epilogue win at
    /// toy activation sizes).
    aa_noise_ratio: f64,
    /// Layer-level fused-vs-unfused comparison on shapes whose outputs
    /// outgrow L1/L2 — the regime the epilogue targets. Read against
    /// `aa_noise_ratio`: on the dev container the deltas sit at the noise
    /// floor (the separate passes it eliminates stream from cache at full
    /// speed there); the eliminated passes are real memory traffic on
    /// bandwidth-bound hardware.
    layer_fused: Vec<LayerFusedBench>,
    /// Arena hit/miss counters over one steady-state `train_step_mbs`
    /// call (pool pre-warmed by the benches above); `arena_misses` must be
    /// 0 — the sub-batch loop allocates no fresh f32 storage.
    steady_state: SteadyState,
    /// Grouped (schedule-driven) vs uniform serialized training step on
    /// lowered-IR networks, with the grouped step swept **stash vs
    /// replay**: `grouped_best_ns` is the cache-stashing default,
    /// `replay_best_ns` is the same executor under the `MBS_STASH=0`
    /// strategy (backward re-forwards multi-iteration groups), and the
    /// uniform baseline is `train_step_mbs` at the schedule's *minimum*
    /// sub-batch (what an MBS-FS-style single-group serialization of the
    /// same net would have to use). Stashing must not lose to replay
    /// (`speedup_stash_vs_replay >= ~1.0`): it strictly removes forward
    /// work and the two are bitwise-equivalent otherwise.
    grouped: Vec<GroupedBench>,
    /// The schedules themselves: chosen groups and per-group sub-batches
    /// per model, with the modeled DRAM traffic — the plan the grouped
    /// executor runs for the runtime nets, and the paper-default plans for
    /// the zoo networks.
    schedule: Vec<ScheduleInfo>,
    /// Checkpoint durability costs per model: atomic save and validated
    /// load latency, on-disk size, and the end-to-end grouped-training
    /// overhead of checkpointing every step vs every 10 steps.
    checkpoint: Vec<CheckpointBench>,
    /// The streaming data pipeline: steady-state grouped step time with
    /// batches prefetched off a `*.mbsds` file vs gathered from memory,
    /// swept over prefetch depths, with the loader's stall and disk-
    /// traffic counters. Streamed and in-memory steps are bitwise-
    /// identical in output, so the ratio is pure data-path overhead.
    loader: Vec<LoaderBench>,
    /// f32 vs bf16 *storage* precision on the grouped executor (stash
    /// entries + boundary buffers), per network: measured resident bytes
    /// and step-time delta. GEMM operand precision stays process-wide
    /// (`MBS_PREC`), so the kernel-level f32-vs-bf16 timing lives in
    /// `BENCH_tensor.json`'s `precision` section instead.
    precision: Vec<TrainPrecisionBench>,
}

/// One network's f32-vs-bf16 storage-precision row in `BENCH_train.json`.
#[derive(Debug, Clone, Serialize)]
struct TrainPrecisionBench {
    /// Network name.
    network: String,
    /// Mini-batch size of the measured step.
    batch: usize,
    /// [`mbs_core::Schedule::stash_bytes_at`] at f32: the scheduler's
    /// modeled per-sample stash footprint.
    f32_stash_model_bytes: usize,
    /// Same at bf16 — exactly half the f32 figure (pinned by tests).
    bf16_stash_model_bytes: usize,
    /// Measured resident bytes of the interior boundary-stage buffers
    /// after a training forward, f32 executor.
    f32_boundary_bytes: usize,
    /// Same on the bf16-storage executor — exactly half.
    bf16_boundary_bytes: usize,
    /// Measured resident bytes of tensor-valued stash entries after a
    /// training forward (before backward drains them), f32 executor.
    f32_stash_tensor_bytes: usize,
    /// Same on the bf16-storage executor — exactly half.
    bf16_stash_tensor_bytes: usize,
    /// Best-of-rounds grouped `train_step` ns, f32 storage.
    f32_step_best_ns: f64,
    /// Same with bf16 storage: the encode/decode cost of compressing
    /// stashes and boundaries rides on top of the identical GEMM work.
    bf16_step_best_ns: f64,
    /// `f32 / bf16` step ratio — <1 quantifies the compression overhead
    /// paid for the halved footprint at these (cache-resident) toy sizes.
    speedup_bf16_storage: f64,
}

/// One model's checkpoint cost row in `BENCH_train.json`.
#[derive(Debug, Clone, Serialize)]
struct CheckpointBench {
    /// Network name.
    model: String,
    /// On-disk checkpoint size (header + JSON payload).
    file_bytes: u64,
    /// Best-of-rounds latency of one atomic save (encode, tmp write,
    /// fsync, rename, directory fsync, rotation).
    save_best_ns: f64,
    /// Best-of-rounds latency of one fully validated load (read, header
    /// checks, checksum, JSON parse).
    load_best_ns: f64,
    /// Wall-clock overhead (percent, vs the same run without
    /// checkpointing) of saving after **every** training step.
    overhead_pct_every_1: f64,
    /// Same, saving every 10th step (plus the epoch-boundary saves both
    /// configurations share).
    overhead_pct_every_10: f64,
}

/// One prefetch-depth row of the `loader` section in `BENCH_train.json`.
#[derive(Debug, Clone, Serialize)]
struct LoaderBench {
    /// Network the steps ran on.
    model: String,
    /// Samples in the on-disk dataset.
    samples: usize,
    /// Mini-batch size (also the measured steps per epoch × batch).
    batch: usize,
    /// Prefetch depth of this row (`1` = degenerate synchronous).
    prefetch: usize,
    /// Samples per chunk in the `*.mbsds` file.
    chunk_samples: usize,
    /// On-disk dataset size (header + index + chunks).
    file_bytes: u64,
    /// Best-of-rounds steady-state step with the batch **gathered from
    /// memory** (copy + train_step), the baseline data path.
    memory_step_best_ns: f64,
    /// Same step with the batch handed over by the prefetch thread
    /// (recv + train_step + recycle).
    streamed_step_best_ns: f64,
    /// `streamed / memory` — 1.0 means the prefetch thread fully hides
    /// the disk; the prefetch-1 row shows what synchrony costs.
    ratio_streamed_vs_memory: f64,
    /// Times the measured epochs' `next_batch` found the queue empty and
    /// blocked (prefetch stalls) — 0 means training never waited.
    stalls: u64,
    /// Chunk bytes read off disk across the streamed phase (cache
    /// misses re-read; a full sequential pass is `~file_bytes`).
    bytes_read: u64,
    /// `bytes_read` over the streamed phase's wall-clock — the effective
    /// off-disk bandwidth while training overlapped the reads.
    bytes_per_sec: f64,
    /// Chunk reads the loader thread performed (LRU-cache misses).
    chunk_loads: u64,
}

/// One schedule group, as recorded in `BENCH_train.json`.
#[derive(Debug, Clone, Serialize)]
struct GroupInfo {
    /// First node index (inclusive).
    start: usize,
    /// Last node index (exclusive).
    end: usize,
    /// Samples per sub-batch iteration.
    sub_batch: usize,
    /// Sub-batch iterations over the mini-batch.
    iterations: usize,
}

impl GroupInfo {
    fn from_schedule(s: &mbs_core::Schedule) -> Vec<GroupInfo> {
        s.groups()
            .iter()
            .map(|g| GroupInfo {
                start: g.start,
                end: g.end,
                sub_batch: g.sub_batch,
                iterations: g.iterations,
            })
            .collect()
    }
}

/// One network's chosen schedule under one configuration.
#[derive(Debug, Clone, Serialize)]
struct ScheduleInfo {
    /// Network name.
    network: String,
    /// Execution configuration label (`MBS1`, `MBS2`, …).
    config: String,
    /// Per-core mini-batch size.
    batch: usize,
    /// Global-buffer bytes the schedule was sized against.
    buffer_bytes: usize,
    /// The chosen groups.
    groups: Vec<GroupInfo>,
    /// Modeled DRAM bytes per training step under this schedule.
    dram_bytes: u64,
    /// Bytes of backward caches a cache-stashing executor keeps stashed
    /// across the forward pass (`Schedule::stash_bytes`) — the memory the
    /// `MBS_STASH=0` replay mode trades back for recompute.
    stash_bytes: u64,
    /// Whether every group fits the buffer at ≥ 1 sample.
    fits: bool,
}

/// One grouped-vs-uniform measurement.
#[derive(Debug, Clone, Serialize)]
struct GroupedBench {
    /// Lowered network name.
    network: String,
    /// Mini-batch size of the measured step.
    batch: usize,
    /// The executed schedule's groups.
    groups: Vec<GroupInfo>,
    /// Sub-batch of the uniform baseline (`schedule.min_sub_batch()`).
    uniform_sub_batch: usize,
    /// Best (minimum-over-rounds) ns per grouped `train_step` with cache
    /// stashing (the default backward strategy).
    grouped_best_ns: f64,
    /// Best ns per grouped `train_step` with backward replay
    /// (`MBS_STASH=0` / `set_stashing(false)`).
    replay_best_ns: f64,
    /// Best ns per uniform `train_step_mbs` at the minimum sub-batch.
    uniform_best_ns: f64,
    /// `uniform / grouped(stash)` — >1 means the schedule-driven step wins.
    speedup_grouped: f64,
    /// `replay / stash` — >1 means cache stashing beats backward replay
    /// (expected whenever any group runs more than one iteration).
    speedup_stash_vs_replay: f64,
}

/// One layer-level fused-vs-unfused measurement.
#[derive(Debug, Clone, Serialize)]
struct LayerFusedBench {
    /// Operation + epilogue under test.
    op: String,
    /// Operand shape description.
    shape: String,
    /// Best (minimum-over-rounds) ns per call with the epilogue fused
    /// into the write-back — a min, not a mean: the interleaved harness
    /// keeps each side's best block to discard steal-time outliers.
    fused_best_ns: f64,
    /// Best ns per call as GEMM/conv, then bias pass, then ReLU pass.
    unfused_best_ns: f64,
    /// `unfused / fused` — >1 means fusion wins.
    speedup_fused: f64,
}

/// One (model, sub-batch) row of the executor-level sweep.
#[derive(Debug, Clone, Serialize)]
struct TrainStepBench {
    /// `mini_resnet_gn` (Fig. 6 configuration) or `convnet_fused_stack`
    /// (norm-free conv+bias+ReLU layers — every epilogue fused).
    model: String,
    /// Samples per serialized sub-batch (batch is 16).
    sub_batch: usize,
    /// Best (minimum-over-rounds) ns per `train_step_mbs` with fused
    /// epilogues — a min, not a mean (see `LayerFusedBench::fused_best_ns`).
    fused_best_ns: f64,
    /// Best ns per step with `set_fused(false)` (separate bias/ReLU
    /// passes).
    unfused_best_ns: f64,
    /// `unfused / fused` — >1 means the fused write-back wins.
    speedup_fused: f64,
}

/// Arena counters over one steady-state training step.
#[derive(Debug, Clone, Serialize)]
struct SteadyState {
    /// Pool reuses during the step.
    arena_hits: u64,
    /// Fresh allocations during the step (the planner's target: 0).
    arena_misses: u64,
}

fn filled(len: usize, salt: usize) -> Vec<f32> {
    (0..len)
        .map(|v| (((v * 7 + salt) % 17) as f32 - 8.0) / 4.0)
        .collect()
}

/// Benches the bare GEMM core (256×256×256, row-major) under every
/// available micro-kernel, single-threaded.
fn kernel_comparison(c: &mut Criterion) -> Vec<KernelBench> {
    const DIM: usize = 256;
    let a = filled(DIM * DIM, 6);
    let b = filled(DIM * DIM, 7);
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: DIM,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: DIM,
    };
    let kernels = kernel::available();
    for kern in &kernels {
        let mut out = vec![0.0f32; DIM * DIM];
        c.bench_function(&format!("matmul_256_kernel/{}", kern.name), |bch| {
            bch.iter(|| gemm_with_kernel(&asrc, &bsrc, &mut out, DIM, DIM, DIM, 1, kern))
        });
    }
    let means: HashMap<String, f64> = c
        .measurements()
        .iter()
        .map(|m| (m.name.clone(), m.mean_ns))
        .collect();
    let scalar_mean = means
        .get(&format!("matmul_256_kernel/{}", kernel::SCALAR_8X8.name))
        .copied()
        .unwrap_or(f64::NAN);
    kernels
        .iter()
        .map(|kern| {
            let mean = means
                .get(&format!("matmul_256_kernel/{}", kern.name))
                .copied()
                .unwrap_or(f64::NAN);
            KernelBench {
                kernel: kern.name.to_string(),
                tile: format!("{}x{}", kern.mr, kern.nr),
                matmul_256_mean_ns: mean,
                speedup_vs_scalar: scalar_mean / mean,
                selected: std::ptr::eq(*kern, kernel::selected()),
            }
        })
        .collect()
}

/// f32 vs bf16 packed operands on the same fused GEMM core, interleaved
/// so both precisions see the same machine state. Uses
/// [`gemm_fused_prec`]'s explicit precision so the sweep runs in one
/// process regardless of `MBS_PREC`.
fn precision_gemm() -> Vec<PrecisionGemmBench> {
    const DIM: usize = 256;
    const ROUNDS: usize = 6;
    // Thirds are not bf16-representable (unlike `filled`'s quarters), so
    // the error column actually exercises the per-element rounding.
    let third = |len: usize, salt: usize| -> Vec<f32> {
        (0..len)
            .map(|v| (((v * 7 + salt) % 17) as f32 - 8.0) / 3.0)
            .collect()
    };
    let a = third(DIM * DIM, 10);
    let b = third(DIM * DIM, 11);
    let asrc = MatSrc::RowMajor {
        data: &a,
        stride: DIM,
    };
    let bsrc = MatSrc::RowMajor {
        data: &b,
        stride: DIM,
    };
    let kern = kernel::selected();
    let mut out32 = vec![0.0f32; DIM * DIM];
    let mut out16 = vec![0.0f32; DIM * DIM];
    let gemm_at = |out: &mut [f32], prec: Precision| {
        gemm_fused_prec(
            &asrc,
            &bsrc,
            out,
            DIM,
            DIM,
            DIM,
            1,
            kern,
            &Epilogue::None,
            prec,
        );
    };
    gemm_at(&mut out32, Precision::F32);
    gemm_at(&mut out16, Precision::Bf16);
    let max_err = out32
        .iter()
        .zip(&out16)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max);
    let mut scratch = vec![0.0f32; DIM * DIM];
    let best = interleaved_best_n::<2>(ROUNDS, 8, &mut |slot| {
        let prec = if slot == 0 {
            Precision::F32
        } else {
            Precision::Bf16
        };
        gemm_at(criterion::black_box(&mut scratch), prec);
    });
    println!(
        "precision matmul_256: f32 {:.0} ns, bf16 {:.0} ns ({:.2}x), max |Δ| {:.3e}",
        best[0],
        best[1],
        best[0] / best[1],
        max_err
    );
    vec![
        PrecisionGemmBench {
            precision: Precision::F32.name().to_string(),
            matmul_256_best_ns: best[0],
            speedup_vs_f32: 1.0,
            max_abs_err_vs_f32: 0.0,
        },
        PrecisionGemmBench {
            precision: Precision::Bf16.name().to_string(),
            matmul_256_best_ns: best[1],
            speedup_vs_f32: best[0] / best[1],
            max_abs_err_vs_f32: max_err as f64,
        },
    ]
}

/// One workload of the thread-scaling sweep: a named GEMM-core shape run
/// at every swept thread count on the process-selected kernel.
#[allow(clippy::too_many_arguments)]
fn scale_workload(
    c: &mut Criterion,
    bench: &str,
    a: &MatSrc<'_>,
    b: &MatSrc<'_>,
    m: usize,
    n: usize,
    k: usize,
    counts: &[usize],
    kern: &MicroKernel,
) -> Vec<ThreadScale> {
    let mut reference = vec![0.0f32; m * n];
    gemm_with_kernel(a, b, &mut reference, m, n, k, 1, kern);
    let mut rows = Vec::with_capacity(counts.len());
    let mut base_mean = f64::NAN;
    for &threads in counts {
        let mut out = vec![0.0f32; m * n];
        gemm_with_kernel(a, b, &mut out, m, n, k, threads, kern);
        let bitwise = out == reference;
        c.bench_function(&format!("gemm_threads/{bench}/{threads}"), |bch| {
            bch.iter(|| gemm_with_kernel(a, b, &mut out, m, n, k, threads, kern))
        });
        let mean = c
            .measurements()
            .last()
            .map(|meas| meas.mean_ns)
            .unwrap_or(f64::NAN);
        if threads == 1 {
            base_mean = mean;
        }
        rows.push(ThreadScale {
            bench: bench.to_string(),
            threads,
            effective_threads: mbs_tensor::ops::pack::effective_workers(m, threads),
            mean_ns: mean,
            speedup_vs_1: base_mean / mean,
            bitwise_equal_to_1_thread: bitwise,
        });
    }
    rows
}

/// Sweeps `MBS_THREADS ∈ {1, 2, 4, max}` (deduped, sorted) over a square
/// GEMM and a conv-forward-shaped fused-im2col GEMM.
fn thread_scaling(c: &mut Criterion) -> Vec<ThreadScale> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    let kern = kernel::selected();

    const DIM: usize = 256;
    let a = filled(DIM * DIM, 8);
    let b = filled(DIM * DIM, 9);
    let mut rows = scale_workload(
        c,
        "matmul_256",
        &MatSrc::RowMajor {
            data: &a,
            stride: DIM,
        },
        &MatSrc::RowMajor {
            data: &b,
            stride: DIM,
        },
        DIM,
        DIM,
        DIM,
        &counts,
        kern,
    );

    // The conv-forward GEMM at the tensor_ops suite shape: virtual im2col
    // of x[4, 8, 16, 16] against 16 3×3 filters.
    let geom = Im2colGeom::new(4, 8, 16, 16, Conv2dCfg::square(3, 1, 1));
    let x = filled(4 * 8 * 16 * 16, 1);
    let w = filled(16 * geom.cols(), 2);
    rows.extend(scale_workload(
        c,
        "conv_fwd_gemm",
        &MatSrc::Im2col { x: &x, geom },
        &MatSrc::ColMajor {
            data: &w,
            stride: geom.cols(),
        },
        geom.rows(),
        16,
        geom.cols(),
        &counts,
        kern,
    ));
    rows
}

/// Sweeps the serialized training step: (model × sub-batch × fused) with
/// the fused/unfused decision flipped per model instance via `set_fused` —
/// both paths are bitwise identical (pinned by tests), so the delta is
/// pure epilogue/allocation overhead.
///
/// Measurement is **interleaved**: fused and unfused blocks alternate over
/// several rounds and each variant keeps its best (minimum) per-step time.
/// A sequential A-then-B timing on a shared 1-CPU container drifts by more
/// than the few-percent effect under test; alternating blocks see the same
/// machine state, and the min discards steal-time outliers.
fn train_steps() -> Vec<TrainStepBench> {
    const ROUNDS: usize = 6;
    let d8 = generate(16, 8, 0.3, 55);
    // 16×16 inputs × 32-channel convs: activations outgrow L1/L2, which is
    // the regime the fused epilogue targets (whole-tensor passes removed).
    let d16 = generate(16, 16, 0.3, 55);
    let mut rows = Vec::new();
    for model_name in [
        "mini_resnet_gn",
        "convnet_fused_stack",
        "convnet_wide_16x16",
    ] {
        let d = if model_name == "convnet_wide_16x16" {
            &d16
        } else {
            &d8
        };
        for sub in [1usize, 2, 4, 8] {
            // One long-lived (model, optimizer) pair per variant, so both
            // see identical warm pools and parameter trajectories.
            let build = |fused: bool| -> (Box<dyn Module>, Sgd) {
                let model: Box<dyn Module> = match model_name {
                    "mini_resnet_gn" => {
                        let mut m = MiniResNet::new(
                            3,
                            4,
                            1,
                            NormChoice::Group(4),
                            &mut StdRng::seed_from_u64(1),
                        );
                        m.set_fused(fused);
                        Box::new(m)
                    }
                    "convnet_fused_stack" => {
                        let mut m = ConvNet::new(3, 4, 16, 3, &mut StdRng::seed_from_u64(1));
                        m.set_fused(fused);
                        Box::new(m)
                    }
                    _ => {
                        let mut m = ConvNet::new(3, 4, 32, 3, &mut StdRng::seed_from_u64(1));
                        m.set_fused(fused);
                        Box::new(m)
                    }
                };
                (model, Sgd::new(0.05, 0.9, 1e-4))
            };
            let (mut model_f, mut opt_f) = build(true);
            let (mut model_u, mut opt_u) = build(false);
            // Warm both models (and the arena pool), and size the
            // measurement block to ~80 ms so every (model, sub) pair gets
            // comparable statistics regardless of its step time.
            let warm0 = std::time::Instant::now();
            for _ in 0..4 {
                criterion::black_box(train_step_mbs(
                    &mut *model_f,
                    &d.images,
                    &d.labels,
                    sub,
                    &mut opt_f,
                ));
                criterion::black_box(train_step_mbs(
                    &mut *model_u,
                    &d.images,
                    &d.labels,
                    sub,
                    &mut opt_u,
                ));
            }
            let approx_step_ns = warm0.elapsed().as_nanos() as f64 / 8.0;
            let block_iters = ((80e6 / approx_step_ns) as usize).clamp(4, 64);
            let best = interleaved_best(
                ROUNDS,
                block_iters,
                || {
                    criterion::black_box(train_step_mbs(
                        &mut *model_f,
                        &d.images,
                        &d.labels,
                        sub,
                        &mut opt_f,
                    ));
                },
                || {
                    criterion::black_box(train_step_mbs(
                        &mut *model_u,
                        &d.images,
                        &d.labels,
                        sub,
                        &mut opt_u,
                    ));
                },
            );
            println!(
                "train_step/{model_name}/sub{sub}: fused {:.0} ns, unfused {:.0} ns",
                best[0], best[1]
            );
            rows.push(TrainStepBench {
                model: model_name.to_string(),
                sub_batch: sub,
                fused_best_ns: best[0],
                unfused_best_ns: best[1],
                speedup_fused: best[1] / best[0],
            });
        }
    }
    rows
}

/// Generic interleaved N-way timer: round-robins `N` variants of `run`
/// over `rounds` rounds (starting slot rotated each round, so block
/// position cancels) and returns each variant's minimum per-call
/// nanoseconds.
fn interleaved_best_n<const N: usize>(
    rounds: usize,
    iters: usize,
    run: &mut impl FnMut(usize),
) -> [f64; N] {
    let mut best = [f64::INFINITY; N];
    for slot in 0..N {
        run(slot);
    }
    for round in 0..rounds {
        for i in 0..N {
            let slot = (round + i) % N;
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                run(slot);
            }
            best[slot] = best[slot].min(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
    best
}

/// Generic interleaved A/B timer: alternates two closures over `rounds`
/// rounds (order flipped each round, so block position cancels) and
/// returns each side's minimum per-call nanoseconds.
fn interleaved_best(
    rounds: usize,
    iters: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> [f64; 2] {
    interleaved_best_n::<2>(rounds, iters, &mut |slot| {
        if slot == 0 {
            a();
        } else {
            b();
        }
    })
}

/// Measures the A/A noise floor of the step harness: two identical fused
/// models through the same interleaved timer.
fn aa_noise() -> f64 {
    let d = generate(16, 8, 0.3, 55);
    let build = || {
        let mut m = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
        m.set_fused(true);
        (m, Sgd::new(0.05, 0.9, 1e-4))
    };
    let (mut m1, mut o1) = build();
    let (mut m2, mut o2) = build();
    let best = interleaved_best(
        6,
        16,
        || {
            criterion::black_box(train_step_mbs(&mut m1, &d.images, &d.labels, 4, &mut o1));
        },
        || {
            criterion::black_box(train_step_mbs(&mut m2, &d.images, &d.labels, 4, &mut o2));
        },
    );
    best[1] / best[0]
}

/// Layer-level fused-vs-unfused on L2-busting shapes: a 64-channel 32×32
/// conv and a 1024-wide linear, bias+ReLU and bias-only.
fn layer_fused() -> Vec<LayerFusedBench> {
    use mbs_tensor::ops::{conv2d_fused_with, matmul_a_bt_fused_with};
    use mbs_tensor::Tensor;
    let mut rows = Vec::new();

    let cfg = Conv2dCfg::square(3, 1, 1);
    let x = Tensor::from_vec(&[8, 64, 32, 32], filled(8 * 64 * 1024, 21));
    let w = Tensor::from_vec(&[64, 64, 3, 3], filled(64 * 64 * 9, 22));
    let cb = filled(64, 23);
    let best = interleaved_best(
        10,
        6,
        || {
            criterion::black_box(conv2d_fused_with(&x, &w, Some(&cb), true, cfg, true));
        },
        || {
            criterion::black_box(conv2d_fused_with(&x, &w, Some(&cb), true, cfg, false));
        },
    );
    rows.push(LayerFusedBench {
        op: "conv2d bias+relu".into(),
        shape: "x[8,64,32,32] w[64,64,3,3]".into(),
        fused_best_ns: best[0],
        unfused_best_ns: best[1],
        speedup_fused: best[1] / best[0],
    });

    let a = Tensor::from_vec(&[256, 1024], filled(256 * 1024, 24));
    let b = Tensor::from_vec(&[1024, 1024], filled(1024 * 1024, 25));
    let lb = filled(1024, 26);
    for (label, relu) in [("linear bias+relu", true), ("linear bias", false)] {
        let best = interleaved_best(
            10,
            6,
            || {
                criterion::black_box(matmul_a_bt_fused_with(&a, &b, &lb, relu, true));
            },
            || {
                criterion::black_box(matmul_a_bt_fused_with(&a, &b, &lb, relu, false));
            },
        );
        rows.push(LayerFusedBench {
            op: label.into(),
            shape: "a[256,1024] w[1024,1024]".into(),
            fused_best_ns: best[0],
            unfused_best_ns: best[1],
            speedup_fused: best[1] / best[0],
        });
    }
    rows
}

/// The schedules behind the numbers: paper-default plans for three zoo
/// networks plus the CPU-budget plans the grouped sweep actually executes.
fn schedule_section() -> Vec<ScheduleInfo> {
    use mbs_cnn::networks::{alexnet, inception_v3, resnet, toy};
    use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

    let mut rows = Vec::new();
    let mut record = |net: &mbs_cnn::Network, hw: &HardwareConfig, cfg: ExecConfig| {
        let s = MbsScheduler::new(net, hw, cfg).schedule();
        rows.push(ScheduleInfo {
            network: net.name().to_string(),
            config: cfg.label().to_string(),
            batch: s.batch(),
            buffer_bytes: hw.global_buffer_bytes,
            groups: GroupInfo::from_schedule(&s),
            dram_bytes: analyze(net, &s, hw.global_buffer_bytes).dram_bytes(),
            stash_bytes: s.stash_bytes(net) as u64,
            fits: s.fits(),
        });
    };

    let paper_hw = HardwareConfig::default();
    for net in [resnet(50), inception_v3(), alexnet()] {
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            record(&net, &paper_hw, cfg);
        }
    }
    // The runtime nets, sized against the (shrunken) CPU budgets the
    // grouped sweep uses below.
    record(
        &toy::runtime_mix(16, 16),
        &HardwareConfig::cpu().with_global_buffer(16 * 1024),
        ExecConfig::Mbs1,
    );
    record(
        &toy::tiny_resnet(1, 8),
        &HardwareConfig::cpu().with_global_buffer(128 * 1024),
        ExecConfig::Mbs1,
    );
    record(
        &toy::tiny_inception(16, 16),
        &HardwareConfig::cpu().with_global_buffer(8 * 1024),
        ExecConfig::Mbs1,
    );
    record(
        &toy::tiny_alexnet(16, 16),
        &HardwareConfig::cpu().with_global_buffer(8 * 1024),
        ExecConfig::Mbs1,
    );
    rows
}

/// Grouped (schedule-driven, stash **and** replay backward) vs uniform
/// serialized step on lowered-IR networks, through the same interleaved
/// min-of-rounds harness as the `train_steps` sweep — three variants
/// round-robined per round so all see the same machine state.
fn grouped_steps() -> Vec<GroupedBench> {
    use mbs_cnn::networks::toy;
    use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
    use mbs_train::grouped::GroupedExecutor;
    use mbs_train::lower::lower;

    const ROUNDS: usize = 6;
    let mut rows = Vec::new();
    let cases = [
        (toy::runtime_mix(16, 16), 16usize * 1024, 16usize, 16usize),
        (toy::tiny_resnet(1, 8), 128 * 1024, 32, 8),
        (toy::tiny_inception(16, 16), 8 * 1024, 16, 16),
        (toy::tiny_alexnet(16, 16), 8 * 1024, 16, 16),
    ];
    for (net, buffer, img_size, batch) in cases {
        let hw = HardwareConfig::cpu().with_global_buffer(buffer);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(batch)
            .schedule();
        let uniform_sub = schedule.min_sub_batch();
        let d = generate(batch, img_size, 0.3, 57);
        let mut stash_model = lower(&net, &mut StdRng::seed_from_u64(2)).expect("net lowers");
        let mut replay_model = lower(&net, &mut StdRng::seed_from_u64(2)).expect("net lowers");
        let mut uniform_model = lower(&net, &mut StdRng::seed_from_u64(2)).expect("net lowers");
        let mut exec_s = GroupedExecutor::new(&schedule, stash_model.len());
        exec_s.set_stashing(true);
        let mut exec_r = GroupedExecutor::new(&schedule, replay_model.len());
        exec_r.set_stashing(false);
        let mut opt_s = Sgd::new(0.05, 0.9, 1e-4);
        let mut opt_r = Sgd::new(0.05, 0.9, 1e-4);
        let mut opt_u = Sgd::new(0.05, 0.9, 1e-4);

        let mut run = |slot: usize| match slot {
            0 => {
                criterion::black_box(exec_s.train_step(
                    &mut stash_model,
                    &d.images,
                    &d.labels,
                    &mut opt_s,
                ));
            }
            1 => {
                criterion::black_box(exec_r.train_step(
                    &mut replay_model,
                    &d.images,
                    &d.labels,
                    &mut opt_r,
                ));
            }
            _ => {
                criterion::black_box(train_step_mbs(
                    &mut uniform_model,
                    &d.images,
                    &d.labels,
                    uniform_sub,
                    &mut opt_u,
                ));
            }
        };
        let warm0 = std::time::Instant::now();
        for _ in 0..2 {
            for slot in 0..3 {
                run(slot);
            }
        }
        let approx_step_ns = warm0.elapsed().as_nanos() as f64 / 6.0;
        let block_iters = ((80e6 / approx_step_ns) as usize).clamp(2, 64);
        let best = interleaved_best_n::<3>(ROUNDS, block_iters, &mut run);
        println!(
            "grouped/{}: stash {:.0} ns, replay {:.0} ns ({} groups, subs {:?}), uniform(sub{uniform_sub}) {:.0} ns",
            net.name(),
            best[0],
            best[1],
            schedule.groups().len(),
            schedule.sub_batches(),
            best[2]
        );
        rows.push(GroupedBench {
            network: net.name().to_string(),
            batch,
            groups: GroupInfo::from_schedule(&schedule),
            uniform_sub_batch: uniform_sub,
            grouped_best_ns: best[0],
            replay_best_ns: best[1],
            uniform_best_ns: best[2],
            speedup_grouped: best[2] / best[0],
            speedup_stash_vs_replay: best[1] / best[0],
        });
    }
    rows
}

/// f32 vs bf16 storage precision on the grouped executor: same schedule,
/// same identically-seeded model, one executor per storage precision,
/// steps interleaved. Also records the modeled stash footprint at both
/// precisions and the *measured* resident boundary/stash bytes after a
/// training forward — the bf16 columns must come out at exactly half.
fn precision_steps() -> Vec<TrainPrecisionBench> {
    use mbs_cnn::networks::toy;
    use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
    use mbs_train::grouped::GroupedExecutor;
    use mbs_train::lower::lower;

    const ROUNDS: usize = 6;
    let mut rows = Vec::new();
    let cases = [
        (toy::runtime_mix(16, 16), 16usize * 1024, 16usize, 16usize),
        (toy::tiny_resnet(1, 8), 128 * 1024, 32, 8),
    ];
    for (net, buffer, img_size, batch) in cases {
        let hw = HardwareConfig::cpu().with_global_buffer(buffer);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(batch)
            .schedule();
        let d = generate(batch, img_size, 0.3, 58);
        let mut model32 = lower(&net, &mut StdRng::seed_from_u64(3)).expect("net lowers");
        let mut model16 = lower(&net, &mut StdRng::seed_from_u64(3)).expect("net lowers");
        let mut exec32 = GroupedExecutor::new(&schedule, model32.len());
        exec32.set_precision(Precision::F32);
        let mut exec16 = GroupedExecutor::new(&schedule, model16.len());
        exec16.set_precision(Precision::Bf16);
        let mut opt32 = Sgd::new(0.05, 0.9, 1e-4);
        let mut opt16 = Sgd::new(0.05, 0.9, 1e-4);
        let mut run = |slot: usize| {
            if slot == 0 {
                criterion::black_box(exec32.train_step(
                    &mut model32,
                    &d.images,
                    &d.labels,
                    &mut opt32,
                ));
            } else {
                criterion::black_box(exec16.train_step(
                    &mut model16,
                    &d.images,
                    &d.labels,
                    &mut opt16,
                ));
            }
        };
        let warm0 = std::time::Instant::now();
        for slot in 0..2 {
            run(slot);
        }
        let approx_step_ns = warm0.elapsed().as_nanos() as f64 / 2.0;
        let block_iters = ((80e6 / approx_step_ns) as usize).clamp(2, 64);
        let best = interleaved_best_n::<2>(ROUNDS, block_iters, &mut run);
        // Resident-footprint snapshot: a training forward populates the
        // boundary stages and (all but each group's last chunk of) the
        // stashes; the next forward clears the leftovers.
        let _ = exec32.forward(&mut model32, &d.images, true);
        let _ = exec16.forward(&mut model16, &d.images, true);
        let row = TrainPrecisionBench {
            network: net.name().to_string(),
            batch,
            f32_stash_model_bytes: schedule.stash_bytes_at(&net, Precision::F32),
            bf16_stash_model_bytes: schedule.stash_bytes_at(&net, Precision::Bf16),
            f32_boundary_bytes: exec32.boundary_bytes(),
            bf16_boundary_bytes: exec16.boundary_bytes(),
            f32_stash_tensor_bytes: exec32.stash_tensor_bytes(),
            bf16_stash_tensor_bytes: exec16.stash_tensor_bytes(),
            f32_step_best_ns: best[0],
            bf16_step_best_ns: best[1],
            speedup_bf16_storage: best[0] / best[1],
        };
        println!(
            "precision {:>13}: step f32 {:.0} ns, bf16-storage {:.0} ns ({:.2}x); boundary {} -> {} B, stash {} -> {} B",
            row.network,
            row.f32_step_best_ns,
            row.bf16_step_best_ns,
            row.speedup_bf16_storage,
            row.f32_boundary_bytes,
            row.bf16_boundary_bytes,
            row.f32_stash_tensor_bytes,
            row.bf16_stash_tensor_bytes
        );
        rows.push(row);
    }
    rows
}

/// One steady-state training step with the pool already warm: the arena
/// counters must show pure reuse (`arena_misses == 0`).
fn steady_state() -> SteadyState {
    let d = generate(16, 8, 0.3, 56);
    let mut m = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    for _ in 0..2 {
        let _ = train_step_mbs(&mut m, &d.images, &d.labels, 4, &mut opt);
    }
    arena::reset_stats();
    let _ = train_step_mbs(&mut m, &d.images, &d.labels, 4, &mut opt);
    let (arena_hits, arena_misses) = arena::stats();
    SteadyState {
        arena_hits,
        arena_misses,
    }
}

/// Checkpoint cost per model: save/load latency and file size on a
/// stepped model (live momentum buffers), plus the end-to-end overhead
/// of `checkpoint_every` ∈ {1, 10} on a short grouped run.
fn checkpoint_benches() -> Vec<CheckpointBench> {
    use mbs_cnn::networks::toy;
    use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
    use mbs_train::checkpoint::{self, TrainCheckpoint};
    use mbs_train::lower::lower;
    use mbs_train::module::StateDict;
    use mbs_train::training::{train_grouped, TrainConfig};
    use mbs_train::{CheckpointConfig, GroupedExecutor};
    use std::time::Instant;

    const ROUNDS: usize = 7;
    let mut rows = Vec::new();
    let cases = [
        (toy::runtime_mix(8, 8), 8usize, 8usize),
        (toy::tiny_inception(8, 8), 8, 8),
    ];
    for (net, img_size, batch) in cases {
        let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(batch)
            .schedule();
        // A stepped model so the snapshot carries live momentum buffers.
        let d = generate(batch, img_size, 0.3, 41);
        let mut model = lower(&net, &mut StdRng::seed_from_u64(9)).expect("net lowers");
        let mut exec = GroupedExecutor::new(&schedule, model.len());
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let _ = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
        let mut dict = StateDict::default();
        model.export_state(&mut dict);
        let mut vdict = StateDict::default();
        opt.export_state(&mut vdict);
        let ckpt = TrainCheckpoint {
            fingerprint: schedule.fingerprint(&net),
            net: net.name().to_string(),
            epoch: 1,
            step_in_epoch: 0,
            loss_sum: 0.0,
            steps: 0,
            rng: vec![1, 2, 3, 4],
            model: dict.into_entries(),
            velocities: vdict.into_entries(),
            curve: Vec::new(),
        };

        let dir = std::env::temp_dir().join(format!("mbsbench-ckpt-{}", std::process::id()));
        let mut save_best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            criterion::black_box(checkpoint::save(&dir, 0, &ckpt, 2).expect("save"));
            save_best = save_best.min(t0.elapsed().as_nanos() as f64);
        }
        let path = dir.join(checkpoint::file_name(0));
        let file_bytes = std::fs::metadata(&path).expect("saved file").len();
        let mut load_best = f64::INFINITY;
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            criterion::black_box(checkpoint::load_file(&path).expect("load"));
            load_best = load_best.min(t0.elapsed().as_nanos() as f64);
        }
        let _ = std::fs::remove_dir_all(&dir);

        // End-to-end overhead: the same short run with and without
        // per-step checkpointing, best-of-rounds each.
        let data = generate(batch * 4, img_size, 0.3, 42);
        let val = generate(batch, img_size, 0.3, 43);
        let timed_run = |every: Option<usize>| -> f64 {
            let mut cfg = TrainConfig {
                epochs: 2,
                batch,
                lr_milestones: vec![1],
                ..TrainConfig::default()
            };
            let ckdir = std::env::temp_dir().join(format!("mbsbench-ovh-{}", std::process::id()));
            if let Some(every) = every {
                let mut ck = CheckpointConfig::new(&ckdir);
                ck.every_steps = every;
                ck.resume = false;
                cfg.checkpoint = Some(ck);
            }
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let _ = std::fs::remove_dir_all(&ckdir);
                let t0 = Instant::now();
                criterion::black_box(
                    train_grouped(&net, &schedule, &data, &val, &cfg).expect("bench run"),
                );
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            let _ = std::fs::remove_dir_all(&ckdir);
            best
        };
        let base_ns = timed_run(None);
        let every1_ns = timed_run(Some(1));
        let every10_ns = timed_run(Some(10));
        rows.push(CheckpointBench {
            model: net.name().to_string(),
            file_bytes,
            save_best_ns: save_best,
            load_best_ns: load_best,
            overhead_pct_every_1: (every1_ns - base_ns) / base_ns * 100.0,
            overhead_pct_every_10: (every10_ns - base_ns) / base_ns * 100.0,
        });
    }
    rows
}

/// Steady-state grouped step fed off disk vs from memory, swept over
/// prefetch depths. Same harness as the steady-state arena test: warm an
/// epoch so the loader's buffer ring and the executor's staging buffers
/// exist, then time whole epochs and divide by the step count.
fn loader_benches() -> Vec<LoaderBench> {
    use mbs_cnn::networks::toy;
    use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
    use mbs_train::loader::{save_dataset_chunked, DiskDataset, StreamLoader};
    use mbs_train::lower::lower;
    use mbs_train::GroupedExecutor;
    use std::time::Instant;

    const ROUNDS: usize = 3;
    const CHUNK: usize = 16;
    let (net, img_size, batch, samples) = (toy::runtime_mix(8, 8), 8usize, 8usize, 64usize);
    let steps = samples / batch;
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
        .with_batch(batch)
        .schedule();
    let set = generate(samples, img_size, 0.3, 51);
    let dir = std::env::temp_dir().join(format!("mbsbench-loader-{}", std::process::id()));
    let path = dir.join("bench.mbsds");
    save_dataset_chunked(&set, &path, CHUNK).expect("save bench dataset");
    let file_bytes = std::fs::metadata(&path).expect("saved file").len();
    let order: Vec<usize> = (0..samples).collect();

    let mut model = lower(&net, &mut StdRng::seed_from_u64(7)).expect("net lowers");
    let mut exec = GroupedExecutor::new(&schedule, model.len());
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);

    // In-memory baseline: gather (row copies) + train_step, the data
    // path `train_grouped` runs today.
    let gather = |idx: &[usize]| {
        let row = set.images.len() / samples;
        let mut data = Vec::with_capacity(idx.len() * row);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            data.extend_from_slice(&set.images.data()[i * row..(i + 1) * row]);
            labels.push(set.labels[i]);
        }
        (
            mbs_tensor::Tensor::from_vec(&[idx.len(), 3, img_size, img_size], data),
            labels,
        )
    };
    let run_memory_epoch =
        |exec: &mut GroupedExecutor, model: &mut mbs_train::LoweredNet, opt: &mut Sgd| {
            for s in 0..steps {
                let (xs, ls) = gather(&order[s * batch..(s + 1) * batch]);
                criterion::black_box(exec.train_step(model, &xs, &ls, opt));
            }
        };
    run_memory_epoch(&mut exec, &mut model, &mut opt); // warm
    let mut memory_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        run_memory_epoch(&mut exec, &mut model, &mut opt);
        memory_best = memory_best.min(t0.elapsed().as_nanos() as f64 / steps as f64);
    }

    let disk = DiskDataset::open(&path).expect("open bench dataset");
    let mut rows = Vec::new();
    for prefetch in [1usize, 2, 4] {
        let mut loader = StreamLoader::new(&disk, prefetch).expect("spawn loader");
        let run_streamed_epoch = |loader: &mut StreamLoader,
                                  exec: &mut GroupedExecutor,
                                  model: &mut mbs_train::LoweredNet,
                                  opt: &mut Sgd| {
            loader.begin_epoch(&order, batch, 0);
            for _ in 0..steps {
                let b = loader.next_batch().expect("bench batch");
                criterion::black_box(exec.train_step(model, &b.images, &b.labels, opt));
                loader.recycle(b);
            }
        };
        run_streamed_epoch(&mut loader, &mut exec, &mut model, &mut opt); // warm
        let warm_stats = loader.stats();
        let mut streamed_best = f64::INFINITY;
        let phase0 = Instant::now();
        for _ in 0..ROUNDS {
            let t0 = Instant::now();
            run_streamed_epoch(&mut loader, &mut exec, &mut model, &mut opt);
            streamed_best = streamed_best.min(t0.elapsed().as_nanos() as f64 / steps as f64);
        }
        let phase_secs = phase0.elapsed().as_secs_f64();
        let stats = loader.finish();
        let bytes_read = stats.bytes_read - warm_stats.bytes_read;
        rows.push(LoaderBench {
            model: net.name().to_string(),
            samples,
            batch,
            prefetch,
            chunk_samples: CHUNK,
            file_bytes,
            memory_step_best_ns: memory_best,
            streamed_step_best_ns: streamed_best,
            ratio_streamed_vs_memory: streamed_best / memory_best,
            stalls: stats.stalls - warm_stats.stalls,
            bytes_read,
            bytes_per_sec: bytes_read as f64 / phase_secs.max(1e-9),
            chunk_loads: stats.chunk_loads - warm_stats.chunk_loads,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// The report written to `BENCH_serve.json`: dynamic-batching serving
/// latency under synthetic open-loop load, one row per offered rate.
#[derive(Debug, Clone, Serialize)]
struct ServeReport {
    /// GEMM worker threads the forwards ran with (the process default).
    threads: usize,
    /// The micro-kernel every forward used.
    kernel: String,
    /// Served network.
    model: String,
    /// Serving worker threads.
    workers: usize,
    /// Effective max batch (cache-budget capped).
    max_batch: usize,
    /// Batching deadline in microseconds.
    max_wait_us: u64,
    /// One row per offered open-loop load point.
    load_points: Vec<ServeLoad>,
    /// Behavior under sustained overload (non-blocking admission at 4×
    /// the highest sweep rate against a small queue).
    overload: ServeOverload,
}

/// One offered-rate point of the serve sweep.
#[derive(Debug, Clone, Serialize)]
struct ServeLoad {
    /// Offered request rate (open loop: requests are paced at this rate
    /// regardless of completions).
    offered_rps: u64,
    /// Requests issued at this point.
    requests: usize,
    /// Median submit→response latency, microseconds.
    p50_latency_us: f64,
    /// 99th-percentile latency, microseconds.
    p99_latency_us: f64,
    /// Mean latency, microseconds.
    mean_latency_us: f64,
    /// Mean dispatched batch size.
    mean_batch: f64,
    /// `histogram[k]` = batches that carried exactly `k` requests.
    batch_histogram: Vec<u64>,
}

/// The overload point of the serve sweep: `try_submit` admission control
/// at 4× the highest paced rate, small queue, mixed priorities.
#[derive(Debug, Clone, Serialize)]
struct ServeOverload {
    /// Offered request rate (4× the top sweep point).
    offered_rps: u64,
    /// Requests offered.
    offered: usize,
    /// Requests admitted (answered with a prediction or a structured
    /// error later).
    accepted: usize,
    /// Requests refused at admission with `ServeError::Overloaded`.
    refused: usize,
    /// Admitted requests answered with a prediction.
    answered_ok: usize,
    /// Requests shed from the queue to admit higher-priority work
    /// (server counter).
    shed: u64,
    /// Requests answered `DeadlineExceeded` (server counter).
    expired: u64,
    /// Median submit→response latency of the *successful* requests,
    /// microseconds — what admission control buys the requests it keeps.
    p50_latency_us: f64,
    /// 99th-percentile successful-request latency, microseconds.
    p99_latency_us: f64,
    /// Mean `retry_after_us` hint carried by the refusals.
    mean_retry_after_us: f64,
}

/// Open-loop load sweep against the dynamic-batching server: a pacer
/// submits single-sample requests at a fixed offered rate while a
/// collector thread drains the responses in submission order and records
/// per-request latency. A fresh server per load point keeps the batch
/// histograms separable.
fn serve_section() -> ServeReport {
    use std::sync::mpsc;
    use std::thread;
    use std::time::{Duration, Instant};

    let net = toy::runtime_mix(8, 8);
    let model = ModelHandle::from_network(&net, 42).expect("freeze model");
    let hw = mbs_core::HardwareConfig::new();
    let base = ServeConfig::for_model(&model, &hw);
    let config = ServeConfig {
        workers: 2,
        max_batch: base.max_batch.min(16),
        max_wait_us: 1_000,
        queue_depth: 64,
        ..ServeConfig::default()
    };
    let shape = model.input();
    let sample = Tensor::full(&[shape.channels, shape.height, shape.width], 0.25);

    let mut load_points = Vec::new();
    for offered_rps in [500u64, 2_000, 8_000] {
        let requests = 300usize;
        let server = Server::start(&model, config);
        let client = server.client();
        let (tx, rx) = mpsc::channel::<(Instant, mbs_serve::Pending)>();
        let collector = thread::spawn(move || {
            let mut latencies_us: Vec<f64> = Vec::with_capacity(requests);
            while let Ok((t0, pending)) = rx.recv() {
                let r = pending.wait().expect("serve bench response");
                criterion::black_box(r);
                latencies_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
            }
            latencies_us
        });
        let interval = Duration::from_nanos(1_000_000_000 / offered_rps);
        let start = Instant::now();
        for i in 0..requests {
            let due = start + interval * i as u32;
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
            let pending = client.submit(&sample).expect("serve bench submit");
            tx.send((Instant::now(), pending)).expect("collector alive");
        }
        drop(tx);
        let mut latencies_us = collector.join().expect("collector panicked");
        let stats = server.shutdown();
        latencies_us.sort_by(f64::total_cmp);
        let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];
        load_points.push(ServeLoad {
            offered_rps,
            requests,
            p50_latency_us: pct(0.50),
            p99_latency_us: pct(0.99),
            mean_latency_us: latencies_us.iter().sum::<f64>() / latencies_us.len() as f64,
            mean_batch: stats.requests as f64 / (stats.batches.max(1)) as f64,
            batch_histogram: stats.histogram,
        });
    }
    // Overload point: non-blocking admission at 4× the top sweep rate
    // against a deliberately small queue, priorities cycling over the
    // four levels, a 20 ms deadline on every request.
    let overload = {
        use mbs_serve::SubmitOptions;
        let offered_rps = 32_000u64;
        let offered = 1_200usize;
        let server = Server::start(
            &model,
            ServeConfig {
                queue_depth: 16,
                ..config
            },
        );
        let client = server.client();
        let (tx, rx) = mpsc::channel::<(Instant, mbs_serve::Pending)>();
        let collector = thread::spawn(move || {
            let mut ok_latencies_us: Vec<f64> = Vec::new();
            while let Ok((t0, pending)) = rx.recv() {
                if let Ok(r) = pending.wait() {
                    criterion::black_box(r);
                    ok_latencies_us.push(t0.elapsed().as_nanos() as f64 / 1e3);
                }
            }
            ok_latencies_us
        });
        let interval = Duration::from_nanos(1_000_000_000 / offered_rps);
        let start = Instant::now();
        let (mut accepted, mut refused) = (0usize, 0usize);
        let mut retry_hints_us: Vec<f64> = Vec::new();
        for i in 0..offered {
            let due = start + interval * i as u32;
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
            let opts = SubmitOptions::priority((i % 4) as u8).deadline(Duration::from_millis(20));
            match client.try_submit(&sample, opts) {
                Ok(pending) => {
                    accepted += 1;
                    tx.send((Instant::now(), pending)).expect("collector alive");
                }
                Err(mbs_serve::ServeError::Overloaded { retry_after_us }) => {
                    refused += 1;
                    retry_hints_us.push(retry_after_us as f64);
                }
                Err(e) => panic!("unexpected overload-bench error: {e}"),
            }
        }
        drop(tx);
        let mut ok_latencies_us = collector.join().expect("collector panicked");
        let stats = server.shutdown();
        ok_latencies_us.sort_by(f64::total_cmp);
        let pct = |p: f64| {
            if ok_latencies_us.is_empty() {
                0.0
            } else {
                ok_latencies_us[((ok_latencies_us.len() - 1) as f64 * p) as usize]
            }
        };
        ServeOverload {
            offered_rps,
            offered,
            accepted,
            refused,
            answered_ok: ok_latencies_us.len(),
            shed: stats.shed,
            expired: stats.expired,
            p50_latency_us: pct(0.50),
            p99_latency_us: pct(0.99),
            mean_retry_after_us: if retry_hints_us.is_empty() {
                0.0
            } else {
                retry_hints_us.iter().sum::<f64>() / retry_hints_us.len() as f64
            },
        }
    };

    ServeReport {
        threads: mbs_tensor::ops::configured_threads(),
        kernel: kernel::selected().name.to_string(),
        model: net.name().to_string(),
        workers: config.workers,
        max_batch: config.max_batch,
        max_wait_us: config.max_wait_us,
        load_points,
        overload,
    }
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| ".".into());

    let mut c = Criterion::with_quick(true);
    println!("== tensor_ops (quick mode) ==");
    mbs_bench::suites::tensor_ops(&mut c);
    println!("== training_step (quick mode) ==");
    mbs_bench::suites::training_step(&mut c);
    println!("== kernel comparison (1 thread) ==");
    let kernel_comparison = kernel_comparison(&mut c);
    println!("== thread scaling (MBS_THREADS sweep) ==");
    let thread_scaling = thread_scaling(&mut c);
    println!("== train_step sweep (sub-batch x fused/unfused) ==");
    let train_step = train_steps();
    println!("== layer-level fused epilogue (L2-busting shapes) ==");
    let layer_fused = layer_fused();
    println!("== grouped vs uniform serialized step (lowered IR) ==");
    let grouped = grouped_steps();
    println!("== precision (f32 vs bf16 packed operands / storage) ==");
    let precision_tensor = precision_gemm();
    let precision_train = precision_steps();
    println!("== checkpoint save/load + training overhead ==");
    let checkpoint = checkpoint_benches();
    println!("== loader (streamed vs in-memory step, prefetch sweep) ==");
    let loader = loader_benches();
    println!("== serve (open-loop load sweep) ==");
    let serve_report = serve_section();
    let schedule = schedule_section();
    let aa_noise_ratio = aa_noise();
    let steady = steady_state();

    let means: HashMap<&str, f64> = c
        .measurements()
        .iter()
        .map(|m| (m.name.as_str(), m.mean_ns))
        .collect();
    let pairs = [
        ("conv2d_im2col", "conv2d_naive"),
        ("matmul_128", "matmul_naive_128"),
        ("matmul_256", "matmul_naive_256"),
    ];
    let speedups: Vec<Speedup> = pairs
        .iter()
        .filter_map(|&(fast, baseline)| {
            let (f, b) = (means.get(fast)?, means.get(baseline)?);
            Some(Speedup {
                fast: fast.to_string(),
                baseline: baseline.to_string(),
                ratio: b / f,
            })
        })
        .collect();
    for s in &speedups {
        println!(
            "speedup {:>24} vs {:<24} {:>6.2}x",
            s.fast, s.baseline, s.ratio
        );
    }
    for kb in &kernel_comparison {
        println!(
            "kernel {:>20} ({}) {:>12.0} ns  {:>5.2}x vs scalar{}",
            kb.kernel,
            kb.tile,
            kb.matmul_256_mean_ns,
            kb.speedup_vs_scalar,
            if kb.selected { "  [selected]" } else { "" }
        );
    }
    for ts in &thread_scaling {
        println!(
            "threads {:>14} x{:<2} {:>12.0} ns  {:>5.2}x vs 1 thread  bitwise_equal={}",
            ts.bench, ts.threads, ts.mean_ns, ts.speedup_vs_1, ts.bitwise_equal_to_1_thread
        );
    }

    for ts in &train_step {
        println!(
            "train_step {:>22} sub{:<2} fused {:>12.0} ns  unfused {:>12.0} ns  {:>5.2}x",
            ts.model, ts.sub_batch, ts.fused_best_ns, ts.unfused_best_ns, ts.speedup_fused
        );
    }
    for lf in &layer_fused {
        println!(
            "layer {:>18} {:<28} fused {:>12.0} ns  unfused {:>12.0} ns  {:>5.3}x",
            lf.op, lf.shape, lf.fused_best_ns, lf.unfused_best_ns, lf.speedup_fused
        );
    }
    for g in &grouped {
        println!(
            "grouped {:>13} batch {:<2} stash {:>11.0} ns  replay {:>11.0} ns ({:>5.2}x)  uniform(sub{}) {:>11.0} ns  {:>5.2}x",
            g.network,
            g.batch,
            g.grouped_best_ns,
            g.replay_best_ns,
            g.speedup_stash_vs_replay,
            g.uniform_sub_batch,
            g.uniform_best_ns,
            g.speedup_grouped
        );
    }
    for s in &schedule {
        let subs: Vec<usize> = s.groups.iter().map(|g| g.sub_batch).collect();
        println!(
            "schedule {:>13} {:<5} batch {:>2} buffer {:>9}: {} group(s), subs {:?}, {:.1} MiB DRAM, {:.1} KiB stash",
            s.network,
            s.config,
            s.batch,
            s.buffer_bytes,
            s.groups.len(),
            subs,
            s.dram_bytes as f64 / (1024.0 * 1024.0),
            s.stash_bytes as f64 / 1024.0
        );
    }
    for cb in &checkpoint {
        println!(
            "checkpoint {:>13} {:>8} B  save {:>10.0} ns  load {:>10.0} ns  overhead every1 {:>5.1}%  every10 {:>5.1}%",
            cb.model,
            cb.file_bytes,
            cb.save_best_ns,
            cb.load_best_ns,
            cb.overhead_pct_every_1,
            cb.overhead_pct_every_10
        );
    }
    for lb in &loader {
        println!(
            "loader {:>14} prefetch {:<2} streamed {:>10.0} ns  memory {:>10.0} ns ({:>5.3}x)  stalls {:>3}  {:>8.1} MiB/s off disk",
            lb.model,
            lb.prefetch,
            lb.streamed_step_best_ns,
            lb.memory_step_best_ns,
            lb.ratio_streamed_vs_memory,
            lb.stalls,
            lb.bytes_per_sec / (1024.0 * 1024.0)
        );
    }
    for lp in &serve_report.load_points {
        println!(
            "serve {:>12} @{:>5} rps  p50 {:>8.0} us  p99 {:>8.0} us  mean batch {:>5.2}",
            serve_report.model, lp.offered_rps, lp.p50_latency_us, lp.p99_latency_us, lp.mean_batch
        );
    }
    println!("A/A step-harness noise ratio: {aa_noise_ratio:.3} (1.0 = noise-free)");
    println!(
        "steady-state arena: {} hits, {} misses",
        steady.arena_hits, steady.arena_misses
    );

    let report = Report {
        threads: mbs_tensor::ops::configured_threads(),
        kernel: kernel::selected().name.to_string(),
        measurements: c.measurements().to_vec(),
        speedups,
        kernel_comparison,
        thread_scaling,
        precision: precision_tensor,
    };
    match mbs_bench::write_json(&out_dir, "BENCH_tensor", &report) {
        Ok(()) => println!("wrote {}", out_dir.join("BENCH_tensor.json").display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_tensor.json: {e}");
            std::process::exit(1);
        }
    }
    let train_report = TrainReport {
        threads: mbs_tensor::ops::configured_threads(),
        kernel: kernel::selected().name.to_string(),
        train_step,
        aa_noise_ratio,
        layer_fused,
        steady_state: steady,
        grouped,
        schedule,
        checkpoint,
        loader,
        precision: precision_train,
    };
    match mbs_bench::write_json(&out_dir, "BENCH_train", &train_report) {
        Ok(()) => println!("wrote {}", out_dir.join("BENCH_train.json").display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_train.json: {e}");
            std::process::exit(1);
        }
    }
    match mbs_bench::write_json(&out_dir, "BENCH_serve", &serve_report) {
        Ok(()) => println!("wrote {}", out_dir.join("BENCH_serve.json").display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }
}
