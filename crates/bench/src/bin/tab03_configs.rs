//! Regenerates paper Tab. 3 (execution configurations).
use mbs_bench::experiments::tables;

fn main() {
    print!("{}", tables::render_tab03(&tables::tab03()));
}
