//! Regenerates paper Tab. 4 (memory configurations).
use mbs_bench::experiments::tables;

fn main() {
    print!("{}", tables::render_tab04(&tables::tab04()));
}
