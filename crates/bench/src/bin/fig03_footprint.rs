//! Regenerates paper Fig. 3 (ResNet50 per-layer footprints).
use mbs_bench::experiments::fig03;

fn main() {
    let f = fig03::run();
    print!("{}", fig03::render(&f));
}
