//! Regenerates paper Fig. 14 (systolic-array utilization).
use mbs_bench::experiments::fig14;

fn main() {
    let f = fig14::run();
    print!("{}", fig14::render(&f));
}
