//! Regenerates paper Fig. 12 (memory-type sensitivity + layer breakdown).
use mbs_bench::experiments::fig12;

fn main() {
    let f = fig12::run();
    print!("{}", fig12::render(&f));
}
