//! Regenerates paper Fig. 6 (BN vs GN+MBS training). Pass --quick for a
//! seconds-scale run.
use mbs_bench::experiments::fig06::{self, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let f = fig06::run(if quick { Scale::Quick } else { Scale::Full });
    print!("{}", fig06::render(&f));
}
