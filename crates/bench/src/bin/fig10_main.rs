//! Regenerates paper Fig. 10 (time / energy / DRAM traffic per step).
use mbs_bench::experiments::fig10;

fn main() {
    let f = fig10::run();
    print!("{}", fig10::render(&f));
}
