//! Regenerates paper Fig. 5 (baseline vs MBS training flow).
use mbs_bench::experiments::fig05;

fn main() {
    let f = fig05::run();
    print!("{}", fig05::render(&f));
}
