//! Regenerates paper Fig. 13 (V100 vs WaveCore+MBS2).
use mbs_bench::experiments::fig13;

fn main() {
    let f = fig13::run();
    print!("{}", fig13::render(&f));
}
