//! Regenerates the §3 footnote-1 grouping ablation (greedy vs exact DP).
use mbs_bench::experiments::ablation;

fn main() {
    let a = ablation::run();
    print!("{}", ablation::render(&a));
}
