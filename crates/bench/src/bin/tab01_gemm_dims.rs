//! Regenerates paper Tab. 1 (im2col GEMM dimensions).
use mbs_bench::experiments::tables;

fn main() {
    print!("{}", tables::render_tab01(&tables::tab01()));
}
