//! Regenerates paper Tab. 2 (accelerator comparison).
use mbs_bench::experiments::tables;

fn main() {
    print!("{}", tables::render_tab02(&tables::tab02()));
}
