//! Regenerates paper Fig. 4 (per-node data, min iterations, MBS grouping).
use mbs_bench::experiments::fig04;

fn main() {
    let f = fig04::run();
    print!("{}", fig04::render(&f));
}
