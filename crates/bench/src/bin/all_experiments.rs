//! Runs the full experiment suite, prints every table/figure, and writes
//! JSON reports to `reports/` (used to fill EXPERIMENTS.md).
//!
//! Pass `--quick` to run the Fig. 6 training experiment at test scale.

use std::path::PathBuf;

use mbs_bench::experiments::{
    ablation, fig03, fig04, fig05, fig06, fig10, fig11, fig12, fig13, fig14, tables,
};
use mbs_bench::write_json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let dir = PathBuf::from("reports");

    let t3 = tables::tab03();
    println!("{}", tables::render_tab03(&t3));
    write_json(&dir, "tab03", &t3)?;

    let t4 = tables::tab04();
    println!("{}", tables::render_tab04(&t4));
    write_json(&dir, "tab04", &t4)?;

    let t1 = tables::tab01();
    println!("{}", tables::render_tab01(&t1));
    write_json(&dir, "tab01", &t1)?;

    let t2 = tables::tab02();
    println!("{}", tables::render_tab02(&t2));
    write_json(&dir, "tab02", &t2)?;

    let f3 = fig03::run();
    println!("{}", fig03::render(&f3));
    write_json(&dir, "fig03", &f3)?;

    let f4 = fig04::run();
    println!("{}", fig04::render(&f4));
    write_json(&dir, "fig04", &f4)?;

    let f5 = fig05::run();
    println!("{}", fig05::render(&f5));
    write_json(&dir, "fig05", &f5)?;

    let f10 = fig10::run();
    println!("{}", fig10::render(&f10));
    write_json(&dir, "fig10", &f10)?;

    let f11 = fig11::run();
    println!("{}", fig11::render(&f11));
    write_json(&dir, "fig11", &f11)?;

    let f12 = fig12::run();
    println!("{}", fig12::render(&f12));
    write_json(&dir, "fig12", &f12)?;

    let f13 = fig13::run();
    println!("{}", fig13::render(&f13));
    write_json(&dir, "fig13", &f13)?;

    let f14 = fig14::run();
    println!("{}", fig14::render(&f14));
    write_json(&dir, "fig14", &f14)?;

    let ab = ablation::run();
    println!("{}", ablation::render(&ab));
    write_json(&dir, "ablation_grouping", &ab)?;

    let scale = if quick {
        fig06::Scale::Quick
    } else {
        fig06::Scale::Full
    };
    let f6 = fig06::run(scale);
    println!("{}", fig06::render(&f6));
    write_json(&dir, "fig06", &f6)?;

    println!("JSON reports written to {}", dir.display());
    Ok(())
}
