//! Regenerates paper Fig. 11 (global buffer size sensitivity).
use mbs_bench::experiments::fig11;

fn main() {
    let f = fig11::run();
    print!("{}", fig11::render(&f));
}
