//! Child process for the crash/resume integration test (and a manual
//! demo of the train → kill → resume walkthrough in the README).
//!
//! Usage: `crash_resume <checkpoint-dir>` — trains the shared
//! [`mbs_bench::crash`] scenario with per-step checkpointing into the
//! given directory, resuming from whatever the directory already holds,
//! and prints the final epoch curve as JSON. The integration test
//! SIGKILLs this process mid-epoch and asserts a resumed run reproduces
//! the uninterrupted curve.

use std::path::PathBuf;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            eprintln!("usage: crash_resume <checkpoint-dir>");
            std::process::exit(2);
        });
    match mbs_bench::crash::run(Some(&dir)) {
        Ok(curve) => {
            println!(
                "{}",
                serde_json::to_string(&curve).expect("curve serializes")
            );
        }
        Err(e) => {
            eprintln!("crash_resume failed: {e}");
            std::process::exit(1);
        }
    }
}
