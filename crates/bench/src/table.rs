//! Minimal fixed-width table rendering for the experiment binaries.

/// A plain-text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats bytes as GB with two decimals.
pub fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

/// Formats seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

/// Formats a ratio with two decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.50".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(gb(2_500_000_000), "2.50");
        assert_eq!(ms(0.0123), "12.30");
        assert_eq!(ratio(1.234), "1.23");
    }
}
