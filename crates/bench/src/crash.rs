//! The shared crash/resume scenario behind the `crash_resume` binary and
//! the SIGKILL integration test: one fixed (network, schedule, data,
//! config) tuple, so the killed child process, the in-process resume,
//! and the uninterrupted baseline all train exactly the same job.

use std::path::Path;

use mbs_cnn::networks::toy;
use mbs_cnn::Network;
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler, Schedule};
use mbs_train::data::{generate, Dataset};
use mbs_train::training::{train_grouped, TrainConfig, TrainError};
use mbs_train::{CheckpointConfig, EpochStats};

/// The fixed crash-test job: TinyInception on 8×8 synthetic data, six
/// epochs of six steps each, under a genuinely multi-group schedule.
pub fn scenario() -> (Network, Schedule, Dataset, Dataset, TrainConfig) {
    let net = toy::tiny_inception(8, 8);
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let train_set = generate(48, 8, 0.3, 91);
    let val_set = generate(16, 8, 0.3, 92);
    let cfg = TrainConfig {
        epochs: 6,
        batch: 8,
        lr_milestones: vec![4],
        ..TrainConfig::default()
    };
    (net, schedule, train_set, val_set, cfg)
}

/// Runs the scenario, checkpointing every step into `ckpt_dir` when one
/// is given (resume enabled, so a directory with prior checkpoints
/// continues from the newest), and returns the epoch curve.
///
/// # Errors
///
/// Propagates [`TrainError`] from the training run.
pub fn run(ckpt_dir: Option<&Path>) -> Result<Vec<EpochStats>, TrainError> {
    let (net, schedule, train_set, val_set, mut cfg) = scenario();
    if let Some(dir) = ckpt_dir {
        let mut ck = CheckpointConfig::new(dir);
        ck.every_steps = 1;
        ck.keep = 4;
        cfg.checkpoint = Some(ck);
    }
    train_grouped(&net, &schedule, &train_set, &val_set, &cfg)
}
