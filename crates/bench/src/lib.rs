//! Experiment harness for the MBS reproduction: regenerates every table and
//! figure of the paper's evaluation (see DESIGN.md for the index) and backs
//! the Criterion benches.
//!
//! Each figure binary (`cargo run --release -p mbs-bench --bin fig10_main`)
//! prints the same rows/series the paper reports; `all_experiments` runs
//! the whole suite and writes JSON reports.

pub mod crash;
pub mod experiments;
pub mod suites;
pub mod table;

use std::fs;
use std::path::Path;

use serde::Serialize;

/// Writes a serializable experiment result as pretty JSON.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json<T: Serialize>(
    dir: &Path,
    name: &str,
    value: &T,
) -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value)?)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join("mbs-bench-test");
        write_json(&dir, "probe", &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(dir.join("probe.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }
}
