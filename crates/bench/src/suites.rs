//! Shared Criterion bench bodies for the tensor substrate and the training
//! step, used by both the `cargo bench` harnesses (`benches/tensor_ops.rs`,
//! `benches/training_step.rs`) and the quick-mode `bench` binary that
//! writes `BENCH_tensor.json`.
//!
//! Each suite pairs the blocked/packed kernels with their naive references
//! (`conv2d_naive`, `matmul_naive`) so one run shows the speedup the
//! blocked core delivers; shapes follow the Fig. 6 training configuration
//! (batch 16, sub-batches of 4, 8×8 inputs — plus a mid-size conv layer).

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_tensor::ops::{
    conv2d, conv2d_backward_data, conv2d_backward_weights, conv2d_naive, matmul, matmul_naive,
    Conv2dCfg,
};
use mbs_tensor::Tensor;
use mbs_train::data::generate;
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::model::MiniResNet;
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;

fn tensor(shape: &[usize], salt: usize) -> Tensor {
    let len: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len)
            .map(|v| (((v * 7 + salt) % 17) as f32 - 8.0) / 4.0)
            .collect(),
    )
}

/// Tensor substrate operators: the three conv GEMMs (fused/blocked vs
/// naive) and square GEMMs (blocked vs naive).
pub fn tensor_ops(c: &mut Criterion) {
    let cfg = Conv2dCfg::square(3, 1, 1);
    let x = tensor(&[4, 8, 16, 16], 1);
    let w = tensor(&[16, 8, 3, 3], 2);
    let dy = tensor(&[4, 16, 16, 16], 3);

    c.bench_function("conv2d_im2col", |b| b.iter(|| conv2d(&x, &w, cfg)));
    c.bench_function("conv2d_naive", |b| b.iter(|| conv2d_naive(&x, &w, cfg)));
    c.bench_function("conv2d_backward_data", |b| {
        b.iter(|| conv2d_backward_data(&dy, &w, x.shape(), cfg))
    });
    c.bench_function("conv2d_backward_weights", |b| {
        b.iter(|| conv2d_backward_weights(&x, &dy, cfg))
    });

    let a = tensor(&[128, 128], 4);
    let bm = tensor(&[128, 128], 5);
    c.bench_function("matmul_128", |b| b.iter(|| matmul(&a, &bm)));
    c.bench_function("matmul_naive_128", |b| b.iter(|| matmul_naive(&a, &bm)));

    let a2 = tensor(&[256, 256], 6);
    let b2 = tensor(&[256, 256], 7);
    c.bench_function("matmul_256", |b| b.iter(|| matmul(&a2, &b2)));
    c.bench_function("matmul_naive_256", |b| b.iter(|| matmul_naive(&a2, &b2)));
}

/// Substrate training steps — full-batch vs MBS serialized at the Fig. 6
/// configuration (batch 16, GN, sub-batches of 2 and 4).
pub fn training_step(c: &mut Criterion) {
    let d = generate(16, 8, 0.3, 55);

    c.bench_function("train_step_full_batch16", |b| {
        let mut m = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        b.iter(|| train_step_full(&mut m, &d.images, &d.labels, &mut opt))
    });

    for sub in [2usize, 4] {
        c.bench_function(&format!("train_step_mbs_sub{sub}"), |b| {
            let mut m =
                MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
            let mut opt = Sgd::new(0.05, 0.9, 1e-4);
            b.iter(|| train_step_mbs(&mut m, &d.images, &d.labels, sub, &mut opt))
        });
    }
}
