//! Fig. 4: per-node inter-layer data size, minimum sub-batch iterations,
//! and the resulting MBS layer grouping for ResNet50 (mini-batch 32).

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_core::footprint::{max_sub_batch, node_space};
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

use crate::table::TextTable;

/// One bar/point of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig04Row {
    /// Node label (CONV, POOL, RES_BLK, ...).
    pub tag: String,
    /// Node name.
    pub name: String,
    /// Per-sample inter-layer data in MB (grey bars; MBS1 semantics).
    pub data_mb_per_sample: f64,
    /// Minimum sub-batch iterations (red line).
    pub min_iterations: usize,
    /// MBS1 group index (blue line).
    pub group_mbs1: usize,
    /// MBS2 group index (inter-branch provisioning changes the grouping).
    pub group_mbs2: usize,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig04 {
    /// Mini-batch size.
    pub batch: usize,
    /// Rows in execution order.
    pub rows: Vec<Fig04Row>,
}

/// Computes the figure data.
pub fn run() -> Fig04 {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let batch = net.default_batch();
    let s1 = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    let s2 = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
    let rows = net
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let space = node_space(node, false);
            let (sub, _) = max_sub_batch(space, hw.global_buffer_bytes);
            let g1 = s1.groups().iter().position(|g| g.start <= i && i < g.end);
            let g2 = s2.groups().iter().position(|g| g.start <= i && i < g.end);
            Fig04Row {
                tag: node.tag(),
                name: node.name().to_owned(),
                data_mb_per_sample: space as f64 / 1e6,
                min_iterations: batch.div_ceil(sub.min(batch)),
                group_mbs1: g1.expect("covered") + 1,
                group_mbs2: g2.expect("covered") + 1,
            }
        })
        .collect();
    Fig04 { batch, rows }
}

/// Renders the rows.
pub fn render(f: &Fig04) -> String {
    let mut t = TextTable::new(&[
        "node",
        "tag",
        "MB/sample",
        "min iters",
        "MBS1 grp",
        "MBS2 grp",
    ]);
    for r in &f.rows {
        t.row(vec![
            r.name.clone(),
            r.tag.clone(),
            format!("{:.2}", r.data_mb_per_sample),
            r.min_iterations.to_string(),
            r.group_mbs1.to_string(),
            r.group_mbs2.to_string(),
        ]);
    }
    format!(
        "Fig. 4 — ResNet50 per-node data, min iterations, MBS grouping (batch {}):\n{}",
        f.batch,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_decrease_with_depth() {
        let f = run();
        let first = f.rows.iter().find(|r| r.tag == "RES_BLK").unwrap();
        let last = f.rows.iter().rev().find(|r| r.tag == "RES_BLK").unwrap();
        assert!(first.min_iterations > last.min_iterations);
    }

    #[test]
    fn group_ids_are_monotone() {
        let f = run();
        for w in f.rows.windows(2) {
            assert!(w[0].group_mbs1 <= w[1].group_mbs1);
            assert!(w[0].group_mbs2 <= w[1].group_mbs2);
        }
    }

    #[test]
    fn early_blocks_need_many_iterations() {
        // Paper Fig. 4: first residual blocks need ~16 iterations at 10MiB.
        let f = run();
        let first_blk = f.rows.iter().find(|r| r.tag == "RES_BLK").unwrap();
        assert!(
            (8..=32).contains(&first_blk.min_iterations),
            "{}",
            first_blk.min_iterations
        );
    }
}
