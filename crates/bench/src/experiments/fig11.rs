//! Fig. 11: ResNet50 sensitivity to the global buffer size (5–40 MiB),
//! normalized to `IL` at 5 MiB.

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_core::{ExecConfig, HardwareConfig};
use mbs_wavecore::WaveCore;

use crate::table::{ratio, TextTable};

/// The buffer sizes swept (MiB).
pub const BUFFER_MIB: [usize; 5] = [5, 10, 20, 30, 40];

/// The configurations compared.
pub const CONFIGS: [ExecConfig; 4] = [
    ExecConfig::InterLayer,
    ExecConfig::MbsFs,
    ExecConfig::Mbs1,
    ExecConfig::Mbs2,
];

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11Cell {
    /// Configuration label.
    pub config: String,
    /// Buffer size in MiB.
    pub buffer_mib: usize,
    /// Execution time normalized to IL @ 5 MiB.
    pub time_norm: f64,
    /// DRAM traffic normalized to IL @ 5 MiB.
    pub traffic_norm: f64,
}

/// The full sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// All sweep points.
    pub cells: Vec<Fig11Cell>,
}

/// Runs the sweep.
pub fn run() -> Fig11 {
    let net = resnet(50);
    let il5 = {
        let hw = HardwareConfig::default().with_global_buffer(5 * 1024 * 1024);
        WaveCore::new(hw).simulate(&net, ExecConfig::InterLayer)
    };
    let mut cells = Vec::new();
    for cfg in CONFIGS {
        for mib in BUFFER_MIB {
            let hw = HardwareConfig::default().with_global_buffer(mib * 1024 * 1024);
            let r = WaveCore::new(hw).simulate(&net, cfg);
            cells.push(Fig11Cell {
                config: cfg.label().to_owned(),
                buffer_mib: mib,
                time_norm: r.time_s / il5.time_s,
                traffic_norm: r.dram_bytes as f64 / il5.dram_bytes as f64,
            });
        }
    }
    Fig11 { cells }
}

/// Renders the sweep.
pub fn render(f: &Fig11) -> String {
    let mut t = TextTable::new(&["config", "buffer MiB", "time (norm)", "traffic (norm)"]);
    for c in &f.cells {
        t.row(vec![
            c.config.clone(),
            c.buffer_mib.to_string(),
            ratio(c.time_norm),
            ratio(c.traffic_norm),
        ]);
    }
    format!(
        "Fig. 11 — ResNet50 sensitivity to global buffer size \
         (normalized to IL @ 5MiB):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(f: &'a Fig11, cfg: &str, mib: usize) -> &'a Fig11Cell {
        f.cells
            .iter()
            .find(|c| c.config == cfg && c.buffer_mib == mib)
            .unwrap()
    }

    #[test]
    fn mbs_is_insensitive_to_buffer_size() {
        // Paper: MBS1/MBS2 vary little from 5 to 40 MiB while IL varies a
        // lot.
        let f = run();
        let il_swing = get(&f, "IL", 5).traffic_norm - get(&f, "IL", 40).traffic_norm;
        let mbs_swing = get(&f, "MBS2", 5).traffic_norm - get(&f, "MBS2", 40).traffic_norm;
        assert!(il_swing > 2.0 * mbs_swing, "il {il_swing} mbs {mbs_swing}");
    }

    #[test]
    fn mbs2_at_5mib_beats_il_at_40mib() {
        // The paper's headline for this figure.
        let f = run();
        assert!(get(&f, "MBS2", 5).traffic_norm < get(&f, "IL", 40).traffic_norm);
        assert!(get(&f, "MBS2", 5).time_norm < get(&f, "IL", 40).time_norm);
    }

    #[test]
    fn traffic_decreases_with_buffer() {
        let f = run();
        for cfg in ["IL", "MBS-FS", "MBS1", "MBS2"] {
            for w in BUFFER_MIB.windows(2) {
                let a = get(&f, cfg, w[0]).traffic_norm;
                let b = get(&f, cfg, w[1]).traffic_norm;
                assert!(b <= a + 1e-9, "{cfg}: {a} -> {b} at {w:?}");
            }
        }
    }
}
