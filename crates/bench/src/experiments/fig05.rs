//! Fig. 5: the baseline vs. MBS training flow for ResNet50 — group
//! boundaries and the sub-batch size sequence of each group.

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

/// One scheduled group.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05Group {
    /// 1-based group index.
    pub index: usize,
    /// First and last node names.
    pub from: String,
    /// Last node name.
    pub to: String,
    /// Iterations.
    pub iterations: usize,
    /// The per-iteration sub-batch sizes (e.g. `3,3,...,2`).
    pub sizes: Vec<usize>,
}

/// The figure: MBS2 groups plus the printable schedules.
#[derive(Debug, Clone, Serialize)]
pub struct Fig05 {
    /// Mini-batch size.
    pub batch: usize,
    /// MBS2 groups.
    pub groups: Vec<Fig05Group>,
    /// Human-readable schedule text (baseline and MBS2).
    pub description: String,
}

/// Computes the figure data.
pub fn run() -> Fig05 {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let baseline = MbsScheduler::new(&net, &hw, ExecConfig::Baseline).schedule();
    let mbs = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
    let groups = mbs
        .groups()
        .iter()
        .enumerate()
        .map(|(i, g)| Fig05Group {
            index: i + 1,
            from: net.nodes()[g.start].name().to_owned(),
            to: net.nodes()[g.end - 1].name().to_owned(),
            iterations: g.iterations,
            sizes: g.sub_batch_sizes(mbs.batch()),
        })
        .collect();
    let description = format!(
        "Original CNN graph (conventional flow):\n{}\nMini-Batch Serialization:\n{}",
        baseline.describe(&net),
        mbs.describe(&net)
    );
    Fig05 {
        batch: mbs.batch(),
        groups,
        description,
    }
}

/// Renders the figure.
pub fn render(f: &Fig05) -> String {
    format!(
        "Fig. 5 — ResNet50 training flow (batch {}):\n{}",
        f.batch, f.description
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_sum_to_batch() {
        let f = run();
        for g in &f.groups {
            let total: usize = g.sizes.iter().sum();
            assert_eq!(total, f.batch, "group {}", g.index);
            assert_eq!(g.sizes.len(), g.iterations);
        }
    }

    #[test]
    fn groups_match_paper_shape() {
        // Paper Fig. 5 shows 4 groups with sub-batches growing 3 -> 16; our
        // grouping lands in the same regime.
        let f = run();
        assert!(
            (2..=8).contains(&f.groups.len()),
            "{} groups",
            f.groups.len()
        );
        let first = f.groups.first().unwrap().sizes[0];
        let last = f.groups.last().unwrap().sizes[0];
        assert!(last > first, "sub-batches should grow: {first} -> {last}");
    }
}
