//! Fig. 3: per-layer inter-layer data and parameter sizes of ResNet50
//! (mini-batch 32, 16-bit words), sorted by inter-layer data size, plus the
//! "only 9.3% reusable with 10 MiB" observation.

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_cnn::stats::{layer_footprints, reuse_summary, LayerFootprint, ReuseSummary};

use crate::table::TextTable;

/// The Fig. 3 data series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig03 {
    /// Mini-batch size used.
    pub batch: usize,
    /// Per-layer footprints sorted by inter-layer data size (descending).
    pub layers: Vec<LayerFootprint>,
    /// Reusable fraction under a 10 MiB buffer.
    pub reuse: ReuseSummary,
}

/// Computes the figure data.
pub fn run() -> Fig03 {
    let net = resnet(50);
    let batch = 32;
    let mut layers = layer_footprints(&net, batch);
    layers.sort_by_key(|l| std::cmp::Reverse(l.inter_layer_bytes));
    let reuse = reuse_summary(&net, batch, 10 * 1024 * 1024);
    Fig03 {
        batch,
        layers,
        reuse,
    }
}

/// Renders the series like the paper's figure (top rows + summary).
pub fn render(f: &Fig03) -> String {
    let mut t = TextTable::new(&["layer", "type", "inter-layer MB", "params MB"]);
    for l in f.layers.iter().take(25) {
        t.row(vec![
            l.name.clone(),
            l.kind.clone(),
            format!("{:.1}", l.inter_layer_bytes as f64 / 1e6),
            format!("{:.2}", l.param_bytes as f64 / 1e6),
        ]);
    }
    format!(
        "Fig. 3 — ResNet50 per-layer footprints (batch {}, 16b), top 25 of {}:\n{}\n\
         Inter-layer data reusable with a 10MiB buffer: {:.1}% \
         (paper: 9.3%)\n",
        f.batch,
        f.layers.len(),
        t.render(),
        f.reuse.reusable_pct
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_sorted_descending() {
        let f = run();
        for w in f.layers.windows(2) {
            assert!(w[0].inter_layer_bytes >= w[1].inter_layer_bytes);
        }
    }

    #[test]
    fn reuse_fraction_is_small_like_paper() {
        let f = run();
        assert!(f.reuse.reusable_pct < 25.0, "{}", f.reuse.reusable_pct);
        assert!(f.reuse.reusable_pct > 1.0);
    }

    #[test]
    fn largest_layer_is_tens_of_mb() {
        let f = run();
        let top = f.layers[0].inter_layer_bytes as f64 / 1e6;
        // Paper's Fig. 3 y-axis peaks near 90-100 MB.
        assert!((40.0..140.0).contains(&top), "top layer {top} MB");
    }

    #[test]
    fn render_mentions_the_buffer() {
        let f = run();
        assert!(render(&f).contains("10MiB"));
    }
}
