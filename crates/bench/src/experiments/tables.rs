//! Tables 1-4 of the paper.

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_cnn::LayerKind;
use mbs_core::{ExecConfig, MemoryConfig, MemoryKind};
use mbs_wavecore::area::{comparison_table, AcceleratorSpec};
use mbs_wavecore::gemm::{gemm_dims, TrainingPhase};

use crate::table::TextTable;

/// Tab. 1: GEMM dimensions for sample ResNet50 convolutions in the three
/// training phases.
#[derive(Debug, Clone, Serialize)]
pub struct Tab01Row {
    /// Layer name.
    pub layer: String,
    /// Phase name.
    pub phase: String,
    /// Gh, Gw, K.
    pub dims: (usize, usize, usize),
}

/// Computes Tab. 1 for a few representative convolutions at sub-batch 8.
pub fn tab01() -> Vec<Tab01Row> {
    let net = resnet(50);
    let mut rows = Vec::new();
    let convs: Vec<_> = net
        .layers()
        .filter(|l| matches!(l.kind, LayerKind::Conv { .. }))
        .collect();
    // First, a middle, and a late convolution.
    for layer in [convs[0], convs[convs.len() / 2], convs[convs.len() - 1]] {
        for phase in TrainingPhase::all() {
            let d = gemm_dims(layer, phase, 8).expect("conv has dims");
            rows.push(Tab01Row {
                layer: layer.name.clone(),
                phase: format!("{phase:?}"),
                dims: (d.gh, d.gw, d.k),
            });
        }
    }
    rows
}

/// Renders Tab. 1.
pub fn render_tab01(rows: &[Tab01Row]) -> String {
    let mut t = TextTable::new(&["layer", "phase", "Gh", "Gw", "K"]);
    for r in rows {
        t.row(vec![
            r.layer.clone(),
            r.phase.clone(),
            r.dims.0.to_string(),
            r.dims.1.to_string(),
            r.dims.2.to_string(),
        ]);
    }
    format!(
        "Tab. 1 — im2col GEMM dimensions per training phase (sub-batch 8):\n{}",
        t.render()
    )
}

/// Tab. 2: the accelerator comparison (computed WaveCore + published
/// peers).
pub fn tab02() -> Vec<AcceleratorSpec> {
    comparison_table()
}

/// Renders Tab. 2.
pub fn render_tab02(rows: &[AcceleratorSpec]) -> String {
    let mut t = TextTable::new(&[
        "device",
        "nm",
        "die mm2",
        "GHz",
        "TOPS",
        "format",
        "peak W",
        "buffers MiB",
    ]);
    for r in rows {
        let opt = |v: f64, fmt: &dyn Fn(f64) -> String| {
            if v == 0.0 {
                "N/A".to_owned()
            } else {
                fmt(v)
            }
        };
        t.row(vec![
            r.name.clone(),
            if r.technology_nm == 0 {
                "N/A".into()
            } else {
                r.technology_nm.to_string()
            },
            opt(r.die_area_mm2, &|v| format!("{v:.1}")),
            format!("{:.2}", r.clock_ghz),
            format!("{:.0}", r.tops),
            r.format.clone(),
            opt(r.peak_power_w, &|v| format!("{v:.0}")),
            opt(r.on_chip_mib, &|v| format!("{v:.0}")),
        ]);
    }
    format!("Tab. 2 — accelerator comparison:\n{}", t.render())
}

/// Tab. 3: execution configuration descriptions.
pub fn tab03() -> Vec<(String, String)> {
    ExecConfig::all()
        .into_iter()
        .map(|c| (c.label().to_owned(), c.description().to_owned()))
        .collect()
}

/// Renders Tab. 3.
pub fn render_tab03(rows: &[(String, String)]) -> String {
    let mut t = TextTable::new(&["configuration", "description"]);
    for (k, v) in rows {
        t.row(vec![k.clone(), v.clone()]);
    }
    format!("Tab. 3 — evaluation configurations:\n{}", t.render())
}

/// Tab. 4: memory configurations.
pub fn tab04() -> Vec<MemoryConfig> {
    [
        MemoryKind::Hbm2,
        MemoryKind::Hbm2X2,
        MemoryKind::Gddr5,
        MemoryKind::Lpddr4,
    ]
    .into_iter()
    .map(MemoryConfig::preset)
    .collect()
}

/// Renders Tab. 4.
pub fn render_tab04(rows: &[MemoryConfig]) -> String {
    let mut t = TextTable::new(&[
        "memory",
        "GiB/s per chip",
        "chips",
        "total BW GiB/s",
        "capacity GiB",
    ]);
    for r in rows {
        t.row(vec![
            format!("{:?}", r.kind),
            format!("{:.1}", r.per_chip_gib_s),
            r.chips.to_string(),
            format!("{:.1}", r.total_bw_gib_s()),
            format!("{:.0}", r.total_capacity_gib()),
        ]);
    }
    format!("Tab. 4 — off-chip memory configurations:\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab01_weight_gradient_swaps_gh_and_k() {
        let rows = tab01();
        for chunk in rows.chunks(3) {
            let fwd = &chunk[0];
            let wg = &chunk[2];
            assert_eq!(fwd.dims.0, wg.dims.2, "{}", fwd.layer);
            assert_eq!(fwd.dims.2, wg.dims.0, "{}", fwd.layer);
            assert_eq!(fwd.dims.1, wg.dims.1, "{}", fwd.layer);
        }
    }

    #[test]
    fn tab02_wavecore_matches_paper_numbers() {
        let rows = tab02();
        let wc = rows.iter().find(|r| r.name == "WaveCore").unwrap();
        assert!((wc.die_area_mm2 - 534.0).abs() < 1.0);
        assert!((wc.peak_power_w - 56.0).abs() < 1.5);
    }

    #[test]
    fn tab03_has_six_configs() {
        assert_eq!(tab03().len(), 6);
    }

    #[test]
    fn tab04_total_bandwidths() {
        let rows = tab04();
        let bw: Vec<f64> = rows.iter().map(MemoryConfig::total_bw_gib_s).collect();
        assert_eq!(bw, vec![300.0, 600.0, 384.0, 239.2]);
    }
}
