//! One module per paper table/figure; each exposes `run()` returning a
//! serializable result and `render()` producing the printable rows.

pub mod ablation;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod tables;
