//! Fig. 14: systolic-array utilization of conv/FC layers per configuration
//! (isolated from memory bandwidth).

use serde::Serialize;

use mbs_cnn::networks::evaluation_suite;
use mbs_core::{ExecConfig, HardwareConfig};
use mbs_wavecore::WaveCore;

use crate::table::TextTable;

/// The configurations shown in the figure.
pub const CONFIGS: [ExecConfig; 5] = [
    ExecConfig::Baseline,
    ExecConfig::ArchOpt,
    ExecConfig::MbsFs,
    ExecConfig::Mbs1,
    ExecConfig::Mbs2,
];

/// Utilization per configuration for one network.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Row {
    /// Network name (or `AVG`).
    pub network: String,
    /// Utilization per configuration, in [`CONFIGS`] order.
    pub utilization: Vec<f64>,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14 {
    /// One row per network plus the average row.
    pub rows: Vec<Fig14Row>,
}

/// Computes utilization (the simulator's utilization metric is already
/// bandwidth-independent, matching the paper's unlimited-BW methodology).
pub fn run() -> Fig14 {
    let wc = WaveCore::new(HardwareConfig::default());
    let mut rows: Vec<Fig14Row> = evaluation_suite()
        .into_iter()
        .map(|net| {
            let utilization = CONFIGS
                .iter()
                .map(|&c| wc.simulate(&net, c).utilization)
                .collect();
            Fig14Row {
                network: net.name().to_owned(),
                utilization,
            }
        })
        .collect();
    let avg: Vec<f64> = (0..CONFIGS.len())
        .map(|i| rows.iter().map(|r| r.utilization[i]).sum::<f64>() / rows.len() as f64)
        .collect();
    rows.push(Fig14Row {
        network: "AVG".to_owned(),
        utilization: avg,
    });
    Fig14 { rows }
}

/// Renders the utilization table.
pub fn render(f: &Fig14) -> String {
    let mut header = vec!["network"];
    let labels: Vec<&str> = CONFIGS.iter().map(|c| c.label()).collect();
    header.extend(&labels);
    let mut t = TextTable::new(&header);
    for r in &f.rows {
        let mut row = vec![r.network.clone()];
        row.extend(r.utilization.iter().map(|u| format!("{u:.3}")));
        t.row(row);
    }
    format!(
        "Fig. 14 — systolic array utilization (conv/FC layers):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn avg(f: &Fig14, cfg: ExecConfig) -> f64 {
        let i = CONFIGS.iter().position(|&c| c == cfg).unwrap();
        f.rows.last().unwrap().utilization[i]
    }

    #[test]
    fn average_utilizations_match_paper_bands() {
        let f = run();
        // Paper: Baseline 53.8%, ArchOpt 81.5%, MBS-FS 66.7%, MBS1/2 78.6%.
        assert!((0.40..0.65).contains(&avg(&f, ExecConfig::Baseline)));
        assert!((0.65..0.92).contains(&avg(&f, ExecConfig::ArchOpt)));
        assert!(avg(&f, ExecConfig::MbsFs) < avg(&f, ExecConfig::ArchOpt));
        assert!(avg(&f, ExecConfig::Mbs1) > avg(&f, ExecConfig::MbsFs));
    }

    #[test]
    fn mbs_regains_most_of_archopt_utilization() {
        // Paper: MBS1/2 land within ~3% of full-mini-batch ArchOpt.
        let f = run();
        let gap = avg(&f, ExecConfig::ArchOpt) - avg(&f, ExecConfig::Mbs2);
        assert!(gap < 0.10, "gap {gap}");
    }

    #[test]
    fn has_one_row_per_network_plus_average() {
        let f = run();
        assert_eq!(f.rows.len(), 7);
        assert_eq!(f.rows.last().unwrap().network, "AVG");
    }
}
