//! Fig. 12: ResNet50 training-time sensitivity to the memory technology,
//! with the execution-time breakdown by layer type. Per the paper, this
//! experiment trains 64 samples per core (the off-package memories offer
//! the capacity for it).

use serde::Serialize;

use mbs_cnn::networks::resnet;
use mbs_core::{ExecConfig, HardwareConfig, MemoryKind};
use mbs_wavecore::WaveCore;

use crate::table::{ms, ratio, TextTable};

/// The memory systems swept.
pub const MEMORIES: [MemoryKind; 3] = [MemoryKind::Hbm2X2, MemoryKind::Gddr5, MemoryKind::Lpddr4];

/// The configurations compared.
pub const CONFIGS: [ExecConfig; 4] = [
    ExecConfig::Baseline,
    ExecConfig::ArchOpt,
    ExecConfig::InterLayer,
    ExecConfig::Mbs2,
];

/// One (config, memory) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Cell {
    /// Configuration label.
    pub config: String,
    /// Memory kind.
    pub memory: String,
    /// Step time in seconds.
    pub time_s: f64,
    /// Speedup normalized to Baseline @ HBM2×2.
    pub speedup: f64,
    /// Execution time by layer-type tag.
    pub time_by_type: Vec<(String, f64)>,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// Per-core batch used (64 per the paper).
    pub batch_per_core: usize,
    /// All cells.
    pub cells: Vec<Fig12Cell>,
}

/// Runs the sweep.
pub fn run() -> Fig12 {
    let net = resnet(50);
    let batch = 64;
    let base = WaveCore::new(HardwareConfig::default().with_memory(MemoryKind::Hbm2X2))
        .simulate_with_batch(&net, ExecConfig::Baseline, batch);
    let mut cells = Vec::new();
    for cfg in CONFIGS {
        for kind in MEMORIES {
            let hw = HardwareConfig::default().with_memory(kind);
            let r = WaveCore::new(hw).simulate_with_batch(&net, cfg, batch);
            cells.push(Fig12Cell {
                config: cfg.label().to_owned(),
                memory: format!("{kind:?}"),
                time_s: r.time_s,
                speedup: base.time_s / r.time_s,
                time_by_type: r.time_by_type(),
            });
        }
    }
    Fig12 {
        batch_per_core: batch,
        cells,
    }
}

/// Renders the sweep with the layer-type breakdown.
pub fn render(f: &Fig12) -> String {
    let mut t = TextTable::new(&[
        "config", "memory", "ms", "speedup", "conv", "fc", "norm", "pool", "sum", "other",
    ]);
    for c in &f.cells {
        let part = |tag: &str| -> f64 {
            c.time_by_type
                .iter()
                .filter(|(t, _)| t == tag)
                .map(|(_, v)| *v)
                .sum()
        };
        let known = ["conv", "fc", "norm", "pool", "sum"];
        let other: f64 = c
            .time_by_type
            .iter()
            .filter(|(t, _)| !known.contains(&t.as_str()))
            .map(|(_, v)| *v)
            .sum();
        t.row(vec![
            c.config.clone(),
            c.memory.clone(),
            ms(c.time_s),
            ratio(c.speedup),
            ms(part("conv")),
            ms(part("fc")),
            ms(part("norm")),
            ms(part("pool")),
            ms(part("sum")),
            ms(other),
        ]);
    }
    format!(
        "Fig. 12 — ResNet50 sensitivity to memory type (batch {}/core, times in ms, \
         speedup vs Baseline @ HBM2x2):\n{}",
        f.batch_per_core,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(f: &'a Fig12, cfg: &str, mem: &str) -> &'a Fig12Cell {
        f.cells
            .iter()
            .find(|c| c.config == cfg && c.memory == mem)
            .unwrap()
    }

    #[test]
    fn mbs2_is_robust_to_cheap_memory() {
        let f = run();
        // Paper: Baseline loses 39% moving HBM2x2 -> LPDDR4; MBS2 loses
        // <15%.
        let base_drop = get(&f, "Baseline", "Lpddr4").time_s / get(&f, "Baseline", "Hbm2X2").time_s;
        let mbs_drop = get(&f, "MBS2", "Lpddr4").time_s / get(&f, "MBS2", "Hbm2X2").time_s;
        assert!(base_drop > 1.2, "baseline drop {base_drop}");
        assert!(mbs_drop < 1.20, "mbs2 drop {mbs_drop}");
    }

    #[test]
    fn mbs2_on_lpddr4_beats_baseline_on_hbm2x2() {
        // The paper's headline: 1.24 speedup.
        let f = run();
        let s = get(&f, "MBS2", "Lpddr4").speedup;
        assert!(s > 1.0, "speedup {s}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let f = run();
        for c in &f.cells {
            let sum: f64 = c.time_by_type.iter().map(|(_, v)| v).sum();
            assert!((sum - c.time_s).abs() < 1e-9, "{} {}", c.config, c.memory);
        }
    }

    #[test]
    fn norm_time_shrinks_under_mbs() {
        let f = run();
        let norm = |cell: &Fig12Cell| -> f64 {
            cell.time_by_type
                .iter()
                .filter(|(t, _)| t == "norm")
                .map(|(_, v)| *v)
                .sum()
        };
        let base = norm(get(&f, "Baseline", "Hbm2X2"));
        let mbs = norm(get(&f, "MBS2", "Hbm2X2"));
        // MBS removes the transfer reads/writes but the backward reload of
        // the stored norm input still pays DRAM, so ~2x is the ceiling.
        assert!(mbs < base * 0.6, "norm time {base} -> {mbs}");
    }
}
