//! Fig. 13: WaveCore + MBS2 (various memory systems) vs. an NVIDIA V100
//! training the same per-chip mini-batch.

use serde::Serialize;

use mbs_cnn::networks::{inception_v3, resnet};
use mbs_core::{ExecConfig, HardwareConfig, MemoryKind};
use mbs_wavecore::{GpuModel, WaveCore};

use crate::table::{ms, ratio, TextTable};

/// Memory systems compared (paper order: HBM2×2, GDDR5, HBM2, LPDDR4).
pub const MEMORIES: [MemoryKind; 4] = [
    MemoryKind::Hbm2X2,
    MemoryKind::Gddr5,
    MemoryKind::Hbm2,
    MemoryKind::Lpddr4,
];

/// One (network, memory) comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Cell {
    /// Network name.
    pub network: String,
    /// WaveCore memory kind.
    pub memory: String,
    /// WaveCore + MBS2 step time in seconds.
    pub wavecore_s: f64,
    /// Modeled V100 step time in seconds.
    pub v100_s: f64,
    /// `v100 / wavecore` (paper's speedup annotation).
    pub speedup: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    /// All comparisons.
    pub cells: Vec<Fig13Cell>,
}

/// Runs the comparison.
pub fn run() -> Fig13 {
    let gpu = GpuModel::v100();
    let nets = [resnet(50), resnet(101), resnet(152), inception_v3()];
    let mut cells = Vec::new();
    for net in &nets {
        let chip_batch = net.default_batch() * 2; // V100 trains the whole chip batch
        let v100_s = gpu.step_time(net, chip_batch);
        for kind in MEMORIES {
            let hw = HardwareConfig::default().with_memory(kind);
            let r = WaveCore::new(hw).simulate(net, ExecConfig::Mbs2);
            cells.push(Fig13Cell {
                network: net.name().to_owned(),
                memory: format!("{kind:?}"),
                wavecore_s: r.time_s,
                v100_s,
                speedup: v100_s / r.time_s,
            });
        }
    }
    Fig13 { cells }
}

/// Renders the comparison.
pub fn render(f: &Fig13) -> String {
    let mut t = TextTable::new(&["network", "memory", "WaveCore ms", "V100 ms", "speedup"]);
    for c in &f.cells {
        t.row(vec![
            c.network.clone(),
            c.memory.clone(),
            ms(c.wavecore_s),
            ms(c.v100_s),
            ratio(c.speedup),
        ]);
    }
    format!(
        "Fig. 13 — V100 vs WaveCore+MBS2 (speedup = V100 time / WaveCore time):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wavecore_beats_v100_on_all_memories() {
        // Paper: 1.06-1.27 across networks and memories.
        let f = run();
        for c in &f.cells {
            assert!(
                (1.0..1.8).contains(&c.speedup),
                "{} {}: {}",
                c.network,
                c.memory,
                c.speedup
            );
        }
    }

    #[test]
    fn gap_grows_with_network_depth() {
        let f = run();
        let get = |net: &str| -> f64 {
            f.cells
                .iter()
                .find(|c| c.network == net && c.memory == "Hbm2X2")
                .unwrap()
                .speedup
        };
        assert!(get("ResNet152") > get("ResNet50"));
    }

    #[test]
    fn faster_memory_helps_wavecore() {
        let f = run();
        let get = |mem: &str| -> f64 {
            f.cells
                .iter()
                .find(|c| c.network == "ResNet50" && c.memory == mem)
                .unwrap()
                .wavecore_s
        };
        assert!(get("Hbm2X2") <= get("Lpddr4"));
    }
}
