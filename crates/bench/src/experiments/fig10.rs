//! Fig. 10: execution time, energy, and DRAM traffic per training step for
//! the six evaluated CNNs under all six execution configurations.

use serde::Serialize;

use mbs_cnn::networks::evaluation_suite;
use mbs_core::{ExecConfig, HardwareConfig};
use mbs_wavecore::WaveCore;

use crate::table::{gb, ms, ratio, TextTable};

/// One (network, config) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Cell {
    /// Execution configuration.
    pub config: String,
    /// Per-step time in seconds.
    pub time_s: f64,
    /// Speedup vs Baseline.
    pub speedup_vs_baseline: f64,
    /// Speedup vs ArchOpt.
    pub speedup_vs_archopt: f64,
    /// Per-step energy in joules.
    pub energy_j: f64,
    /// Energy normalized to Baseline.
    pub energy_vs_baseline: f64,
    /// Chip DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// Traffic normalized to ArchOpt.
    pub traffic_vs_archopt: f64,
}

/// All configurations for one network.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Network {
    /// Network name.
    pub network: String,
    /// Per-core batch.
    pub batch_per_core: usize,
    /// Cells in `ExecConfig::all()` order.
    pub cells: Vec<Fig10Cell>,
}

/// The full figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// One entry per evaluated network.
    pub networks: Vec<Fig10Network>,
}

/// Simulates every (network, config) pair on the default WaveCore.
pub fn run() -> Fig10 {
    let wc = WaveCore::new(HardwareConfig::default());
    let networks = evaluation_suite()
        .into_iter()
        .map(|net| {
            let reports: Vec<_> = ExecConfig::all()
                .into_iter()
                .map(|c| wc.simulate(&net, c))
                .collect();
            let base_t = reports[0].time_s;
            let arch_t = reports[1].time_s;
            let base_e = reports[0].energy_j();
            let arch_d = reports[1].dram_bytes as f64;
            let cells = reports
                .iter()
                .map(|r| Fig10Cell {
                    config: r.config.label().to_owned(),
                    time_s: r.time_s,
                    speedup_vs_baseline: base_t / r.time_s,
                    speedup_vs_archopt: arch_t / r.time_s,
                    energy_j: r.energy_j(),
                    energy_vs_baseline: r.energy_j() / base_e,
                    dram_bytes: r.dram_bytes,
                    traffic_vs_archopt: r.dram_bytes as f64 / arch_d,
                })
                .collect();
            Fig10Network {
                network: net.name().to_owned(),
                batch_per_core: net.default_batch(),
                cells,
            }
        })
        .collect();
    Fig10 { networks }
}

/// Renders the three sub-figures as tables.
pub fn render(f: &Fig10) -> String {
    let mut out = String::new();
    out.push_str("Fig. 10a — execution time per training step:\n");
    let mut t = TextTable::new(&["network", "config", "ms", "vs Base", "vs ArchOpt"]);
    for n in &f.networks {
        for c in &n.cells {
            t.row(vec![
                n.network.clone(),
                c.config.clone(),
                ms(c.time_s),
                ratio(c.speedup_vs_baseline),
                ratio(c.speedup_vs_archopt),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nFig. 10b — energy per training step:\n");
    let mut t = TextTable::new(&["network", "config", "J", "vs Base"]);
    for n in &f.networks {
        for c in &n.cells {
            t.row(vec![
                n.network.clone(),
                c.config.clone(),
                format!("{:.2}", c.energy_j),
                ratio(c.energy_vs_baseline),
            ]);
        }
    }
    out.push_str(&t.render());

    out.push_str("\nFig. 10c — DRAM traffic per training step:\n");
    let mut t = TextTable::new(&["network", "config", "GB", "vs ArchOpt"]);
    for n in &f.networks {
        for c in &n.cells {
            t.row(vec![
                n.network.clone(),
                c.config.clone(),
                gb(c.dram_bytes),
                ratio(c.traffic_vs_archopt),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell<'a>(f: &'a Fig10, net: &str, cfg: &str) -> &'a Fig10Cell {
        f.networks
            .iter()
            .find(|n| n.network == net)
            .unwrap()
            .cells
            .iter()
            .find(|c| c.config == cfg)
            .unwrap()
    }

    #[test]
    fn headline_claims_hold() {
        let f = run();
        // §6 summary: MBS2 cuts deep-CNN DRAM traffic by 71-78% and
        // improves performance 36-66% — we accept the same regime.
        for net in [
            "ResNet50",
            "ResNet101",
            "ResNet152",
            "InceptionV3",
            "InceptionV4",
        ] {
            let m = cell(&f, net, "MBS2");
            assert!(
                m.traffic_vs_archopt < 0.45,
                "{net} MBS2 traffic {}",
                m.traffic_vs_archopt
            );
            assert!(
                m.speedup_vs_archopt > 1.25,
                "{net} MBS2 speedup {}",
                m.speedup_vs_archopt
            );
            assert!(
                m.energy_vs_baseline < 0.85,
                "{net} MBS2 energy {}",
                m.energy_vs_baseline
            );
        }
    }

    #[test]
    fn alexnet_fs_pathology() {
        let f = run();
        let fs = cell(&f, "AlexNet", "MBS-FS");
        assert!(fs.traffic_vs_archopt > 1.4, "{}", fs.traffic_vs_archopt);
        assert!(fs.speedup_vs_baseline < 1.0, "{}", fs.speedup_vs_baseline);
        // But proper grouping still helps AlexNet a little (paper: 1.07).
        let m1 = cell(&f, "AlexNet", "MBS1");
        assert!(m1.speedup_vs_archopt > 1.0, "{}", m1.speedup_vs_archopt);
    }

    #[test]
    fn archopt_speedup_band() {
        // Paper: 9-28% over Baseline across the suite.
        let f = run();
        for n in &f.networks {
            let a = n.cells.iter().find(|c| c.config == "ArchOpt").unwrap();
            assert!(
                (1.02..1.6).contains(&a.speedup_vs_baseline),
                "{} archopt {}",
                n.network,
                a.speedup_vs_baseline
            );
        }
    }
}
