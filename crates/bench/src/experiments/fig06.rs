//! Fig. 6: training with BN vs GN+MBS — validation error curves and
//! pre-activation means — plus the numerical-equivalence check that
//! underpins MBS's correctness claim.
//!
//! Scaled-down substitution (see DESIGN.md): the paper trains ResNet50 on
//! ImageNet for 90 epochs on 4 GPUs; we train the same *algorithm* (a
//! residual CNN with the same normalization choices and the same MBS
//! serialized executor) on a seeded synthetic texture-classification task.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use mbs_train::data::{generate, Dataset};
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::model::MiniResNet;
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;
use mbs_train::training::{train, EpochStats, TrainConfig};
use mbs_train::Module;

use crate::table::TextTable;

/// Serializable epoch point.
#[derive(Debug, Clone, Serialize)]
pub struct Point {
    /// Epoch.
    pub epoch: usize,
    /// Validation error %.
    pub val_error_pct: f64,
    /// Mean of the first normalization layer's output.
    pub preact_first: f32,
    /// Mean of the last normalization layer's output.
    pub preact_last: f32,
}

impl From<&EpochStats> for Point {
    fn from(e: &EpochStats) -> Self {
        Self {
            epoch: e.epoch,
            val_error_pct: e.val_error_pct,
            preact_first: e.preact_first,
            preact_last: e.preact_last,
        }
    }
}

/// The full experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig06 {
    /// BN, conventionally propagated.
    pub bn: Vec<Point>,
    /// GN propagated with the MBS serialized executor.
    pub gn_mbs: Vec<Point>,
    /// No normalization (the paper's divergent pre-activation case).
    pub no_norm: Vec<Point>,
    /// Max parameter difference between full-batch GN and GN+MBS after
    /// several identical training steps (the §3 equivalence claim).
    pub equivalence_max_param_diff: f32,
    /// Final validation errors (BN, GN+MBS).
    pub final_errors: (f64, f64),
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale run for tests.
    Quick,
    /// The full (still CPU-friendly) run used for EXPERIMENTS.md.
    Full,
}

/// Runs the experiment at the given scale.
pub fn run(scale: Scale) -> Fig06 {
    // Noise level 1.1 makes the texture classes overlap enough that the
    // error decays over tens of epochs instead of collapsing immediately
    // (mirroring the paper's 90-epoch ImageNet curves at our scale).
    let (n_train, n_val, size, epochs, milestones) = match scale {
        Scale::Quick => (96, 48, 8, 8, vec![5]),
        Scale::Full => (320, 160, 10, 30, vec![18, 26]),
    };
    let noise = match scale {
        Scale::Quick => 0.4,
        Scale::Full => 1.1,
    };
    let train_set = generate(n_train, size, noise, 101);
    let val_set = generate(n_val, size, noise, 202);

    let cfg = |sub: Option<usize>| TrainConfig {
        epochs,
        batch: 16,
        sub_batch: sub,
        base_lr: 0.05,
        lr_milestones: milestones.clone(),
        momentum: 0.9,
        weight_decay: 1e-4,
        blocks_per_stage: 1,
        seed: 1234,
        ..TrainConfig::default()
    };

    let bn = train(NormChoice::Batch, &train_set, &val_set, &cfg(None));
    let gn_mbs = train(NormChoice::Group(4), &train_set, &val_set, &cfg(Some(4)));
    let no_norm = train(NormChoice::None, &train_set, &val_set, &cfg(None));

    let equivalence = equivalence_check(&train_set);
    let final_errors = (
        bn.last().map(|e| e.val_error_pct).unwrap_or(100.0),
        gn_mbs.last().map(|e| e.val_error_pct).unwrap_or(100.0),
    );
    Fig06 {
        bn: bn.iter().map(Point::from).collect(),
        gn_mbs: gn_mbs.iter().map(Point::from).collect(),
        no_norm: no_norm.iter().map(Point::from).collect(),
        equivalence_max_param_diff: equivalence,
        final_errors,
    }
}

/// Trains two identically-seeded GN models — one full-batch, one MBS
/// serialized — for a few steps and returns the max parameter difference.
fn equivalence_check(set: &Dataset) -> f32 {
    let mut full = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(7));
    let mut mbs = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(7));
    let mut oa = Sgd::new(0.05, 0.9, 1e-4);
    let mut ob = Sgd::new(0.05, 0.9, 1e-4);
    let n = set.len().min(16);
    let x = mbs_train::module::slice_batch(&set.images, 0, n);
    let labels = &set.labels[..n];
    for _ in 0..5 {
        let _ = train_step_full(&mut full, &x, labels, &mut oa);
        let _ = train_step_mbs(&mut mbs, &x, labels, 4, &mut ob);
    }
    let mut params = Vec::new();
    full.visit_params(&mut |p| params.push(p.value.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    mbs.visit_params(&mut |p| {
        worst = worst.max(params[i].max_abs_diff(&p.value));
        i += 1;
    });
    worst
}

/// Renders the curves.
pub fn render(f: &Fig06) -> String {
    let mut t = TextTable::new(&[
        "epoch",
        "BN err%",
        "GN+MBS err%",
        "no-norm err%",
        "BN preact(first/last)",
        "GN preact(first/last)",
        "no-norm preact(first/last)",
    ]);
    for i in 0..f.bn.len() {
        t.row(vec![
            i.to_string(),
            format!("{:.1}", f.bn[i].val_error_pct),
            format!("{:.1}", f.gn_mbs[i].val_error_pct),
            format!("{:.1}", f.no_norm[i].val_error_pct),
            format!("{:+.2}/{:+.2}", f.bn[i].preact_first, f.bn[i].preact_last),
            format!(
                "{:+.2}/{:+.2}",
                f.gn_mbs[i].preact_first, f.gn_mbs[i].preact_last
            ),
            format!(
                "{:+.2}/{:+.2}",
                f.no_norm[i].preact_first, f.no_norm[i].preact_last
            ),
        ]);
    }
    format!(
        "Fig. 6 — BN vs GN+MBS training (synthetic substitution):\n{}\n\
         GN+MBS vs full-batch GN max parameter diff after 5 steps: {:.2e} \
         (paper claim: serialization does not alter training)\n\
         Final validation error: BN {:.1}%, GN+MBS {:.1}% \
         (paper: 23.8% vs 24.0% top-1 on ImageNet)\n",
        t.render(),
        f.equivalence_max_param_diff,
        f.final_errors.0,
        f.final_errors.1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_figure_shape() {
        let f = run(Scale::Quick);
        // (1) Both normalized runs learn (beat the 75% chance level).
        assert!(f.final_errors.0 < 60.0, "BN err {}", f.final_errors.0);
        assert!(f.final_errors.1 < 60.0, "GN err {}", f.final_errors.1);
        // (2) BN and GN+MBS are comparable (paper: within ~0.2%; allow
        // slack at this scale).
        assert!(
            (f.final_errors.0 - f.final_errors.1).abs() < 25.0,
            "{:?}",
            f.final_errors
        );
        // (3) MBS serialization is numerically faithful.
        assert!(
            f.equivalence_max_param_diff < 1e-3,
            "{}",
            f.equivalence_max_param_diff
        );
        // (4) Normalized pre-activations stay bounded; the figure's point
        // is that un-normalized ones drift much further from zero.
        let last = f.gn_mbs.last().unwrap();
        assert!(last.preact_first.abs() < 1.0 && last.preact_last.abs() < 1.0);
    }
}
