//! §3 footnote 1 ablation: greedy layer grouping vs. the exact optimum
//! (the paper used exhaustive search and found ~1% headroom).

use serde::Serialize;

use mbs_cnn::networks::{inception_v3, resnet};
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

use crate::table::TextTable;

/// One comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Network name.
    pub network: String,
    /// Configuration label.
    pub config: String,
    /// Greedy grouping DRAM bytes.
    pub greedy_bytes: u64,
    /// Exact-DP grouping DRAM bytes.
    pub optimal_bytes: u64,
    /// Greedy overhead vs optimal in percent.
    pub gap_pct: f64,
    /// Number of groups chosen by each.
    pub groups: (usize, usize),
}

/// The full ablation.
#[derive(Debug, Clone, Serialize)]
pub struct Ablation {
    /// All rows.
    pub rows: Vec<AblationRow>,
}

/// Runs greedy vs optimal for the MBS configurations.
pub fn run() -> Ablation {
    let hw = HardwareConfig::default();
    let mut rows = Vec::new();
    for net in [resnet(50), resnet(101), inception_v3()] {
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            let s = MbsScheduler::new(&net, &hw, cfg);
            let greedy = s.schedule();
            let optimal = s.optimal_schedule();
            let gb = analyze(&net, &greedy, hw.global_buffer_bytes).dram_bytes();
            let ob = analyze(&net, &optimal, hw.global_buffer_bytes).dram_bytes();
            rows.push(AblationRow {
                network: net.name().to_owned(),
                config: cfg.label().to_owned(),
                greedy_bytes: gb,
                optimal_bytes: ob,
                gap_pct: 100.0 * (gb as f64 - ob as f64) / ob as f64,
                groups: (greedy.groups().len(), optimal.groups().len()),
            });
        }
    }
    Ablation { rows }
}

/// Renders the ablation.
pub fn render(a: &Ablation) -> String {
    let mut t = TextTable::new(&[
        "network",
        "config",
        "greedy GB",
        "optimal GB",
        "gap %",
        "groups (g/o)",
    ]);
    for r in &a.rows {
        t.row(vec![
            r.network.clone(),
            r.config.clone(),
            format!("{:.3}", r.greedy_bytes as f64 / 1e9),
            format!("{:.3}", r.optimal_bytes as f64 / 1e9),
            format!("{:.2}", r.gap_pct),
            format!("{}/{}", r.groups.0, r.groups.1),
        ]);
    }
    format!(
        "§3 footnote 1 — greedy vs exact (DP) layer grouping \
         (paper: exhaustive search ≈ 1% better):\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_within_a_few_percent_of_optimal() {
        let a = run();
        for r in &a.rows {
            assert!(r.gap_pct >= -1e-6, "{:?}", r);
            assert!(
                r.gap_pct < 5.0,
                "{} {} gap {}",
                r.network,
                r.config,
                r.gap_pct
            );
        }
    }
}
