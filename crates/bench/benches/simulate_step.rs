//! Criterion bench: one full WaveCore training-step simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mbs_cnn::networks::{alexnet, resnet};
use mbs_core::{ExecConfig, HardwareConfig};
use mbs_wavecore::WaveCore;

fn bench_simulate(c: &mut Criterion) {
    let wc = WaveCore::new(HardwareConfig::default());
    let mut g = c.benchmark_group("simulate_step");
    for net in [resnet(50), alexnet()] {
        for cfg in [ExecConfig::Baseline, ExecConfig::Mbs2] {
            g.bench_with_input(
                BenchmarkId::new(net.name().to_owned(), cfg.label()),
                &cfg,
                |b, &cfg| b.iter(|| wc.simulate(&net, cfg)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
