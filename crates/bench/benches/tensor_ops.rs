//! Criterion bench: tensor substrate operators (fused conv paths, the
//! training GEMMs, and their naive baselines). Bodies live in
//! `mbs_bench::suites` so the quick-mode `bench` binary runs the same
//! measurements.

use criterion::{criterion_group, criterion_main};

use mbs_bench::suites::tensor_ops;

criterion_group!(benches, tensor_ops);
criterion_main!(benches);
