//! Criterion bench: tensor substrate operators (conv forward paths and the
//! training GEMMs).

use criterion::{criterion_group, criterion_main, Criterion};

use mbs_tensor::ops::{
    conv2d, conv2d_backward_data, conv2d_backward_weights, conv2d_naive, matmul, Conv2dCfg,
};
use mbs_tensor::Tensor;

fn tensor(shape: &[usize], salt: usize) -> Tensor {
    let len: usize = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len).map(|v| (((v * 7 + salt) % 17) as f32 - 8.0) / 4.0).collect(),
    )
}

fn bench_tensor_ops(c: &mut Criterion) {
    let cfg = Conv2dCfg::square(3, 1, 1);
    let x = tensor(&[4, 8, 16, 16], 1);
    let w = tensor(&[16, 8, 3, 3], 2);
    let dy = tensor(&[4, 16, 16, 16], 3);

    c.bench_function("conv2d_im2col", |b| b.iter(|| conv2d(&x, &w, cfg)));
    c.bench_function("conv2d_naive", |b| b.iter(|| conv2d_naive(&x, &w, cfg)));
    c.bench_function("conv2d_backward_data", |b| {
        b.iter(|| conv2d_backward_data(&dy, &w, x.shape(), cfg))
    });
    c.bench_function("conv2d_backward_weights", |b| {
        b.iter(|| conv2d_backward_weights(&x, &dy, cfg))
    });

    let a = tensor(&[128, 128], 4);
    let bm = tensor(&[128, 128], 5);
    c.bench_function("matmul_128", |b| b.iter(|| matmul(&a, &bm)));
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
