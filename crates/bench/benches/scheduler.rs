//! Criterion bench: MBS scheduling (greedy grouping) cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mbs_cnn::networks::{inception_v3, resnet};
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};

fn bench_scheduler(c: &mut Criterion) {
    let hw = HardwareConfig::default();
    let mut g = c.benchmark_group("scheduler");
    for net in [resnet(50), inception_v3()] {
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            g.bench_with_input(
                BenchmarkId::new(net.name().to_owned(), cfg.label()),
                &cfg,
                |b, &cfg| {
                    b.iter(|| MbsScheduler::new(&net, &hw, cfg).schedule());
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
