//! Criterion bench: the DRAM traffic model (one analysis pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mbs_cnn::networks::{inception_v4, resnet};
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

fn bench_traffic(c: &mut Criterion) {
    let hw = HardwareConfig::default();
    let mut g = c.benchmark_group("traffic");
    for net in [resnet(152), inception_v4()] {
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
        g.bench_with_input(
            BenchmarkId::new("analyze", net.name().to_owned()),
            &net,
            |b, net| {
                b.iter(|| analyze(net, &schedule, hw.global_buffer_bytes));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
