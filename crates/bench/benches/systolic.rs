//! Criterion bench: the functional register-level systolic array vs the
//! reference matmul, and the analytic cycle model.

use criterion::{criterion_group, criterion_main, Criterion};

use mbs_wavecore::gemm::GemmDims;
use mbs_wavecore::systolic::{DenseMatrix, FunctionalArray};
use mbs_wavecore::tile::{gemm_cycles, ArrayGeometry};

fn bench_systolic(c: &mut Criterion) {
    let geom = ArrayGeometry {
        rows: 8,
        cols: 8,
        tile_rows: 16,
    };
    let a = DenseMatrix::from_vec(32, 24, (0..768).map(|v| (v % 11) as f32).collect());
    let b = DenseMatrix::from_vec(24, 16, (0..384).map(|v| (v % 7) as f32).collect());

    c.bench_function("functional_array_32x24x16", |bench| {
        bench.iter(|| {
            let mut arr = FunctionalArray::new(geom, true);
            arr.multiply(&a, &b)
        })
    });
    c.bench_function("reference_matmul_32x24x16", |bench| {
        bench.iter(|| a.matmul(&b))
    });
    c.bench_function("analytic_cycles_resnet_conv", |bench| {
        let dims = GemmDims::new(32 * 56 * 56, 64, 576);
        let g = ArrayGeometry::wavecore();
        bench.iter(|| gemm_cycles(dims, g, true))
    });
}

criterion_group!(benches, bench_systolic);
criterion_main!(benches);
