//! Criterion bench: substrate training steps — full-batch vs MBS
//! serialized (same arithmetic, different propagation order).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_train::data::generate;
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::model::MiniResNet;
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;

fn bench_training(c: &mut Criterion) {
    let d = generate(8, 8, 0.3, 55);

    c.bench_function("train_step_full_batch8", |b| {
        let mut m =
            MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        b.iter(|| train_step_full(&mut m, &d.images, &d.labels, &mut opt))
    });

    c.bench_function("train_step_mbs_sub2", |b| {
        let mut m =
            MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        b.iter(|| train_step_mbs(&mut m, &d.images, &d.labels, 2, &mut opt))
    });
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
