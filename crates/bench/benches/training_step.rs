//! Criterion bench: substrate training steps — full-batch vs MBS
//! serialized (same arithmetic, different propagation order) at the Fig. 6
//! batch configuration. Bodies live in `mbs_bench::suites` so the
//! quick-mode `bench` binary runs the same measurements.

use criterion::{criterion_group, criterion_main};

use mbs_bench::suites::training_step;

criterion_group!(benches, training_step);
criterion_main!(benches);
