//! FNV-1a 64-bit hashing for fingerprints and content checksums.
//!
//! Durable-state files (checkpoints, future tuning caches) need a hash
//! that is stable across platforms, releases, and processes — `std`'s
//! `DefaultHasher` guarantees none of that. FNV-1a is tiny, has no
//! dependency, and is well distributed for the short structured inputs we
//! feed it. It is **not** cryptographic: it detects corruption and
//! mismatch, not adversaries.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64-bit state.
pub fn fnv1a64_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_step(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn step_composes() {
        let whole = fnv1a64(b"hello world");
        let split = fnv1a64_step(fnv1a64_step(FNV_OFFSET, b"hello "), b"world");
        assert_eq!(whole, split);
    }
}
