//! The MBS scheduler: sub-batch sizing and layer grouping (paper §3).
//!
//! Grouping proceeds exactly as the paper describes: initial groups join
//! adjacent nodes that need the same number of sub-batch iterations
//! (Fig. 4's red line), then adjacent groups are greedily merged — reducing
//! one group's sub-batch to its neighbour's — whenever the modeled DRAM
//! traffic improves. [`MbsScheduler::optimal_schedule`] implements the
//! exact contiguous-partition optimum via dynamic programming (the paper's
//! footnote 1 used exhaustive search and found it ≈ 1 % better than
//! greedy).

use mbs_cnn::Network;

use crate::config::{ExecConfig, HardwareConfig};
use crate::footprint::{max_sub_batch, node_space};
use crate::schedule::{Group, Schedule};
use crate::traffic::analyze;

/// Builds [`Schedule`]s for a network on given hardware under a given
/// execution configuration.
///
/// # Examples
///
/// ```
/// use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_cnn::networks::resnet;
///
/// let net = resnet(50);
/// let hw = HardwareConfig::default();
/// let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
/// assert!(schedule.groups().len() >= 2); // multiple groups for ResNet50
/// ```
#[derive(Debug, Clone)]
pub struct MbsScheduler<'a> {
    net: &'a Network,
    hw: &'a HardwareConfig,
    config: ExecConfig,
    batch: usize,
}

impl<'a> MbsScheduler<'a> {
    /// Creates a scheduler using the network's default per-core mini-batch.
    pub fn new(net: &'a Network, hw: &'a HardwareConfig, config: ExecConfig) -> Self {
        Self {
            net,
            hw,
            config,
            batch: net.default_batch(),
        }
    }

    /// Overrides the per-core mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch = batch;
        self
    }

    /// Produces the schedule for the configured execution mode.
    pub fn schedule(&self) -> Schedule {
        match self.config {
            ExecConfig::Baseline | ExecConfig::ArchOpt | ExecConfig::InterLayer => {
                self.unserialized()
            }
            ExecConfig::MbsFs => self.full_serial(),
            ExecConfig::Mbs1 | ExecConfig::Mbs2 => self.greedy(),
        }
    }

    /// The exact optimum over contiguous layer groupings, by dynamic
    /// programming on the (additive) per-group traffic cost. Only
    /// meaningful for the MBS configurations; other configs return their
    /// regular schedule.
    pub fn optimal_schedule(&self) -> Schedule {
        if !self.config.is_mbs() || self.net.nodes().is_empty() {
            return self.schedule();
        }
        let subs = self.node_subs().0;
        let len = self.net.nodes().len();

        // cost[i][j] = DRAM bytes attributed to nodes i..j when they form
        // one group (boundary locality depends only on the boundary, so the
        // total over a partition is the sum of its group costs).
        let mut best: Vec<u64> = vec![u64::MAX; len + 1];
        let mut cut: Vec<usize> = vec![0; len + 1];
        best[0] = 0;
        for j in 1..=len {
            for i in 0..j {
                let cost = self.range_cost(i, j, &subs);
                let total = best[i].saturating_add(cost);
                if total < best[j] {
                    best[j] = total;
                    cut[j] = i;
                }
            }
        }
        let mut bounds = vec![len];
        let mut j = len;
        while j > 0 {
            j = cut[j];
            bounds.push(j);
        }
        bounds.reverse();
        let groups: Vec<Group> = bounds
            .windows(2)
            .map(|w| {
                let sub = subs[w[0]..w[1]].iter().copied().min().unwrap_or(self.batch);
                Group::new(w[0], w[1], sub, self.batch)
            })
            .collect();
        let fits = self.node_subs().1;
        Schedule::new(self.config, self.batch, groups, fits)
    }

    /// Max sub-batch per node (clamped to the mini-batch) and whether every
    /// node fits at least one sample.
    fn node_subs(&self) -> (Vec<usize>, bool) {
        let branch_reuse = self.config.branch_reuse();
        let mut all_fit = true;
        let subs = self
            .net
            .nodes()
            .iter()
            .map(|n| {
                let space = node_space(n, branch_reuse);
                let (s, fits) = max_sub_batch(space, self.hw.global_buffer_bytes);
                all_fit &= fits;
                s.min(self.batch)
            })
            .collect();
        (subs, all_fit)
    }

    fn unserialized(&self) -> Schedule {
        let groups = (0..self.net.nodes().len())
            .map(|i| Group::new(i, i + 1, self.batch, self.batch))
            .collect();
        Schedule::new(self.config, self.batch, groups, true)
    }

    fn full_serial(&self) -> Schedule {
        let (subs, fits) = self.node_subs();
        let len = self.net.nodes().len();
        if len == 0 {
            return Schedule::new(self.config, self.batch, Vec::new(), true);
        }
        let sub = subs.iter().copied().min().unwrap_or(self.batch);
        let groups = vec![Group::new(0, len, sub, self.batch)];
        Schedule::new(self.config, self.batch, groups, fits)
    }

    /// Initial groups (equal iteration counts) followed by greedy merging.
    fn greedy(&self) -> Schedule {
        let (subs, fits) = self.node_subs();
        let mut groups = self.initial_groups(&subs);
        if groups.is_empty() {
            return Schedule::new(self.config, self.batch, groups, fits);
        }
        let mut current = self.eval(&groups);
        loop {
            let mut best: Option<(usize, u64)> = None;
            for i in 0..groups.len().saturating_sub(1) {
                let cand = Self::merge_at(&groups, i, self.batch);
                let t = self.eval(&cand);
                if t < current && best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
            match best {
                Some((i, t)) => {
                    groups = Self::merge_at(&groups, i, self.batch);
                    current = t;
                }
                None => break,
            }
        }
        Schedule::new(self.config, self.batch, groups, fits)
    }

    fn initial_groups(&self, subs: &[usize]) -> Vec<Group> {
        let mut groups: Vec<Group> = Vec::new();
        for (i, &sub) in subs.iter().enumerate() {
            let it = self.batch.div_ceil(sub);
            match groups.last_mut() {
                Some(g) if g.iterations == it => {
                    g.end = i + 1;
                    g.sub_batch = g.sub_batch.min(sub);
                }
                _ => groups.push(Group::new(i, i + 1, sub, self.batch)),
            }
        }
        groups
    }

    fn merge_at(groups: &[Group], i: usize, batch: usize) -> Vec<Group> {
        let mut out = Vec::with_capacity(groups.len() - 1);
        out.extend_from_slice(&groups[..i]);
        let sub = groups[i].sub_batch.min(groups[i + 1].sub_batch);
        out.push(Group::new(groups[i].start, groups[i + 1].end, sub, batch));
        out.extend_from_slice(&groups[i + 2..]);
        out
    }

    /// Total modeled DRAM traffic for a candidate grouping.
    fn eval(&self, groups: &[Group]) -> u64 {
        let schedule = Schedule::new(self.config, self.batch, groups.to_vec(), true);
        analyze(self.net, &schedule, self.hw.global_buffer_bytes).dram_bytes()
    }

    #[allow(clippy::needless_range_loop)]
    /// DRAM bytes attributed to nodes `i..j` when grouped together (other
    /// nodes are scheduled as singletons; their records are discarded).
    fn range_cost(&self, i: usize, j: usize, subs: &[usize]) -> u64 {
        let len = self.net.nodes().len();
        let mut groups = Vec::new();
        for k in 0..i {
            groups.push(Group::new(k, k + 1, subs[k], self.batch));
        }
        let sub = subs[i..j].iter().copied().min().unwrap_or(self.batch);
        groups.push(Group::new(i, j, sub, self.batch));
        for k in j..len {
            groups.push(Group::new(k, k + 1, subs[k], self.batch));
        }
        let schedule = Schedule::new(self.config, self.batch, groups, true);
        let report = analyze(self.net, &schedule, self.hw.global_buffer_bytes);
        report
            .layers
            .iter()
            .filter(|l| l.node >= i && l.node < j)
            .map(|l| l.dram_total())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::{resnet, toy};

    fn hw() -> HardwareConfig {
        HardwareConfig::default()
    }

    #[test]
    fn unserialized_schedules_have_one_iteration() {
        let net = resnet(50);
        let hw = hw();
        for cfg in [
            ExecConfig::Baseline,
            ExecConfig::ArchOpt,
            ExecConfig::InterLayer,
        ] {
            let s = MbsScheduler::new(&net, &hw, cfg).schedule();
            assert_eq!(s.groups().len(), net.nodes().len());
            assert!(s.groups().iter().all(|g| g.iterations == 1));
        }
    }

    #[test]
    fn full_serial_is_single_group() {
        let net = resnet(50);
        let hw = hw();
        let s = MbsScheduler::new(&net, &hw, ExecConfig::MbsFs).schedule();
        assert_eq!(s.groups().len(), 1);
        assert!(
            s.groups()[0].iterations > 1,
            "early layers force serialization"
        );
    }

    #[test]
    fn greedy_groups_cover_network_and_respect_buffer() {
        let net = resnet(50);
        let hw = hw();
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            let sched = MbsScheduler::new(&net, &hw, cfg).schedule();
            let covered: usize = sched.groups().iter().map(Group::len).sum();
            assert_eq!(covered, net.nodes().len());
            assert!(sched.fits());
            for g in sched.groups() {
                for node in &net.nodes()[g.start..g.end] {
                    let space = node_space(node, cfg.branch_reuse());
                    assert!(
                        space * g.sub_batch <= hw.global_buffer_bytes,
                        "group footprint exceeds buffer at {}",
                        node.name()
                    );
                }
            }
        }
    }

    #[test]
    fn resnet50_mbs1_sub_batches_grow_with_depth() {
        let net = resnet(50);
        let hw = hw();
        let sched = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
        let subs: Vec<usize> = sched.groups().iter().map(|g| g.sub_batch).collect();
        assert!(subs.len() >= 3, "expected several groups, got {subs:?}");
        assert!(
            subs.last().unwrap() > subs.first().unwrap(),
            "deeper groups should carry more samples: {subs:?}"
        );
    }

    #[test]
    fn greedy_never_worse_than_initial_grouping() {
        let net = resnet(50);
        let hw = hw();
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1);
        let (subs, _) = s.node_subs();
        let initial = s.initial_groups(&subs);
        let greedy = s.schedule();
        assert!(s.eval(greedy.groups()) <= s.eval(&initial));
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let net = toy::tiny_resnet(2, 8);
        let hw = hw();
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            let s = MbsScheduler::new(&net, &hw, cfg);
            let greedy = s.eval(s.schedule().groups());
            let optimal = s.eval(s.optimal_schedule().groups());
            assert!(
                optimal <= greedy,
                "{cfg}: optimal {optimal} greedy {greedy}"
            );
        }
    }

    #[test]
    fn tiny_buffer_does_not_fit() {
        let net = resnet(50);
        let hw = HardwareConfig::default().with_global_buffer(64 * 1024);
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
        assert!(!s.fits());
    }

    #[test]
    fn batch_override() {
        let net = toy::fig1_toy();
        let hw = hw();
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(4)
            .schedule();
        assert_eq!(s.batch(), 4);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let net = toy::fig1_toy();
        let hw = hw();
        let _ = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).with_batch(0);
    }
}
