//! Execution configurations (paper Tab. 3) and hardware/memory
//! configurations (paper Tab. 4 and §4.2).

use mbs_tensor::env::parse_byte_size;
use mbs_tensor::prec::Precision;
use serde::{Deserialize, Serialize};

/// The six execution configurations evaluated in the paper (Tab. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecConfig {
    /// Two-level GEMM input blocking only; no inter-layer reuse, and the
    /// systolic array pays the weight-load idle time between waves.
    Baseline,
    /// `Baseline` + per-PE weight double buffering (gap-less waves). All
    /// subsequent configurations build on `ArchOpt`.
    ArchOpt,
    /// `ArchOpt` + inter-layer reuse, but only when the whole-mini-batch
    /// footprint of adjacent layers fits the global buffer (prior-work
    /// style, no serialization).
    InterLayer,
    /// Naive MBS: the full network is one group with a single sub-batch
    /// size picked to fit the largest layer.
    MbsFs,
    /// MBS with greedy layer grouping balancing intra-/inter-layer reuse.
    Mbs1,
    /// `Mbs1` + inter-branch data reuse inside residual/inception blocks
    /// (buffer provisioning per paper Eq. 1/Eq. 2).
    Mbs2,
}

impl ExecConfig {
    /// All configurations in the paper's presentation order.
    pub fn all() -> [ExecConfig; 6] {
        [
            ExecConfig::Baseline,
            ExecConfig::ArchOpt,
            ExecConfig::InterLayer,
            ExecConfig::MbsFs,
            ExecConfig::Mbs1,
            ExecConfig::Mbs2,
        ]
    }

    /// Display label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ExecConfig::Baseline => "Baseline",
            ExecConfig::ArchOpt => "ArchOpt",
            ExecConfig::InterLayer => "IL",
            ExecConfig::MbsFs => "MBS-FS",
            ExecConfig::Mbs1 => "MBS1",
            ExecConfig::Mbs2 => "MBS2",
        }
    }

    /// One-line description (paper Tab. 3).
    pub fn description(&self) -> &'static str {
        match self {
            ExecConfig::Baseline => "2-level GEMM blocking",
            ExecConfig::ArchOpt => "Baseline + weight double buffering",
            ExecConfig::InterLayer => "ArchOpt + inter-layer data reuse",
            ExecConfig::MbsFs => "IL + serialize all layers using the same sub-batch size",
            ExecConfig::Mbs1 => "IL + greedy layer grouping",
            ExecConfig::Mbs2 => "MBS1 + inter-branch data reuse",
        }
    }

    /// Whether the systolic array double-buffers weights (everything except
    /// `Baseline`).
    pub fn double_buffering(&self) -> bool {
        !matches!(self, ExecConfig::Baseline)
    }

    /// Whether producer→consumer tensors may stay on chip at all.
    pub fn inter_layer_reuse(&self) -> bool {
        !matches!(self, ExecConfig::Baseline | ExecConfig::ArchOpt)
    }

    /// Whether the mini-batch is serialized into sub-batches.
    pub fn is_mbs(&self) -> bool {
        matches!(
            self,
            ExecConfig::MbsFs | ExecConfig::Mbs1 | ExecConfig::Mbs2
        )
    }

    /// Whether multi-branch block data (shared inputs, merge operands) is
    /// kept on chip (paper Eq. 1 / Eq. 2 provisioning).
    pub fn branch_reuse(&self) -> bool {
        matches!(self, ExecConfig::Mbs2)
    }
}

impl std::fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Off-chip memory technologies evaluated in the paper (Tab. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// One HBM2 stack: 300 GiB/s, 8 GiB, 8 channels (default).
    Hbm2,
    /// Two HBM2 stacks: 600 GiB/s, 16 GiB.
    Hbm2X2,
    /// Twelve GDDR5 chips: 384 GiB/s, 12 GiB.
    Gddr5,
    /// Eight LPDDR4 chips: 239.2 GiB/s, 16 GiB.
    Lpddr4,
}

/// A concrete off-chip memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Technology.
    pub kind: MemoryKind,
    /// Bandwidth of one chip/stack in GiB/s.
    pub per_chip_gib_s: f64,
    /// Number of chips/stacks.
    pub chips: usize,
    /// Capacity per chip in GiB.
    pub per_chip_capacity_gib: f64,
    /// DRAM access energy in picojoules per bit (paper §4.2 cites the
    /// Rambus power model; values are representative per technology).
    pub pj_per_bit: f64,
}

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

impl MemoryConfig {
    /// Builds the paper's Tab. 4 configuration for `kind`.
    pub fn preset(kind: MemoryKind) -> Self {
        match kind {
            MemoryKind::Hbm2 => Self {
                kind,
                per_chip_gib_s: 300.0,
                chips: 1,
                per_chip_capacity_gib: 8.0,
                pj_per_bit: 7.0,
            },
            MemoryKind::Hbm2X2 => Self {
                kind,
                per_chip_gib_s: 300.0,
                chips: 2,
                per_chip_capacity_gib: 8.0,
                pj_per_bit: 7.0,
            },
            MemoryKind::Gddr5 => Self {
                kind,
                per_chip_gib_s: 32.0,
                chips: 12,
                per_chip_capacity_gib: 1.0,
                pj_per_bit: 14.0,
            },
            MemoryKind::Lpddr4 => Self {
                kind,
                per_chip_gib_s: 29.9,
                chips: 8,
                per_chip_capacity_gib: 2.0,
                pj_per_bit: 5.0,
            },
        }
    }

    /// Total bandwidth in bytes per second.
    pub fn total_bw_bytes(&self) -> f64 {
        self.per_chip_gib_s * self.chips as f64 * GIB
    }

    /// Total bandwidth in GiB/s (Tab. 4's "Total BW" column).
    pub fn total_bw_gib_s(&self) -> f64 {
        self.per_chip_gib_s * self.chips as f64
    }

    /// Total capacity in GiB.
    pub fn total_capacity_gib(&self) -> f64 {
        self.per_chip_capacity_gib * self.chips as f64
    }
}

/// WaveCore hardware parameters (paper §4.2, Fig. 9, Tab. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// Global buffer bytes per core (default 10 MiB).
    pub global_buffer_bytes: usize,
    /// Number of cores on the chip (default 2, as in TPU v2).
    pub cores: usize,
    /// Systolic array height (K direction; weights shift down this many
    /// rows), default 128.
    pub array_rows: usize,
    /// Systolic array width (output columns), default 128.
    pub array_cols: usize,
    /// Half-buffer bytes for the streamed `A` operand (default 64 KiB);
    /// determines the GEMM tile height `m`.
    pub local_a_buffer_bytes: usize,
    /// Clock frequency in Hz (default 0.7 GHz).
    pub clock_hz: f64,
    /// Global-buffer bandwidth per core in bytes/s (Fig. 9: 501 GiB/s).
    pub gbuf_bw_bytes: f64,
    /// Vector lanes per core for norm/pool/activation layers.
    pub vector_lanes: usize,
    /// Off-chip memory.
    pub memory: MemoryConfig,
}

impl HardwareConfig {
    /// The paper's default WaveCore: 2 cores, 10 MiB global buffer per
    /// core, 128×128 array, one HBM2 stack.
    pub fn new() -> Self {
        Self {
            global_buffer_bytes: 10 * 1024 * 1024,
            cores: 2,
            array_rows: 128,
            array_cols: 128,
            local_a_buffer_bytes: 64 * 1024,
            clock_hz: 0.7e9,
            gbuf_bw_bytes: 501.0 * GIB,
            vector_lanes: 1024,
            memory: MemoryConfig::preset(MemoryKind::Hbm2),
        }
    }

    /// A CPU preset for driving the **training runtime** with the
    /// scheduler: one core, and a global buffer sized from the machine's
    /// last-level cache so [`crate::footprint::max_sub_batch`] sizes
    /// groups against the actual LLC instead of the paper's 10 MiB GPU
    /// SRAM.
    ///
    /// The LLC byte budget comes from `MBS_CACHE_BUDGET` when set (plain
    /// bytes, or with a `K`/`M`/`G` suffix, e.g. `MBS_CACHE_BUDGET=16M`),
    /// else from sysfs cache topology on Linux, else an 8 MiB fallback.
    /// The runtime precision comes from the `MBS_PREC` knob
    /// ([`mbs_tensor::prec::precision`]); see
    /// [`HardwareConfig::cpu_with_precision`] for how it scales the
    /// modeled buffer.
    pub fn cpu() -> Self {
        Self::cpu_with_precision(mbs_tensor::prec::precision())
    }

    /// [`HardwareConfig::cpu`] with an explicit runtime precision instead
    /// of the process-wide `MBS_PREC` knob.
    ///
    /// The footprint model counts [`crate::WORD_BYTES`]-byte (16-bit)
    /// words — the paper accelerator's datapath width — while the CPU
    /// runtime stores packed operands and caches at `prec`. The modeled
    /// buffer is therefore the byte budget scaled by
    /// `WORD_BYTES / prec.word_bytes()`: **half** the budget at f32
    /// (every modeled word occupies two runtime words' worth of cache)
    /// and the **full** budget at bf16 (the runtime matches the model's
    /// 16-bit words exactly, so no correction is needed). A group the
    /// model says fits then genuinely fits the cache at the precision the
    /// runtime actually uses.
    pub fn cpu_with_precision(prec: Precision) -> Self {
        let budget = cache_budget_bytes();
        let modeled = budget.saturating_mul(crate::WORD_BYTES) / prec.word_bytes();
        Self {
            global_buffer_bytes: modeled.max(1),
            cores: 1,
            ..Self::new()
        }
    }

    /// Same hardware with a different memory system.
    pub fn with_memory(mut self, kind: MemoryKind) -> Self {
        self.memory = MemoryConfig::preset(kind);
        self
    }

    /// Same hardware with a different per-core global buffer size.
    pub fn with_global_buffer(mut self, bytes: usize) -> Self {
        self.global_buffer_bytes = bytes;
        self
    }

    /// DRAM bandwidth available to one core (channels are split evenly
    /// between the cores, paper §4.2).
    pub fn per_core_dram_bw(&self) -> f64 {
        self.memory.total_bw_bytes() / self.cores as f64
    }

    /// GEMM tile height `m = local A buffer / array_rows` in 16-bit words
    /// (paper Fig. 7).
    pub fn tile_rows(&self) -> usize {
        self.local_a_buffer_bytes / (self.array_rows * crate::WORD_BYTES)
    }

    /// Peak multiply-accumulate throughput of one core in MAC/s.
    pub fn peak_macs_per_core(&self) -> f64 {
        (self.array_rows * self.array_cols) as f64 * self.clock_hz
    }
}

impl Default for HardwareConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The CPU cache budget in bytes: the `MBS_CACHE_BUDGET` override when
/// set and parseable, else the detected last-level cache size, else 8 MiB.
/// Malformed or zero values warn and fall back to detection (the shared
/// `MBS_*` knob discipline, `mbs_tensor::env`).
pub fn cache_budget_bytes() -> usize {
    mbs_tensor::env::knob(
        "MBS_CACHE_BUDGET",
        "a positive byte size (e.g. 8388608, 8192K, or 8M)",
        |s| parse_byte_size(s).filter(|&b| b > 0),
    )
    .unwrap_or_else(|| detect_llc_bytes().unwrap_or(8 * 1024 * 1024))
}

/// Largest cache reported by sysfs for cpu0 (the LLC) on Linux; `None`
/// elsewhere or when the topology is unreadable.
fn detect_llc_bytes() -> Option<usize> {
    let base = std::path::Path::new("/sys/devices/system/cpu/cpu0/cache");
    let mut best: Option<usize> = None;
    for entry in std::fs::read_dir(base).ok()? {
        // One unreadable entry must not discard sizes already found.
        let Ok(entry) = entry else { continue };
        let size = std::fs::read_to_string(entry.path().join("size")).ok();
        if let Some(bytes) = size.as_deref().and_then(parse_byte_size) {
            best = Some(best.map_or(bytes, |b| b.max(bytes)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_flags_follow_tab3() {
        assert!(!ExecConfig::Baseline.double_buffering());
        assert!(ExecConfig::ArchOpt.double_buffering());
        assert!(!ExecConfig::ArchOpt.inter_layer_reuse());
        assert!(ExecConfig::InterLayer.inter_layer_reuse());
        assert!(!ExecConfig::InterLayer.is_mbs());
        assert!(ExecConfig::MbsFs.is_mbs());
        assert!(!ExecConfig::Mbs1.branch_reuse());
        assert!(ExecConfig::Mbs2.branch_reuse());
    }

    #[test]
    fn memory_totals_match_tab4() {
        assert_eq!(
            MemoryConfig::preset(MemoryKind::Hbm2).total_bw_gib_s(),
            300.0
        );
        assert_eq!(
            MemoryConfig::preset(MemoryKind::Hbm2X2).total_bw_gib_s(),
            600.0
        );
        assert_eq!(
            MemoryConfig::preset(MemoryKind::Gddr5).total_bw_gib_s(),
            384.0
        );
        let lp = MemoryConfig::preset(MemoryKind::Lpddr4);
        assert!((lp.total_bw_gib_s() - 239.2).abs() < 1e-9);
        assert_eq!(lp.total_capacity_gib(), 16.0);
    }

    #[test]
    fn default_hardware_matches_paper() {
        let hw = HardwareConfig::default();
        assert_eq!(hw.global_buffer_bytes, 10 * 1024 * 1024);
        assert_eq!(hw.tile_rows(), 256);
        // 45 TOPS/chip = 2 ops/MAC * 2 cores * 128*128 PEs * 0.7 GHz
        let tops = 2.0 * hw.cores as f64 * hw.peak_macs_per_core() / 1e12;
        assert!((tops - 45.9).abs() < 0.1, "tops {tops}");
    }

    #[test]
    fn per_core_bandwidth_is_half_chip() {
        let hw = HardwareConfig::default();
        assert!((hw.per_core_dram_bw() * 2.0 - hw.memory.total_bw_bytes()).abs() < 1.0);
    }

    #[test]
    fn byte_size_parsing() {
        assert_eq!(parse_byte_size("8388608"), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size("8192K"), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size(" 8M "), Some(8 * 1024 * 1024));
        assert_eq!(parse_byte_size("1g"), Some(1 << 30));
        assert_eq!(parse_byte_size("lots"), None);
        assert_eq!(parse_byte_size(""), None);
        // Suffixed products that overflow usize are rejected, not wrapped.
        assert_eq!(parse_byte_size("18446744073709551615G"), None);
        assert_eq!(parse_byte_size(&format!("{}G", usize::MAX >> 29)), None);
    }

    #[test]
    fn cpu_preset_scales_the_byte_budget_by_precision() {
        let budget = cache_budget_bytes();
        // f32 runtime words are twice the model's 16-bit words: budget/2.
        let f32_hw = HardwareConfig::cpu_with_precision(Precision::F32);
        assert_eq!(f32_hw.cores, 1);
        assert_eq!(f32_hw.global_buffer_bytes, (budget / 2).max(1));
        // bf16 runtime words match the model's words: the full budget.
        let bf16_hw = HardwareConfig::cpu_with_precision(Precision::Bf16);
        assert_eq!(bf16_hw.global_buffer_bytes, budget.max(1));
        // cpu() follows the active MBS_PREC knob.
        let hw = HardwareConfig::cpu();
        assert_eq!(
            hw.global_buffer_bytes,
            HardwareConfig::cpu_with_precision(mbs_tensor::prec::precision()).global_buffer_bytes
        );
    }

    #[test]
    fn bf16_budget_grows_max_sub_batch() {
        // The larger modeled buffer at bf16 feeds straight into sub-batch
        // sizing: at least twice the f32 sub-batch for the same footprint.
        let per_sample = 1024;
        let (s32, _) = crate::footprint::max_sub_batch(
            per_sample,
            HardwareConfig::cpu_with_precision(Precision::F32).global_buffer_bytes,
        );
        let (s16, _) = crate::footprint::max_sub_batch(
            per_sample,
            HardwareConfig::cpu_with_precision(Precision::Bf16).global_buffer_bytes,
        );
        assert!(s16 >= 2 * s32, "bf16 {s16} vs f32 {s32}");
        assert!(s16 > s32);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ExecConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            ["Baseline", "ArchOpt", "IL", "MBS-FS", "MBS1", "MBS2"]
        );
        for c in ExecConfig::all() {
            assert!(!c.description().is_empty());
        }
    }
}
