//! Per-sample on-chip buffer requirements: the quantity MBS uses to size
//! sub-batches (paper §3, Eq. 1 for residual blocks, Eq. 2 for inception
//! modules).

use mbs_cnn::{Block, BlockKind, Layer, LayerKind, Node, NormKind};

/// Bytes of buffer space needed to stream one sample through `layer` while
/// keeping its live inter-layer data on chip.
///
/// Input and output must be resident simultaneously for layers that change
/// the tensor shape. Element-wise layers operate in place:
///
/// - ReLU overwrites its input (space = input),
/// - normalization runs its statistics pass first and then scales in place
///   (space = input),
/// - the residual `Add` sums one operand into the other (space = both
///   operands),
/// - `Concat` writes branches into one pre-provisioned output area
///   (space = output).
pub fn layer_space(layer: &Layer) -> usize {
    match layer.kind {
        LayerKind::Add => 2 * layer.output.bytes(),
        LayerKind::Concat => layer.output.bytes(),
        LayerKind::Relu | LayerKind::Norm { .. } => layer.input.bytes(),
        _ => layer.input.bytes() + layer.output.bytes(),
    }
}

/// Per-sample space for a whole scheduling unit under MBS1 semantics
/// (branches processed independently; shared block data goes through DRAM,
/// so no `Dcond` terms).
pub fn node_space_independent(node: &Node) -> usize {
    node.layers().map(layer_space).max().unwrap_or(0)
}

/// Per-sample space under MBS2 semantics: block inputs and pending branch
/// outputs are provisioned on chip (paper Eq. 1 / Eq. 2).
pub fn node_space_branch_reuse(node: &Node) -> usize {
    match node {
        Node::Single(layer) => layer_space(layer),
        Node::Block(block) => block_space(block),
    }
}

/// Space for one node under the given semantics.
pub fn node_space(node: &Node, branch_reuse: bool) -> usize {
    if branch_reuse {
        node_space_branch_reuse(node)
    } else {
        node_space_independent(node)
    }
}

fn block_space(block: &Block) -> usize {
    let block_in = block.input.bytes();
    let block_out = block.output.bytes();
    let mut worst = 0usize;

    for (b, branch) in block.branches.iter().enumerate() {
        let len = branch.len();
        for (l, layer) in branch.iter().enumerate() {
            let cond = match block.kind {
                // Eq. 1: the main branch (b = 0) keeps the block input live
                // after its first layer so the shortcut can still read it;
                // other branches keep the already-computed main output live
                // while they execute.
                BlockKind::Residual => {
                    if b == 0 {
                        if l != 0 {
                            block_in
                        } else {
                            0
                        }
                    } else {
                        block_out
                    }
                }
                // Eq. 2: every branch keeps the shared block input live
                // (except while its first layer consumes it) and the concat
                // output area live (except while its last layer writes it).
                BlockKind::Inception => {
                    let keep_in = if l != 0 { block_in } else { 0 };
                    let keep_out = if l + 1 != len { block_out } else { 0 };
                    keep_in + keep_out
                }
            };
            worst = worst.max(layer_space(layer) + cond);
        }
        // An identity shortcut holds the block input alongside the pending
        // main output while the merge executes.
        if branch.is_empty() {
            worst = worst.max(block_in + block_out);
        }
    }
    for layer in std::iter::once(&block.merge).chain(block.post.iter()) {
        worst = worst.max(layer_space(layer));
    }
    worst
}

/// Per-sample bytes of backward caches one node retains after its forward
/// — the tensors a cache-stashing executor must keep alive per stashed
/// sample. Per layer kind, mirroring what the runtime actually stashes:
///
/// - conv / FC / GN / BN: the input (or input-sized `xhat`) tensor;
/// - LRN: **two** input-sized tensors (the input and the scale
///   denominator);
/// - max pooling: nothing input-sized — the runtime keeps per-*output*
///   argmax indices, not the input;
/// - ReLU: nothing (a 1-bit sign mask).
///
/// Small residue (ReLU masks, argmax indices, per-group statistics
/// vectors) is ignored.
pub fn node_stash_bytes(node: &Node) -> usize {
    node.layers()
        .map(|l| match l.kind {
            LayerKind::Norm {
                kind: NormKind::Local,
            } => 2 * l.input_bytes(),
            LayerKind::Pool { .. } => 0,
            _ if l.kind.needs_input_in_backward() => l.input_bytes(),
            _ => 0,
        })
        .sum()
}

/// Largest sub-batch (≥ 1) whose live data fits in `buffer_bytes`, and
/// whether even one sample fits.
///
/// The paper's networks fit one sample comfortably in 5 MiB; the `fits`
/// flag exists so pathological inputs degrade loudly rather than silently.
pub fn max_sub_batch(space_per_sample: usize, buffer_bytes: usize) -> (usize, bool) {
    if space_per_sample == 0 {
        return (usize::MAX, true);
    }
    let s = buffer_bytes / space_per_sample;
    if s == 0 {
        (1, false)
    } else {
        (s, true)
    }
}

/// Whether the *whole mini-batch* footprint of a layer fits on chip — the
/// reuse condition of the prior-work `IL` configuration (paper Tab. 3).
pub fn whole_batch_fits(layer: &Layer, batch: usize, buffer_bytes: usize) -> bool {
    layer_space(layer).saturating_mul(batch) <= buffer_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::{resnet, toy};
    use mbs_cnn::{FeatureShape, NormKind};

    #[test]
    fn conv_space_is_input_plus_output() {
        let l = Layer::conv("c", FeatureShape::new(3, 8, 8), 16, 3, 1, 1).unwrap();
        assert_eq!(layer_space(&l), (3 * 64 + 16 * 64) * 2);
    }

    #[test]
    fn norm_runs_in_place() {
        let s = FeatureShape::new(16, 8, 8);
        let l = Layer::norm("n", s, NormKind::Group { groups: 4 });
        assert_eq!(layer_space(&l), s.bytes());
    }

    #[test]
    fn elementwise_layers_run_in_place() {
        let s = FeatureShape::new(16, 8, 8);
        assert_eq!(layer_space(&Layer::relu("r", s)), s.bytes());
        assert_eq!(layer_space(&Layer::add("a", s)), 2 * s.bytes());
        assert_eq!(
            layer_space(&Layer::concat("c", FeatureShape::new(0, 8, 8), 16)),
            s.bytes()
        );
    }

    #[test]
    fn branch_reuse_space_is_at_least_independent() {
        let net = resnet(50);
        for node in net.nodes() {
            assert!(
                node_space_branch_reuse(node) >= node_space_independent(node),
                "node {}",
                node.name()
            );
        }
    }

    #[test]
    fn resnet_first_block_space_matches_eq1_by_hand() {
        // First bottleneck (56x56): the worst point is the projection
        // shortcut conv (in 64 + out 256 channels) with the main-branch
        // output (256 channels) pending for the merge (Eq. 1's Dcond for
        // b != 1), all at 56x56 spatial, 2 bytes/word.
        let net = resnet(50);
        let block = net
            .nodes()
            .iter()
            .find_map(|n| match n {
                Node::Block(b) => Some(b),
                _ => None,
            })
            .unwrap();
        let unit = 56 * 56 * 2; // bytes per channel
        let expected = (64 + 256 + 256) * unit;
        assert_eq!(
            node_space_branch_reuse(&Node::Block(block.clone())),
            expected
        );
    }

    #[test]
    fn sub_batch_sizing() {
        assert_eq!(max_sub_batch(1024, 10 * 1024), (10, true));
        assert_eq!(max_sub_batch(10 * 1024, 1024), (1, false));
        assert_eq!(max_sub_batch(0, 1024), (usize::MAX, true));
    }

    #[test]
    fn whole_batch_fit_rule() {
        let l = Layer::conv("c", FeatureShape::new(3, 8, 8), 16, 3, 1, 1).unwrap();
        let space = layer_space(&l);
        assert!(whole_batch_fits(&l, 4, space * 4));
        assert!(!whole_batch_fits(&l, 5, space * 4));
    }

    #[test]
    fn toy_network_spaces_decrease_with_depth() {
        let net = toy::conv_chain(&[16, 32, 64], FeatureShape::new(3, 64, 64), 4);
        let spaces: Vec<usize> = net.nodes().iter().map(node_space_independent).collect();
        // Down-sampling shrinks footprints across stages.
        assert!(spaces.first().unwrap() > spaces.last().unwrap());
    }
}
