#![warn(missing_docs)]
//! Mini-batch Serialization (MBS): the paper's primary contribution.
//!
//! MBS reduces CNN *training* DRAM traffic by partially serializing the
//! mini-batch: layers are partitioned into groups, and each group
//! propagates a sub-batch small enough that all inter-layer data stays in
//! the on-chip global buffer. Sub-batch sizes differ across groups because
//! down-sampling shrinks deeper layers' footprints, letting them carry more
//! samples per iteration (better weight reuse and more parallelism).
//!
//! This crate provides:
//!
//! - [`ExecConfig`] / [`HardwareConfig`] / [`MemoryConfig`]: the paper's
//!   Tab. 3 execution configurations and Tab. 4 memory systems,
//! - [`footprint`]: per-sample buffer requirements (Eq. 1 / Eq. 2),
//! - [`MbsScheduler`]: sub-batch sizing, greedy grouping (MBS1/MBS2), full
//!   serialization (MBS-FS), and the exact DP grouping ablation,
//! - [`traffic`]: the forward+backward DRAM/global-buffer traffic model
//!   that drives Figs. 10c, 11 and 12.
//!
//! # Examples
//!
//! ```
//! use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
//! use mbs_cnn::networks::resnet;
//!
//! let net = resnet(50);
//! let hw = HardwareConfig::default();
//!
//! let baseline = MbsScheduler::new(&net, &hw, ExecConfig::Baseline).schedule();
//! let mbs2 = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
//!
//! let t_base = analyze(&net, &baseline, hw.global_buffer_bytes);
//! let t_mbs2 = analyze(&net, &mbs2, hw.global_buffer_bytes);
//! // MBS cuts DRAM traffic by roughly 4x on ResNet50 (paper §1).
//! assert!(t_mbs2.dram_bytes() * 3 < t_base.dram_bytes());
//! ```

pub mod config;
pub mod footprint;
pub mod hash;
pub mod schedule;
pub mod scheduler;
pub mod traffic;

pub use config::{ExecConfig, HardwareConfig, MemoryConfig, MemoryKind};
pub use hash::fnv1a64;
pub use schedule::{Group, Schedule};
pub use scheduler::MbsScheduler;
pub use traffic::{analyze, LayerTraffic, TrafficBreakdown, TrafficReport};

/// Bytes per 16-bit word (re-exported from [`mbs_cnn`]).
pub const WORD_BYTES: usize = mbs_cnn::WORD_BYTES;
