//! Schedules: layer groups with sub-batch sizes (the output of the MBS
//! scheduler, paper Fig. 4/5).

use serde::{Deserialize, Serialize};

use mbs_cnn::Network;

use crate::config::ExecConfig;
use crate::hash::{fnv1a64_step, FNV_OFFSET};

/// A contiguous range of network nodes processed with one sub-batch size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// First node index (inclusive).
    pub start: usize,
    /// Last node index (exclusive).
    pub end: usize,
    /// Samples propagated together through the group.
    pub sub_batch: usize,
    /// Sub-batch iterations: `ceil(batch / sub_batch)`.
    pub iterations: usize,
}

impl Group {
    /// Builds a group, deriving the iteration count.
    pub fn new(start: usize, end: usize, sub_batch: usize, batch: usize) -> Self {
        let sub = sub_batch.clamp(1, batch.max(1));
        Self {
            start,
            end,
            sub_batch: sub,
            iterations: batch.div_ceil(sub),
        }
    }

    /// Number of nodes in the group.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The sub-batch size sequence over one mini-batch, e.g.
    /// `[3,3,3,3,3,3,3,3,3,3,2]` for sub-batch 3 over a 32-sample batch
    /// (paper Fig. 5).
    pub fn sub_batch_sizes(&self, batch: usize) -> Vec<usize> {
        let mut sizes = vec![self.sub_batch; batch / self.sub_batch];
        let rem = batch % self.sub_batch;
        if rem > 0 {
            sizes.push(rem);
        }
        sizes
    }

    /// Samples whose backward caches a **cache-stashing** executor holds
    /// stashed for this group at the end of the group's forward over a
    /// `batch`-sample mini-batch: every chunk except the last one
    /// forwarded (whose caches stay live in the layers). Zero when the
    /// group runs `batch` in a single chunk — like
    /// [`Group::sub_batch_sizes`], the chunking follows the `batch`
    /// argument, which may differ from the planning batch.
    pub fn stashed_samples(&self, batch: usize) -> usize {
        let sizes = self.sub_batch_sizes(batch);
        match sizes.last() {
            Some(&last) if sizes.len() > 1 => batch - last,
            _ => 0,
        }
    }
}

/// A complete schedule for one network under one execution configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    config: ExecConfig,
    batch: usize,
    groups: Vec<Group>,
    fits: bool,
}

impl Schedule {
    /// Builds a schedule from groups.
    ///
    /// # Panics
    ///
    /// Panics if groups are not contiguous and ordered — schedules are only
    /// produced by the scheduler, so this indicates an internal bug.
    pub fn new(config: ExecConfig, batch: usize, groups: Vec<Group>, fits: bool) -> Self {
        let mut expected = 0;
        for g in &groups {
            assert_eq!(g.start, expected, "groups must be contiguous");
            assert!(g.end > g.start, "groups must be non-empty");
            expected = g.end;
        }
        Self {
            config,
            batch,
            groups,
            fits,
        }
    }

    /// The execution configuration this schedule was built for.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Per-core mini-batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The layer groups in execution order.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Whether every group's per-sample footprint fits the buffer (always
    /// true for the paper's networks at ≥ 5 MiB; false signals that the
    /// traffic model's on-chip assumptions are optimistic).
    pub fn fits(&self) -> bool {
        self.fits
    }

    /// Number of scheduling units (network nodes) the schedule covers —
    /// the node count a lowered runtime model must match.
    pub fn node_count(&self) -> usize {
        self.groups.last().map_or(0, |g| g.end)
    }

    /// Per-group sub-batch sizes in execution order (the annotation of the
    /// paper's Fig. 5).
    pub fn sub_batches(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.sub_batch).collect()
    }

    /// Smallest sub-batch across groups: the single size a uniform (MBS-FS
    /// style) serialization of the same network would have to use to stay
    /// within the same buffer — the natural baseline when benchmarking
    /// grouped against uniform execution.
    pub fn min_sub_batch(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.sub_batch)
            .min()
            .unwrap_or(self.batch)
    }

    /// Bytes of backward caches a **cache-stashing** grouped executor
    /// keeps stashed across this schedule's forward pass — the working-set
    /// cost of skipping the backward replay. Per group: the per-sample
    /// cached-input bytes of its nodes
    /// ([`crate::footprint::node_stash_bytes`]) times the samples stashed
    /// ([`Group::stashed_samples`]). Single-iteration groups contribute
    /// nothing, so uniform full-batch schedules stash nothing.
    ///
    /// These bytes live in DRAM, not the on-chip buffer (stashes are only
    /// read back chunk-by-chunk during backward), so they do **not**
    /// constrain sub-batch sizing — but they are exactly the memory the
    /// `MBS_STASH=0` replay mode trades back for recompute, so the
    /// schedule reports them next to its DRAM-traffic model.
    ///
    /// Reported at the **active runtime precision** (`MBS_PREC`,
    /// [`mbs_tensor::prec::precision`]): stashes are stored as f32 or
    /// bf16 words, so bf16 mode reports half the f32 bytes. Use
    /// [`Schedule::stash_bytes_at`] for an explicit precision.
    ///
    /// # Panics
    ///
    /// Panics if the schedule covers more nodes than `net` has.
    pub fn stash_bytes(&self, net: &Network) -> usize {
        self.stash_bytes_at(net, mbs_tensor::prec::precision())
    }

    /// [`Schedule::stash_bytes`] at an explicit runtime precision.
    ///
    /// The footprint model ([`crate::footprint::node_stash_bytes`])
    /// counts [`crate::WORD_BYTES`]-byte (16-bit) words; a runtime
    /// storing its stashes at `prec` pays `prec.word_bytes()` bytes per
    /// word, so the model's byte count is rescaled by
    /// `prec.word_bytes() / WORD_BYTES`.
    pub fn stash_bytes_at(&self, net: &Network, prec: mbs_tensor::prec::Precision) -> usize {
        let nodes = net.nodes();
        let model_bytes: usize = self
            .groups
            .iter()
            .map(|g| {
                let per_sample: usize = nodes[g.start..g.end]
                    .iter()
                    .map(crate::footprint::node_stash_bytes)
                    .sum();
                per_sample * g.stashed_samples(self.batch)
            })
            .sum();
        model_bytes * prec.word_bytes() / crate::WORD_BYTES
    }

    /// A stable 64-bit fingerprint of this schedule applied to `net`:
    /// FNV-1a over the network identity (name, node count, per-node names,
    /// total parameter elements) and the execution plan (config label,
    /// batch, and every group's `start`/`end`/`sub_batch`/`iterations`).
    ///
    /// Durable state (checkpoints, tuning caches) records this value so a
    /// load against a *different* network or plan is refused instead of
    /// silently mapping weights onto the wrong layers. Renaming a node,
    /// resizing a layer, or re-planning the groups all change the
    /// fingerprint; it is independent of weights, RNG state, and progress
    /// counters.
    pub fn fingerprint(&self, net: &Network) -> u64 {
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            h = fnv1a64_step(h, bytes);
            h = fnv1a64_step(h, &[0xff]); // field separator
        };
        eat(net.name().as_bytes());
        eat(&(net.nodes().len() as u64).to_le_bytes());
        for node in net.nodes() {
            eat(node.name().as_bytes());
        }
        eat(&(net.param_elems() as u64).to_le_bytes());
        eat(self.config.label().as_bytes());
        eat(&(self.batch as u64).to_le_bytes());
        for g in &self.groups {
            for v in [g.start, g.end, g.sub_batch, g.iterations] {
                eat(&(v as u64).to_le_bytes());
            }
        }
        h
    }

    /// The group containing node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is beyond the scheduled range.
    pub fn group_of(&self, i: usize) -> &Group {
        self.groups
            .iter()
            .find(|g| g.start <= i && i < g.end)
            .unwrap_or_else(|| panic!("node {i} not covered by schedule"))
    }

    /// Iterations of the group containing node `i`.
    pub fn iterations_of(&self, i: usize) -> usize {
        self.group_of(i).iterations
    }

    /// Renders the schedule like the paper's Fig. 5 annotation.
    pub fn describe(&self, net: &Network) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} / {} / batch {}: {} group(s)",
            net.name(),
            self.config.label(),
            self.batch,
            self.groups.len()
        );
        for (i, g) in self.groups.iter().enumerate() {
            let names: Vec<&str> = net.nodes()[g.start..g.end]
                .iter()
                .map(|n| n.name())
                .collect();
            let sizes = g
                .sub_batch_sizes(self.batch)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                s,
                "  Group{}: nodes {}..{} ({} -> {}), {} iterations, sizes = {}",
                i + 1,
                g.start,
                g.end,
                names.first().copied().unwrap_or("-"),
                names.last().copied().unwrap_or("-"),
                g.iterations,
                sizes
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_iteration_math() {
        let g = Group::new(0, 4, 3, 32);
        assert_eq!(g.iterations, 11);
        assert_eq!(g.sub_batch_sizes(32), vec![3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 2]);
        let g = Group::new(0, 4, 16, 32);
        assert_eq!(g.iterations, 2);
        assert_eq!(g.sub_batch_sizes(32), vec![16, 16]);
    }

    #[test]
    fn group_clamps_oversized_sub_batch() {
        let g = Group::new(0, 1, 100, 32);
        assert_eq!(g.sub_batch, 32);
        assert_eq!(g.iterations, 1);
    }

    #[test]
    fn fingerprint_separates_net_and_plan_changes() {
        let net = mbs_cnn::networks::toy::runtime_mix(8, 8);
        let other_net = mbs_cnn::networks::toy::tiny_resnet(1, 8);
        let n = net.nodes().len();
        let plan =
            |sub: usize| Schedule::new(ExecConfig::Mbs1, 8, vec![Group::new(0, n, sub, 8)], true);
        let base = plan(2).fingerprint(&net);
        // Stable across calls.
        assert_eq!(base, plan(2).fingerprint(&net));
        // A different plan over the same net differs.
        assert_ne!(base, plan(4).fingerprint(&net));
        // The same plan over a different net differs.
        assert_ne!(base, plan(2).fingerprint(&other_net));
        // A different config label differs.
        let re = Schedule::new(ExecConfig::Mbs2, 8, vec![Group::new(0, n, 2, 8)], true);
        assert_ne!(base, re.fingerprint(&net));
    }

    #[test]
    fn schedule_accessors() {
        let groups = vec![Group::new(0, 2, 4, 8), Group::new(2, 5, 8, 8)];
        let s = Schedule::new(ExecConfig::Mbs1, 8, groups, true);
        assert_eq!(s.group_of(1).start, 0);
        assert_eq!(s.group_of(3).start, 2);
        assert_eq!(s.iterations_of(0), 2);
        assert_eq!(s.iterations_of(4), 1);
        assert!(s.fits());
        assert_eq!(s.node_count(), 5);
        assert_eq!(s.sub_batches(), vec![4, 8]);
        assert_eq!(s.min_sub_batch(), 4);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn schedule_rejects_gaps() {
        let groups = vec![Group::new(0, 2, 4, 8), Group::new(3, 5, 8, 8)];
        let _ = Schedule::new(ExecConfig::Mbs1, 8, groups, true);
    }

    #[test]
    fn stashed_samples_excludes_the_last_chunk() {
        // 8 samples at sub-batch 3 -> chunks [3,3,2]; the last (2) stays
        // live, 6 are stashed.
        assert_eq!(Group::new(0, 2, 3, 8).stashed_samples(8), 6);
        // Single-iteration groups never stash.
        assert_eq!(Group::new(0, 2, 8, 8).stashed_samples(8), 0);
        assert_eq!(Group::new(0, 2, 4, 8).stashed_samples(8), 4);
    }

    #[test]
    fn stash_bytes_counts_cached_inputs_of_multi_iteration_groups() {
        use mbs_cnn::networks::toy;
        use mbs_cnn::FeatureShape;

        let net = toy::conv_chain(&[4], FeatureShape::new(3, 8, 8), 8);
        let nodes = net.nodes().len(); // conv, norm, relu
                                       // Conv and norm cache their inputs; ReLU does not (1-bit mask).
        let per_sample: usize = net
            .nodes()
            .iter()
            .map(crate::footprint::node_stash_bytes)
            .sum();
        assert!(per_sample > 0);

        // One full-batch group: nothing stashed.
        let uniform = Schedule::new(ExecConfig::MbsFs, 8, vec![Group::new(0, nodes, 8, 8)], true);
        assert_eq!(uniform.stash_bytes(&net), 0);

        // Sub-batch 2 over 8 samples: 6 samples' caches stashed.
        // `per_sample` is in the model's 16-bit words; an f32 runtime
        // pays twice that, a bf16 runtime pays it exactly.
        use mbs_tensor::prec::Precision;
        let serialized = Schedule::new(ExecConfig::Mbs1, 8, vec![Group::new(0, nodes, 2, 8)], true);
        assert_eq!(
            serialized.stash_bytes_at(&net, Precision::F32),
            per_sample * 6 * 2
        );
        assert_eq!(
            serialized.stash_bytes_at(&net, Precision::Bf16),
            per_sample * 6
        );
        // The halving pin: bf16 stashes are exactly half the f32 bytes.
        assert_eq!(
            serialized.stash_bytes_at(&net, Precision::Bf16) * 2,
            serialized.stash_bytes_at(&net, Precision::F32)
        );
        // The knob-driven accessor follows the active precision.
        assert_eq!(
            serialized.stash_bytes(&net),
            serialized.stash_bytes_at(&net, mbs_tensor::prec::precision())
        );
    }
}
