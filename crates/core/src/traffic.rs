//! The CNN-training DRAM/global-buffer traffic model.
//!
//! For a network, a [`Schedule`], and an [`ExecConfig`], this module walks
//! every layer of the forward and backward passes and accounts each tensor
//! transfer to DRAM or to the on-chip global buffer, following the dataflow
//! of the paper's Fig. 2:
//!
//! - producer→consumer feature tensors stay on chip within an MBS group (or
//!   under IL when whole-mini-batch footprints fit), otherwise they are
//!   written to and re-read from DRAM;
//! - tensors needed during back propagation (conv/FC inputs, norm inputs,
//!   max-pool inputs) are stored to DRAM during forward and reloaded during
//!   backward under *every* configuration (their reuse distance exceeds any
//!   buffer);
//! - weights are read once per pass per sub-batch iteration, and weight
//!   gradients are accumulated across sub-batch iterations through DRAM
//!   (`2·it − 1` partial-sum transfers);
//! - normalization layers stream their input twice (statistics + apply) and
//!   convolutions stream the output gradient twice (weight-gradient and
//!   data-gradient GEMMs); buffering removes the second DRAM read;
//! - ReLU gradients use 1-bit masks under MBS instead of 16-bit values
//!   (paper §3 "Back Propagation").

use serde::{Deserialize, Serialize};

use mbs_cnn::{Block, Layer, LayerKind, Network, Node, PoolKind};

use crate::config::ExecConfig;
use crate::footprint::whole_batch_fits;
use crate::schedule::Schedule;

/// Bytes moved by one layer (forward + backward of one training step, one
/// core's share of the mini-batch).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerTraffic {
    /// The layer (cloned from the network for self-contained reports).
    pub layer: Layer,
    /// Index of the network node that contains the layer.
    pub node: usize,
    /// Index of the schedule group that contains the layer's node.
    pub group: usize,
    /// Sub-batch size of that group.
    pub sub_batch: usize,
    /// Sub-batch iterations of that group.
    pub iterations: u64,
    /// Overlappable DRAM bytes in the forward pass.
    pub dram_fwd: u64,
    /// Overlappable DRAM bytes in the backward pass.
    pub dram_bwd: u64,
    /// Non-overlappable DRAM bytes: the *extra* weight-gradient partial-sum
    /// reads/writes beyond the single baseline store (paper §6: this time
    /// "cannot be hidden").
    pub dram_serial: u64,
    /// Global-buffer bytes in the forward pass (on-chip transfers only;
    /// DRAM staging is added at report level).
    pub gbuf_fwd: u64,
    /// Global-buffer bytes in the backward pass.
    pub gbuf_bwd: u64,
}

impl LayerTraffic {
    /// All DRAM bytes attributable to the layer.
    pub fn dram_total(&self) -> u64 {
        self.dram_fwd + self.dram_bwd + self.dram_serial
    }
}

/// Traffic aggregated by cause, for reporting (paper §6 discussion).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Weight/parameter reads (forward + backward), including sub-batch
    /// re-reads.
    pub weight_read: u64,
    /// Weight-gradient writes plus partial-sum read/write traffic.
    pub weight_grad: u64,
    /// Forward feature reads from DRAM.
    pub fwd_feature_read: u64,
    /// Forward feature transfer writes to DRAM (tensors *not* needed in
    /// backward crossing a group/layer boundary).
    pub fwd_feature_write: u64,
    /// Forward stores of tensors required during back propagation
    /// (including ReLU masks).
    pub stored_write: u64,
    /// Backward reloads of stored tensors.
    pub stored_read: u64,
    /// Backward gradient reads.
    pub bwd_grad_read: u64,
    /// Backward gradient writes.
    pub bwd_grad_write: u64,
}

impl TrafficBreakdown {
    /// Sum of all DRAM traffic.
    pub fn total(&self) -> u64 {
        self.weight_read
            + self.weight_grad
            + self.fwd_feature_read
            + self.fwd_feature_write
            + self.stored_write
            + self.stored_read
            + self.bwd_grad_read
            + self.bwd_grad_write
    }
}

/// Full traffic analysis of one training step on one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Configuration analyzed.
    pub config: ExecConfig,
    /// Per-core mini-batch size.
    pub batch: usize,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerTraffic>,
    /// DRAM traffic by cause.
    pub breakdown: TrafficBreakdown,
}

impl TrafficReport {
    /// Total DRAM bytes for one core's share of the step.
    pub fn dram_bytes(&self) -> u64 {
        self.breakdown.total()
    }

    /// Total DRAM bytes for the whole chip (`cores` cores train disjoint
    /// shards of the mini-batch, so traffic scales linearly).
    pub fn dram_bytes_chip(&self, cores: usize) -> u64 {
        self.dram_bytes() * cores as u64
    }

    /// Global-buffer bytes (on-chip transfers plus staging of all DRAM
    /// traffic through the buffer, per the paper's Fig. 9 datapath).
    pub fn gbuf_bytes(&self) -> u64 {
        let on_chip: u64 = self.layers.iter().map(|l| l.gbuf_fwd + l.gbuf_bwd).sum();
        on_chip + self.dram_bytes()
    }

    /// DRAM bytes grouped by layer-type tag (`conv`, `norm`, `pool`, `fc`,
    /// `sum`, `relu`, `concat`).
    pub fn dram_by_type(&self) -> Vec<(String, u64)> {
        let mut acc: Vec<(String, u64)> = Vec::new();
        for l in &self.layers {
            let tag = l.layer.kind.type_tag().to_owned();
            match acc.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, v)) => *v += l.dram_total(),
                None => acc.push((tag, l.dram_total())),
            }
        }
        acc
    }
}

/// One input operand of a layer visit.
#[derive(Debug, Clone, Copy)]
struct Operand {
    bytes: u64,
    on_chip: bool,
}

/// Context for visiting one layer.
struct Visit<'a> {
    layer: &'a Layer,
    group: usize,
    sub_batch: usize,
    iterations: u64,
    inputs: Vec<Operand>,
    output_on_chip: bool,
    output_stored: bool,
    /// `false` for the first network layer (no dX is produced for the
    /// input samples).
    produce_dx: bool,
    /// `true` when the layer output feeds the loss (final node) — treated
    /// as stored.
    is_final: bool,
}

struct Walker<'n> {
    net: &'n Network,
    schedule: &'n Schedule,
    cfg: ExecConfig,
    batch: u64,
    buffer: usize,
    layers: Vec<LayerTraffic>,
    breakdown: TrafficBreakdown,
}

/// Analyzes the DRAM and global-buffer traffic of one training step of
/// `net` under `schedule`.
///
/// The schedule must cover all nodes of the network (schedules produced by
/// [`crate::MbsScheduler`] always do).
///
/// # Panics
///
/// Panics if the schedule does not cover every node of the network.
///
/// # Examples
///
/// ```
/// use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};
/// use mbs_cnn::networks::resnet;
///
/// let net = resnet(50);
/// let hw = HardwareConfig::default();
/// let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
/// let report = analyze(&net, &schedule, hw.global_buffer_bytes);
/// assert!(report.dram_bytes() > 0);
/// ```
pub fn analyze(net: &Network, schedule: &Schedule, buffer_bytes: usize) -> TrafficReport {
    let covered: usize = schedule.groups().iter().map(|g| g.end - g.start).sum();
    assert_eq!(
        covered,
        net.nodes().len(),
        "schedule must cover the network"
    );
    let mut w = Walker {
        net,
        schedule,
        cfg: schedule.config(),
        batch: schedule.batch() as u64,
        buffer: buffer_bytes,
        layers: Vec::new(),
        breakdown: TrafficBreakdown::default(),
    };
    w.run();
    TrafficReport {
        config: schedule.config(),
        batch: schedule.batch(),
        layers: w.layers,
        breakdown: w.breakdown,
    }
}

impl<'n> Walker<'n> {
    fn run(&mut self) {
        for idx in 0..self.net.nodes().len() {
            let group_idx = self
                .schedule
                .groups()
                .iter()
                .position(|g| g.start <= idx && idx < g.end)
                .expect("covered");
            let node = &self.net.nodes()[idx];
            let node_in_on_chip = self.node_input_on_chip(idx);
            let (out_on_chip, out_stored, is_final) = self.node_output_ctx(idx);
            let first_record = self.layers.len();
            match node {
                Node::Single(layer) => {
                    let v = Visit {
                        layer,
                        group: group_idx,
                        sub_batch: self.schedule.groups()[group_idx].sub_batch,
                        iterations: self.schedule.groups()[group_idx].iterations as u64,
                        inputs: vec![Operand {
                            bytes: layer.input_bytes() as u64 * self.batch,
                            on_chip: node_in_on_chip,
                        }],
                        output_on_chip: out_on_chip,
                        output_stored: out_stored,
                        produce_dx: idx != 0,
                        is_final,
                    };
                    self.visit(v);
                }
                Node::Block(block) => {
                    self.visit_block(
                        block,
                        idx,
                        group_idx,
                        node_in_on_chip,
                        out_on_chip,
                        out_stored,
                        is_final,
                    );
                }
            }
            for rec in &mut self.layers[first_record..] {
                rec.node = idx;
            }
        }
    }

    /// Whether two directly chained layers keep their tensor on chip.
    fn chain_on_chip(&self, producer: &Layer, consumer: &Layer) -> bool {
        if !self.cfg.inter_layer_reuse() {
            return false;
        }
        if self.cfg.is_mbs() {
            return true;
        }
        // IL: whole-mini-batch footprints of both sides must fit.
        whole_batch_fits(producer, self.batch as usize, self.buffer)
            && whole_batch_fits(consumer, self.batch as usize, self.buffer)
    }

    /// Whether a layer can buffer a tensor it streams twice (norm input,
    /// conv output-gradient) instead of re-reading DRAM.
    fn second_pass_on_chip(&self, layer: &Layer) -> bool {
        if !self.cfg.inter_layer_reuse() {
            return false;
        }
        if self.cfg.is_mbs() {
            return true;
        }
        whole_batch_fits(layer, self.batch as usize, self.buffer)
    }

    /// Locality of the tensor flowing from node `idx - 1` into node `idx`.
    fn node_input_on_chip(&self, idx: usize) -> bool {
        if idx == 0 || !self.cfg.inter_layer_reuse() {
            return false;
        }
        if self.cfg.is_mbs() {
            // On chip iff both nodes share a group.
            let g = self.schedule.group_of(idx);
            return g.start < idx;
        }
        let producer = last_layer(&self.net.nodes()[idx - 1]);
        let consumer = first_layer(&self.net.nodes()[idx]);
        self.chain_on_chip(producer, consumer)
    }

    /// (`on_chip`, `stored`, `is_final`) for the output tensor of node
    /// `idx`.
    fn node_output_ctx(&self, idx: usize) -> (bool, bool, bool) {
        if idx + 1 == self.net.nodes().len() {
            // Final output feeds the loss: always stored.
            return (false, true, true);
        }
        let on_chip = self.node_input_on_chip(idx + 1);
        let stored = consumers_need_stored(&self.net.nodes()[idx + 1]);
        (on_chip, stored, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_block(
        &mut self,
        block: &Block,
        node_idx: usize,
        group_idx: usize,
        node_in_on_chip: bool,
        out_on_chip: bool,
        out_stored: bool,
        is_final: bool,
    ) {
        let g = &self.schedule.groups()[group_idx];
        let (sub, it) = (g.sub_batch, g.iterations as u64);
        let n = self.batch;
        let block_in_bytes = block.input.bytes() as u64 * n;

        let mut merge_operands: Vec<Operand> = Vec::new();
        let mut block_input_dram_reads_needed = false;

        // Branches execute shortcut/auxiliary first and the main branch
        // (index 0) last, so the main output chains directly into the merge
        // even without MBS2's inter-branch provisioning.
        let branch_count = block.branches.len();
        let order: Vec<usize> = if branch_count > 1 {
            (1..branch_count).chain(std::iter::once(0)).collect()
        } else {
            vec![0]
        };
        let first_processed = order
            .iter()
            .copied()
            .find(|&bi| !block.branches[bi].is_empty())
            .unwrap_or(0);
        let last_processed = order
            .iter()
            .rev()
            .copied()
            .find(|&bi| !block.branches[bi].is_empty())
            .unwrap_or(0);

        for &bi in &order {
            let branch = &block.branches[bi];
            if branch.is_empty() {
                // Identity shortcut: the block input itself is a merge
                // operand, held on chip only under MBS2's provisioning.
                let on_chip = self.cfg.branch_reuse() && self.cfg.inter_layer_reuse();
                if !on_chip {
                    block_input_dram_reads_needed = true;
                }
                merge_operands.push(Operand {
                    bytes: block_in_bytes,
                    on_chip,
                });
                continue;
            }
            for (li, layer) in branch.iter().enumerate() {
                let input_on_chip = if li == 0 {
                    if bi == first_processed {
                        node_in_on_chip
                    } else {
                        let oc = self.extra_branch_input_on_chip(node_idx, layer);
                        if !oc {
                            block_input_dram_reads_needed = true;
                        }
                        oc
                    }
                } else {
                    self.chain_on_chip(&branch[li - 1], layer)
                };
                let last_in_branch = li + 1 == branch.len();
                let output_on_chip = if last_in_branch {
                    if bi == last_processed {
                        // Direct producer→consumer chain into the merge.
                        self.chain_on_chip(layer, &block.merge)
                    } else {
                        // Operand must wait for the remaining branches.
                        self.merge_operand_on_chip(layer, &block.merge)
                    }
                } else {
                    self.chain_on_chip(layer, &branch[li + 1])
                };
                let consumer_kind = if last_in_branch {
                    &block.merge.kind
                } else {
                    &branch[li + 1].kind
                };
                let v = Visit {
                    layer,
                    group: group_idx,
                    sub_batch: sub,
                    iterations: it,
                    inputs: vec![Operand {
                        bytes: layer.input_bytes() as u64 * n,
                        on_chip: input_on_chip,
                    }],
                    output_on_chip,
                    output_stored: consumer_kind.needs_input_in_backward(),
                    produce_dx: node_idx != 0 || li != 0,
                    is_final: false,
                };
                if last_in_branch {
                    merge_operands.push(Operand {
                        bytes: layer.output_bytes() as u64 * n,
                        on_chip: output_on_chip,
                    });
                }
                self.visit(v);
            }
        }

        // If any branch (or the identity shortcut) must read the block
        // input from DRAM, make sure a copy exists there: the producer only
        // wrote one if the tensor was stored-for-backward or crossed a
        // group boundary.
        if block_input_dram_reads_needed {
            let stored = consumers_need_stored(&self.net.nodes()[node_idx]);
            if node_in_on_chip && !stored {
                self.breakdown.fwd_feature_write += block_in_bytes;
                if let Some(first) = self.layers.iter_mut().rev().find(|l| {
                    // attribute the availability write to this block's first
                    // visited layer for time accounting
                    l.group == group_idx
                }) {
                    first.dram_fwd += block_in_bytes;
                    first.dram_bwd += block_in_bytes; // mirrored in backward
                }
                self.breakdown.bwd_grad_read += block_in_bytes;
            }
        }

        // Merge layer (Add / Concat), then post layers.
        let mut chain_prev = &block.merge;
        let post_first = block.post.first();
        let merge_out_on_chip = match post_first {
            Some(p) => self.chain_on_chip(&block.merge, p),
            None => out_on_chip,
        };
        let merge_stored = match post_first {
            Some(p) => p.kind.needs_input_in_backward(),
            None => out_stored,
        };
        let v = Visit {
            layer: &block.merge,
            group: group_idx,
            sub_batch: sub,
            iterations: it,
            inputs: merge_operands,
            output_on_chip: merge_out_on_chip,
            output_stored: merge_stored,
            produce_dx: true,
            is_final: is_final && block.post.is_empty(),
        };
        self.visit(v);

        for (pi, layer) in block.post.iter().enumerate() {
            let last = pi + 1 == block.post.len();
            let input_on_chip = self.chain_on_chip(chain_prev, layer);
            let output_on_chip = if last {
                out_on_chip
            } else {
                self.chain_on_chip(layer, &block.post[pi + 1])
            };
            let output_stored = if last {
                out_stored
            } else {
                block.post[pi + 1].kind.needs_input_in_backward()
            };
            let v = Visit {
                layer,
                group: group_idx,
                sub_batch: sub,
                iterations: it,
                inputs: vec![Operand {
                    bytes: layer.input_bytes() as u64 * n,
                    on_chip: input_on_chip,
                }],
                output_on_chip,
                output_stored,
                produce_dx: true,
                is_final: is_final && last,
            };
            self.visit(v);
            chain_prev = layer;
        }
    }

    /// Locality of the shared block input for branches beyond the first:
    /// provisioned on chip by MBS2 (Eq. 1/2); re-read from DRAM by MBS1;
    /// IL keeps it if the fit rule holds for the producer/consumer pair.
    fn extra_branch_input_on_chip(&self, node_idx: usize, consumer: &Layer) -> bool {
        if self.cfg.branch_reuse() {
            return self.cfg.inter_layer_reuse();
        }
        if self.cfg.is_mbs() || !self.cfg.inter_layer_reuse() || node_idx == 0 {
            return false;
        }
        let producer = last_layer(&self.net.nodes()[node_idx - 1]);
        self.chain_on_chip(producer, consumer)
    }

    /// Whether a branch output operand waits on chip for the merge.
    fn merge_operand_on_chip(&self, producer: &Layer, merge: &Layer) -> bool {
        if self.cfg.branch_reuse() {
            return true;
        }
        if self.cfg.is_mbs() || !self.cfg.inter_layer_reuse() {
            return false;
        }
        self.chain_on_chip(producer, merge)
    }

    /// Accounts forward and backward traffic for one layer.
    fn visit(&mut self, v: Visit<'_>) {
        let n = self.batch;
        let layer = v.layer;
        let it = v.iterations;
        let out_b = layer.output_bytes() as u64 * n;
        let in_b_total: u64 = v.inputs.iter().map(|o| o.bytes).sum();
        let w = layer.param_bytes() as u64;
        let is_conv_like = matches!(
            layer.kind,
            LayerKind::Conv { .. } | LayerKind::FullyConnected
        );
        let is_norm = matches!(layer.kind, LayerKind::Norm { .. });
        let second_pass_buffered = self.second_pass_on_chip(layer);

        let mut rec = LayerTraffic {
            layer: layer.clone(),
            node: 0, // patched by the caller after the node finishes
            group: v.group,
            sub_batch: v.sub_batch,
            iterations: it,
            dram_fwd: 0,
            dram_bwd: 0,
            dram_serial: 0,
            gbuf_fwd: 0,
            gbuf_bwd: 0,
        };

        // ------------------------------------------------ forward pass
        // Parameters are re-read once per sub-batch iteration.
        if w > 0 {
            rec.dram_fwd += w * it;
            self.breakdown.weight_read += w * it;
        }
        for op in &v.inputs {
            let passes: u64 = if is_norm { 2 } else { 1 };
            if op.on_chip {
                rec.gbuf_fwd += op.bytes * passes;
            } else if passes == 2 && second_pass_buffered {
                rec.dram_fwd += op.bytes;
                rec.gbuf_fwd += op.bytes;
                self.breakdown.fwd_feature_read += op.bytes;
            } else {
                rec.dram_fwd += op.bytes * passes;
                self.breakdown.fwd_feature_read += op.bytes * passes;
            }
        }
        let stored = v.output_stored || v.is_final;
        if stored {
            rec.dram_fwd += out_b;
            self.breakdown.stored_write += out_b;
        }
        if v.output_on_chip {
            rec.gbuf_fwd += out_b;
        } else if !stored {
            rec.dram_fwd += out_b;
            self.breakdown.fwd_feature_write += out_b;
        }

        // ReLU backward sign source: 1-bit masks under MBS; otherwise the
        // stored 16-bit activation (stored here if no consumer stores it).
        let mut relu_mask_read: u64 = 0;
        if matches!(layer.kind, LayerKind::Relu) {
            if self.cfg.is_mbs() {
                let mask = (layer.input.elems() as u64 * n).div_ceil(8);
                rec.dram_fwd += mask;
                self.breakdown.stored_write += mask;
                relu_mask_read = mask;
            } else if stored {
                relu_mask_read = out_b; // reuse the consumer-stored tensor
            } else {
                rec.dram_fwd += out_b;
                self.breakdown.stored_write += out_b;
                relu_mask_read = out_b;
            }
        }

        // ----------------------------------------------- backward pass
        // Output gradient (dY): mirrors the forward output locality;
        // convolutions stream it twice (dW and dX GEMMs).
        let dy_passes: u64 = if is_conv_like { 2 } else { 1 };
        if v.output_on_chip {
            rec.gbuf_bwd += out_b * dy_passes;
        } else if dy_passes == 2 && second_pass_buffered {
            rec.dram_bwd += out_b;
            rec.gbuf_bwd += out_b;
            self.breakdown.bwd_grad_read += out_b;
        } else {
            rec.dram_bwd += out_b * dy_passes;
            self.breakdown.bwd_grad_read += out_b * dy_passes;
        }

        // Input gradients (dX): mirror of each forward operand.
        if v.produce_dx {
            for op in &v.inputs {
                if op.on_chip {
                    rec.gbuf_bwd += op.bytes;
                } else {
                    rec.dram_bwd += op.bytes;
                    self.breakdown.bwd_grad_write += op.bytes;
                }
            }
        }

        // Reloads of tensors stored during forward.
        let reload = match layer.kind {
            // z (the conv/FC input) streams once for the weight-gradient
            // GEMM.
            LayerKind::Conv { .. } | LayerKind::FullyConnected => in_b_total,
            // Norm re-reads its input for parameter and data gradients;
            // buffering collapses the two passes into one DRAM read.
            LayerKind::Norm { .. } => {
                if second_pass_buffered {
                    in_b_total
                } else {
                    2 * in_b_total
                }
            }
            LayerKind::Pool {
                kind: PoolKind::Max,
                ..
            } => in_b_total,
            LayerKind::Relu => relu_mask_read,
            _ => 0,
        };
        rec.dram_bwd += reload;
        self.breakdown.stored_read += reload;

        // Weights re-read for the data-gradient GEMM.
        if w > 0 && is_conv_like {
            rec.dram_bwd += w * it;
            self.breakdown.weight_read += w * it;
        }
        // Parameter gradients: one store at it == 1; partial-sum
        // accumulation through DRAM otherwise (it writes + it-1 reads).
        if w > 0 {
            let base = w;
            let partial_extra = if it > 1 { (2 * it - 2) * w } else { 0 };
            rec.dram_bwd += base;
            rec.dram_serial += partial_extra;
            self.breakdown.weight_grad += base + partial_extra;
        }

        self.layers.push(rec);
    }
}

fn first_layer(node: &Node) -> &Layer {
    match node {
        Node::Single(l) => l,
        Node::Block(b) => b
            .branches
            .iter()
            .find_map(|br| br.first())
            .unwrap_or(&b.merge),
    }
}

fn last_layer(node: &Node) -> &Layer {
    match node {
        Node::Single(l) => l,
        Node::Block(b) => b.post.last().unwrap_or(&b.merge),
    }
}

/// Whether any first consumer inside `node` needs its input tensor during
/// back propagation (which forces a forward store of that tensor).
fn consumers_need_stored(node: &Node) -> bool {
    match node {
        Node::Single(l) => l.kind.needs_input_in_backward(),
        Node::Block(b) => b
            .branches
            .iter()
            .map(|br| br.first().unwrap_or(&b.merge))
            .any(|l| l.kind.needs_input_in_backward()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::scheduler::MbsScheduler;
    use mbs_cnn::networks::{resnet, toy};

    fn traffic(config: ExecConfig, net: &Network) -> TrafficReport {
        let hw = HardwareConfig::default();
        let s = MbsScheduler::new(net, &hw, config).schedule();
        analyze(net, &s, hw.global_buffer_bytes)
    }

    #[test]
    fn baseline_and_archopt_have_identical_traffic() {
        let net = toy::tiny_resnet(2, 8);
        let a = traffic(ExecConfig::Baseline, &net);
        let b = traffic(ExecConfig::ArchOpt, &net);
        assert_eq!(a.dram_bytes(), b.dram_bytes());
    }

    #[test]
    fn il_never_exceeds_baseline() {
        for net in [toy::tiny_resnet(2, 8), toy::fig1_toy()] {
            let base = traffic(ExecConfig::Baseline, &net);
            let il = traffic(ExecConfig::InterLayer, &net);
            assert!(il.dram_bytes() <= base.dram_bytes(), "{}", net.name());
        }
    }

    #[test]
    fn mbs_reduces_resnet50_traffic_substantially() {
        let net = resnet(50);
        let base = traffic(ExecConfig::Baseline, &net).dram_bytes() as f64;
        let mbs1 = traffic(ExecConfig::Mbs1, &net).dram_bytes() as f64;
        let mbs2 = traffic(ExecConfig::Mbs2, &net).dram_bytes() as f64;
        assert!(mbs1 / base < 0.45, "mbs1/base = {}", mbs1 / base);
        assert!(mbs2 <= mbs1 * 1.001, "mbs2 {mbs2} mbs1 {mbs1}");
    }

    #[test]
    fn traffic_scales_with_batch_for_baseline() {
        let net = toy::fig1_toy();
        let hw = HardwareConfig::default();
        let s8 = MbsScheduler::new(&net, &hw, ExecConfig::Baseline)
            .with_batch(8)
            .schedule();
        let s16 = MbsScheduler::new(&net, &hw, ExecConfig::Baseline)
            .with_batch(16)
            .schedule();
        let t8 = analyze(&net, &s8, hw.global_buffer_bytes);
        let t16 = analyze(&net, &s16, hw.global_buffer_bytes);
        // Feature traffic doubles; weight traffic is batch-independent.
        let w8 = t8.breakdown.weight_read + t8.breakdown.weight_grad;
        let w16 = t16.breakdown.weight_read + t16.breakdown.weight_grad;
        assert_eq!(w8, w16);
        assert_eq!((t8.dram_bytes() - w8) * 2, t16.dram_bytes() - w16);
    }

    #[test]
    fn per_layer_records_cover_all_layers() {
        let net = resnet(50);
        let t = traffic(ExecConfig::Mbs2, &net);
        assert_eq!(t.layers.len(), net.layers().count());
        let sum: u64 = t.layers.iter().map(LayerTraffic::dram_total).sum();
        // Availability writes are attributed to both breakdown and records.
        assert!(sum >= t.dram_bytes() - t.breakdown.fwd_feature_write);
    }

    #[test]
    fn by_type_includes_conv_and_norm() {
        let net = resnet(50);
        let t = traffic(ExecConfig::Baseline, &net);
        let types: Vec<String> = t.dram_by_type().into_iter().map(|(k, _)| k).collect();
        assert!(types.iter().any(|t| t == "conv"));
        assert!(types.iter().any(|t| t == "norm"));
    }
}
