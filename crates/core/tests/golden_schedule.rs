//! Golden-schedule snapshots: the exact groups and per-group sub-batch
//! sizes `MbsScheduler` emits for ResNet50 under the paper's default
//! hardware, pinned as literals so scheduler refactors cannot silently
//! drift the plan that now *drives real execution* (the grouped training
//! runtime in `mbs-train` runs whatever this scheduler says).
//!
//! If a change to the footprint or traffic model moves these values
//! *intentionally*, update the snapshot in the same commit and say why in
//! the commit message.

use mbs_cnn::networks::resnet;
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler, Schedule};

/// `(start, end, sub_batch)` per group.
fn shape(s: &Schedule) -> Vec<(usize, usize, usize)> {
    s.groups()
        .iter()
        .map(|g| (g.start, g.end, g.sub_batch))
        .collect()
}

#[test]
fn resnet50_mbs1_greedy_snapshot() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    assert_eq!(
        shape(&s),
        vec![(0, 8, 3), (8, 12, 6), (12, 17, 13), (17, 24, 17)]
    );
    assert_eq!(s.batch(), 32);
    assert!(s.fits());
}

#[test]
fn resnet50_mbs1_optimal_snapshot() {
    // The DP optimum peels the final FC-side group off at full batch — the
    // ≈1 % refinement the paper's footnote 1 found over greedy.
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).optimal_schedule();
    assert_eq!(
        shape(&s),
        vec![
            (0, 8, 3),
            (8, 12, 6),
            (12, 17, 13),
            (17, 23, 17),
            (23, 24, 32)
        ]
    );
}

#[test]
fn resnet50_mbs2_greedy_snapshot() {
    // Branch-reuse provisioning (Eq. 1) shrinks sub-batches slightly —
    // block inputs stay resident — but buys inter-branch locality.
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
    assert_eq!(
        shape(&s),
        vec![(0, 8, 2), (8, 12, 5), (12, 18, 11), (18, 24, 23)]
    );
}

#[test]
fn resnet50_mbs2_optimal_snapshot() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).optimal_schedule();
    assert_eq!(
        shape(&s),
        vec![
            (0, 8, 2),
            (8, 12, 5),
            (12, 18, 11),
            (18, 23, 23),
            (23, 24, 32)
        ]
    );
}
