//! Integration tests pinning the *shape* of the paper's Fig. 10c traffic
//! results: who wins, by roughly what factor.

use mbs_cnn::networks::{alexnet, inception_v3, resnet};
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

fn ratios(net: &mbs_cnn::Network) -> Vec<(ExecConfig, f64)> {
    let hw = HardwareConfig::default();
    let base = {
        let s = MbsScheduler::new(net, &hw, ExecConfig::ArchOpt).schedule();
        analyze(net, &s, hw.global_buffer_bytes).dram_bytes() as f64
    };
    ExecConfig::all()
        .into_iter()
        .map(|cfg| {
            let s = MbsScheduler::new(net, &hw, cfg).schedule();
            let t = analyze(net, &s, hw.global_buffer_bytes).dram_bytes() as f64;
            (cfg, t / base)
        })
        .collect()
}

#[test]
fn resnet50_traffic_shape_matches_fig10c() {
    let net = resnet(50);
    let r = ratios(&net);
    let get = |c: ExecConfig| r.iter().find(|(k, _)| *k == c).unwrap().1;
    println!("ResNet50 traffic vs ArchOpt: {r:?}");
    // Paper: IL 0.84, MBS-FS 0.34, MBS1 0.25, MBS2 0.22.
    assert!(
        (0.70..1.0).contains(&get(ExecConfig::InterLayer)),
        "IL {}",
        get(ExecConfig::InterLayer)
    );
    assert!(
        (0.2..0.55).contains(&get(ExecConfig::MbsFs)),
        "FS {}",
        get(ExecConfig::MbsFs)
    );
    assert!(
        (0.15..0.40).contains(&get(ExecConfig::Mbs1)),
        "MBS1 {}",
        get(ExecConfig::Mbs1)
    );
    assert!(
        (0.12..0.35).contains(&get(ExecConfig::Mbs2)),
        "MBS2 {}",
        get(ExecConfig::Mbs2)
    );
    // Ordering: MBS2 <= MBS1 <= IL <= Baseline
    assert!(get(ExecConfig::Mbs2) <= get(ExecConfig::Mbs1) + 1e-9);
    assert!(get(ExecConfig::Mbs1) < get(ExecConfig::InterLayer));
}

#[test]
fn inception_v3_traffic_shape_matches_fig10c() {
    let net = inception_v3();
    let r = ratios(&net);
    let get = |c: ExecConfig| r.iter().find(|(k, _)| *k == c).unwrap().1;
    println!("InceptionV3 traffic vs ArchOpt: {r:?}");
    // Paper: IL 0.96, MBS-FS 0.58, MBS1 0.33, MBS2 0.29. Our IL saves a
    // bit more (the duplicated-branch 8x8 modules fit the buffer).
    assert!(get(ExecConfig::InterLayer) > 0.7);
    assert!(
        (0.35..0.80).contains(&get(ExecConfig::MbsFs)),
        "FS {}",
        get(ExecConfig::MbsFs)
    );
    assert!(
        (0.2..0.50).contains(&get(ExecConfig::Mbs1)),
        "MBS1 {}",
        get(ExecConfig::Mbs1)
    );
    assert!(get(ExecConfig::Mbs2) <= get(ExecConfig::Mbs1) + 1e-9);
}

#[test]
fn alexnet_mbs_fs_increases_traffic() {
    let net = alexnet();
    let r = ratios(&net);
    let get = |c: ExecConfig| r.iter().find(|(k, _)| *k == c).unwrap().1;
    println!("AlexNet traffic vs ArchOpt: {r:?}");
    // Paper: MBS-FS inflates AlexNet traffic 2.6x (FC weight re-reads);
    // MBS1/MBS2 land at 0.60.
    assert!(
        get(ExecConfig::MbsFs) > 1.5,
        "FS {}",
        get(ExecConfig::MbsFs)
    );
    assert!(
        (0.35..0.95).contains(&get(ExecConfig::Mbs1)),
        "MBS1 {}",
        get(ExecConfig::Mbs1)
    );
}

#[test]
fn resnet50_schedule_shape_matches_fig5() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).schedule();
    println!("{}", s.describe(&net));
    // Paper Fig. 5: a handful of groups with growing sub-batches (3 .. 16).
    assert!(
        (2..=8).contains(&s.groups().len()),
        "groups {}",
        s.groups().len()
    );
    let first = s.groups().first().unwrap();
    let last = s.groups().last().unwrap();
    assert!(first.sub_batch <= 6, "first sub {}", first.sub_batch);
    assert!(last.sub_batch >= 8, "last sub {}", last.sub_batch);
}
