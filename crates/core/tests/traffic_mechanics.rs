//! Pins the individual mechanisms of the traffic model against hand
//! calculations on minimal networks: weight-gradient partial sums, ReLU
//! masks, norm double-reads, and conv output-gradient double-reads.

use mbs_cnn::{FeatureShape, Network, NetworkBuilder, NormKind};
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

const WORD: u64 = 2;

/// One conv layer, nothing else.
fn single_conv(batch: usize) -> Network {
    NetworkBuilder::new("one-conv", FeatureShape::new(4, 8, 8), batch)
        .conv("c", 8, 3, 1, 1)
        .expect("conv")
        .build()
}

fn report(net: &Network, cfg: ExecConfig, buffer: usize) -> mbs_core::TrafficReport {
    let hw = HardwareConfig::default().with_global_buffer(buffer);
    let s = MbsScheduler::new(net, &hw, cfg).schedule();
    analyze(net, &s, buffer)
}

#[test]
fn single_conv_baseline_traffic_by_hand() {
    let batch = 4u64;
    let net = single_conv(batch as usize);
    let t = report(&net, ExecConfig::Baseline, 10 << 20);

    let in_b = 4 * 8 * 8 * WORD * batch;
    let out_b = 8 * 8 * 8 * WORD * batch;
    let w = 8 * 4 * 3 * 3 * WORD;

    // Forward: read input, read weights, store output (final => stored).
    // Backward: dY read twice (dW + dX GEMMs, no buffering in baseline),
    // no dX (first layer), reload input once, read W once, write dW once.
    let expected = (in_b + w + out_b) + (2 * out_b + in_b + w + w);
    assert_eq!(t.dram_bytes(), expected);
}

#[test]
fn conv_dy_double_read_is_saved_by_mbs() {
    let batch = 4u64;
    let net = single_conv(batch as usize);
    let base = report(&net, ExecConfig::Baseline, 10 << 20);
    let mbs = report(&net, ExecConfig::Mbs1, 10 << 20);
    let out_b = 8 * 8 * 8 * WORD * batch;
    // A single-layer net has no inter-layer reuse at all; the only MBS
    // saving is the buffered second dY pass.
    assert_eq!(base.dram_bytes() - mbs.dram_bytes(), out_b);
}

#[test]
fn weight_gradient_partials_cost_2it_minus_1() {
    let batch = 8usize;
    let net = single_conv(batch);
    let w = 8 * 4 * 3 * 3 * WORD;

    // Shrink the buffer until the conv runs in sub-batches.
    let space = (4 * 8 * 8 + 8 * 8 * 8) * WORD as usize; // in+out per sample
    let buffer = space * 2; // sub-batch 2 -> 4 iterations
    let hw = HardwareConfig::default().with_global_buffer(buffer);
    let s = MbsScheduler::new(&net, &hw, ExecConfig::MbsFs).schedule();
    assert_eq!(s.groups()[0].iterations, 4);
    let t = analyze(&net, &s, buffer);

    // dW traffic = (2*it - 1) * w; serial portion = (2*it - 2) * w.
    assert_eq!(t.breakdown.weight_grad, (2 * 4 - 1) * w);
    let serial: u64 = t.layers.iter().map(|l| l.dram_serial).sum();
    assert_eq!(serial, (2 * 4 - 2) * w);
    // Weights re-read once per iteration per pass (forward + backward).
    assert_eq!(t.breakdown.weight_read, 2 * 4 * w);
}

#[test]
fn relu_mask_is_one_sixteenth_under_mbs() {
    let batch = 4u64;
    // conv -> relu -> conv chain: the relu output is stored anyway (conv
    // input), so under MBS only the 1-bit mask is added.
    let net = NetworkBuilder::new("c-r-c", FeatureShape::new(4, 8, 8), batch as usize)
        .conv("c1", 8, 3, 1, 1)
        .expect("c1")
        .relu("r")
        .conv("c2", 8, 3, 1, 1)
        .expect("c2")
        .build();
    let t = report(&net, ExecConfig::Mbs1, 10 << 20);
    let relu = t
        .layers
        .iter()
        .find(|l| l.layer.name == "r")
        .expect("relu record");
    let elems = 8 * 8 * 8 * batch;
    let mask = elems.div_ceil(8);
    let out_b = elems * WORD;
    // Forward: the relu output is stored to DRAM (it is c2's backward
    // input z, attributed to the producing relu) plus the 1-bit mask.
    // Backward: dY and dX stay on chip; only the mask is re-read.
    assert_eq!(relu.dram_fwd, out_b + mask);
    assert_eq!(relu.dram_bwd, mask);
}

#[test]
fn norm_second_pass_saved_when_buffered() {
    let batch = 4u64;
    let net = NetworkBuilder::new("c-n", FeatureShape::new(4, 8, 8), batch as usize)
        .conv("c", 8, 3, 1, 1)
        .expect("conv")
        .norm("n", NormKind::Group { groups: 4 })
        .build();
    let base = report(&net, ExecConfig::Baseline, 10 << 20);
    let tiny_il = report(&net, ExecConfig::InterLayer, 1); // nothing fits
                                                           // With a 1-byte buffer IL degenerates to baseline exactly.
    assert_eq!(base.dram_bytes(), tiny_il.dram_bytes());

    let il = report(&net, ExecConfig::InterLayer, 10 << 20);
    // In baseline the norm's backward re-reads its stored input twice and
    // writes dX to DRAM; buffering saves the second reload and the chained
    // dX transfer (conv consumes it on chip): two input-sized savings.
    assert!(il.dram_bytes() < base.dram_bytes());
    let norm_base = base.layers.iter().find(|l| l.layer.name == "n").unwrap();
    let norm_il = il.layers.iter().find(|l| l.layer.name == "n").unwrap();
    let in_b = 8 * 8 * 8 * WORD * batch;
    assert_eq!(norm_base.dram_bwd - norm_il.dram_bwd, 2 * in_b);
}

#[test]
fn group_boundary_costs_one_round_trip() {
    // Two convs in separate groups vs one group: the boundary tensor pays
    // a write+read when it is not needed for backward... conv2 needs its
    // input stored anyway, so grouping saves exactly the forward re-read.
    let batch = 4u64;
    let net = NetworkBuilder::new("c-c", FeatureShape::new(4, 8, 8), batch as usize)
        .conv("c1", 8, 3, 1, 1)
        .expect("c1")
        .conv("c2", 8, 3, 1, 1)
        .expect("c2")
        .build();
    let hw = HardwareConfig::default();
    let split = mbs_core::Schedule::new(
        ExecConfig::Mbs1,
        batch as usize,
        vec![
            mbs_core::Group::new(0, 1, batch as usize, batch as usize),
            mbs_core::Group::new(1, 2, batch as usize, batch as usize),
        ],
        true,
    );
    let joined = mbs_core::Schedule::new(
        ExecConfig::Mbs1,
        batch as usize,
        vec![mbs_core::Group::new(0, 2, batch as usize, batch as usize)],
        true,
    );
    let ts = analyze(&net, &split, hw.global_buffer_bytes);
    let tj = analyze(&net, &joined, hw.global_buffer_bytes);
    let mid_b = 8 * 8 * 8 * WORD * batch;
    // Saved by joining: c2's forward read of the boundary tensor, c2's
    // backward dX write toward c1, and c1's backward dY read (it chains
    // from c2's backward on chip). The forward store of the tensor happens
    // either way — c2 needs it as z.
    assert_eq!(ts.dram_bytes() - tj.dram_bytes(), 3 * mid_b);
}
