//! Serde round-trip coverage for [`Schedule`]: schedules are now consumed
//! across crate boundaries (the grouped training runtime) and recorded in
//! bench reports, so serialize → deserialize must reproduce them exactly —
//! matching the `Network` round-trip coverage in `cnn/tests/proptest_ir.rs`.

use mbs_cnn::networks::{resnet, toy};
use mbs_core::{ExecConfig, Group, HardwareConfig, MbsScheduler, Schedule};

fn round_trip(s: &Schedule) -> Schedule {
    let json = serde_json::to_string(s).expect("serialize schedule");
    serde_json::from_str(&json).expect("deserialize schedule")
}

#[test]
fn scheduler_output_round_trips_for_every_config() {
    let net = resnet(50);
    let hw = HardwareConfig::default();
    for cfg in ExecConfig::all() {
        let s = MbsScheduler::new(&net, &hw, cfg).schedule();
        assert_eq!(round_trip(&s), s, "{cfg} schedule must round-trip");
    }
}

#[test]
fn hand_built_and_toy_schedules_round_trip() {
    let hand = Schedule::new(
        ExecConfig::Mbs1,
        8,
        vec![Group::new(0, 3, 2, 8), Group::new(3, 7, 8, 8)],
        false,
    );
    assert_eq!(round_trip(&hand), hand);

    let net = toy::runtime_mix(8, 8);
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).optimal_schedule();
    let back = round_trip(&s);
    assert_eq!(back, s);
    // Accessors read identically through the round trip.
    assert_eq!(back.sub_batches(), s.sub_batches());
    assert_eq!(back.node_count(), s.node_count());
    assert_eq!(back.min_sub_batch(), s.min_sub_batch());
}
