//! Property-based tests of the MBS scheduler over randomized networks and
//! hardware parameters.

use proptest::prelude::*;

use mbs_cnn::networks::toy::{conv_chain, tiny_resnet};
use mbs_cnn::FeatureShape;
use mbs_core::footprint::node_space;
use mbs_core::{analyze, ExecConfig, HardwareConfig, MbsScheduler};

fn buffer_strategy() -> impl Strategy<Value = usize> {
    // 256 KiB .. 16 MiB buffers.
    (256usize..16_384).prop_map(|kib| kib * 1024)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every schedule partitions the node list exactly once, whatever the
    /// network shape, batch, buffer, and configuration.
    #[test]
    fn schedules_partition_the_network(
        widths in proptest::collection::vec(4usize..48, 1..5),
        batch in 1usize..33,
        buffer in buffer_strategy(),
        cfg_idx in 0usize..6,
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), batch);
        let hw = HardwareConfig::default().with_global_buffer(buffer);
        let cfg = ExecConfig::all()[cfg_idx];
        let s = MbsScheduler::new(&net, &hw, cfg).with_batch(batch).schedule();
        let covered: usize = s.groups().iter().map(|g| g.end - g.start).sum();
        prop_assert_eq!(covered, net.nodes().len());
        let mut expected = 0;
        for g in s.groups() {
            prop_assert_eq!(g.start, expected);
            expected = g.end;
        }
    }

    /// Group iteration counts always equal ceil(batch / sub_batch) and the
    /// sub-batch sequence re-assembles the mini-batch.
    #[test]
    fn iteration_math_is_consistent(
        blocks in 1usize..3,
        batch in 1usize..33,
        buffer in buffer_strategy(),
    ) {
        let net = tiny_resnet(blocks, batch);
        let hw = HardwareConfig::default().with_global_buffer(buffer);
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).with_batch(batch).schedule();
        for g in s.groups() {
            prop_assert_eq!(g.iterations, batch.div_ceil(g.sub_batch));
            let total: usize = g.sub_batch_sizes(batch).iter().sum();
            prop_assert_eq!(total, batch);
        }
    }

    /// When the schedule reports `fits`, every group's footprint respects
    /// the buffer.
    #[test]
    fn fitting_schedules_respect_the_buffer(
        blocks in 1usize..3,
        batch in 1usize..17,
        buffer in buffer_strategy(),
    ) {
        let net = tiny_resnet(blocks, batch);
        let hw = HardwareConfig::default().with_global_buffer(buffer);
        for cfg in [ExecConfig::Mbs1, ExecConfig::Mbs2] {
            let s = MbsScheduler::new(&net, &hw, cfg).with_batch(batch).schedule();
            if !s.fits() {
                continue;
            }
            for g in s.groups() {
                for node in &net.nodes()[g.start..g.end] {
                    prop_assert!(
                        node_space(node, cfg.branch_reuse()) * g.sub_batch <= buffer,
                        "node {} breaks the buffer", node.name()
                    );
                }
            }
        }
    }

    /// Traffic ordering invariants hold on arbitrary chains: reuse never
    /// hurts, and MBS1 traffic is never above the ungrouped serialization.
    #[test]
    fn reuse_never_increases_traffic(
        widths in proptest::collection::vec(4usize..48, 1..5),
        batch in 1usize..17,
        buffer in buffer_strategy(),
    ) {
        let net = conv_chain(&widths, FeatureShape::new(3, 32, 32), batch);
        let hw = HardwareConfig::default().with_global_buffer(buffer);
        let traffic = |cfg: ExecConfig| {
            let s = MbsScheduler::new(&net, &hw, cfg).with_batch(batch).schedule();
            analyze(&net, &s, buffer).dram_bytes()
        };
        let base = traffic(ExecConfig::Baseline);
        let il = traffic(ExecConfig::InterLayer);
        prop_assert!(il <= base, "IL {il} > baseline {base}");
        prop_assert_eq!(traffic(ExecConfig::Baseline), traffic(ExecConfig::ArchOpt));
    }

    /// The greedy optimizer never produces more traffic than MBS-FS's
    /// single group or the per-iteration-count initial grouping.
    #[test]
    fn greedy_beats_or_matches_full_serialization(
        blocks in 1usize..3,
        batch in 2usize..17,
    ) {
        let net = tiny_resnet(blocks, batch);
        let hw = HardwareConfig::default().with_global_buffer(512 * 1024);
        let traffic = |cfg: ExecConfig| {
            let s = MbsScheduler::new(&net, &hw, cfg).with_batch(batch).schedule();
            analyze(&net, &s, hw.global_buffer_bytes).dram_bytes()
        };
        prop_assert!(traffic(ExecConfig::Mbs1) <= traffic(ExecConfig::MbsFs));
    }

    /// The DP optimum is never worse than greedy.
    #[test]
    fn optimal_grouping_dominates_greedy(
        blocks in 1usize..3,
        batch in 2usize..13,
    ) {
        let net = tiny_resnet(blocks, batch);
        let hw = HardwareConfig::default().with_global_buffer(512 * 1024);
        let s = MbsScheduler::new(&net, &hw, ExecConfig::Mbs2).with_batch(batch);
        let greedy = analyze(&net, &s.schedule(), hw.global_buffer_bytes).dram_bytes();
        let optimal =
            analyze(&net, &s.optimal_schedule(), hw.global_buffer_bytes).dram_bytes();
        prop_assert!(optimal <= greedy, "optimal {optimal} > greedy {greedy}");
    }
}
