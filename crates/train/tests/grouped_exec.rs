//! Pins the schedule-driven execution acceptance claims: for a
//! per-sample-normalized model lowered from the IR, a [`GroupedExecutor`]
//! running a multi-group schedule with *distinct* per-group sub-batch
//! sizes produces parameter updates matching `train_step_full` within the
//! same tolerance the uniform `train_step_mbs` already meets — whatever
//! schedule the MBS scheduler (or a hand-built grouping) picks, whether
//! backward consumes **cache stashes** (the default) or **replays** chunk
//! forwards (`MBS_STASH=0`), and across the lowering's whole structural
//! range (residual, Inception-concat, and LRN+FC AlexNet-style toys).
//! Under `MBS_PREC=bf16` the same claims hold with the tolerance widened
//! to the bf16 storage rounding budget (see [`tol`]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::networks::toy;
use mbs_core::{ExecConfig, Group, HardwareConfig, MbsScheduler, Schedule};
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::grouped::GroupedExecutor;
use mbs_train::lower::{lower, LoweredNet};
use mbs_train::Module;
use mbs_train::{data::generate, Sgd};

fn lowered_pair(net: &mbs_cnn::Network, seed: u64) -> (LoweredNet, LoweredNet) {
    let a = lower(net, &mut StdRng::seed_from_u64(seed)).expect("net must lower");
    let b = lower(net, &mut StdRng::seed_from_u64(seed)).expect("net must lower");
    (a, b)
}

/// Loss/parameter tolerance: the uniform executor's f32 pin, widened to
/// the bf16 rounding budget when `MBS_PREC=bf16` stores group boundaries
/// and cache stashes at half precision (one round-to-nearest-even per
/// element, relative error ≤ 2⁻⁸; observed diffs sit well under 2e-2).
fn tol(f32_tol: f32) -> f32 {
    match mbs_tensor::prec::precision() {
        mbs_tensor::prec::Precision::F32 => f32_tol,
        mbs_tensor::prec::Precision::Bf16 => f32_tol.max(2e-2),
    }
}

fn max_param_diff(a: &mut LoweredNet, b: &mut LoweredNet) -> f32 {
    let mut pa = Vec::new();
    a.visit_params(&mut |p| pa.push(p.value.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    b.visit_params(&mut |p| {
        worst = worst.max(pa[i].max_abs_diff(&p.value));
        i += 1;
    });
    worst
}

/// The headline equivalence: grouped execution over a hand-built
/// three-group schedule (sub-batches 2 / 4 / 8 over a batch of 8 — all
/// distinct, so every boundary genuinely re-slices) matches full-batch
/// training on a GN model.
#[test]
fn grouped_multi_group_step_matches_full_batch_step() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    assert!(nodes >= 3, "need at least three groups");
    let schedule = Schedule::new(
        ExecConfig::Mbs1,
        8,
        vec![
            Group::new(0, 2, 2, 8),
            Group::new(2, nodes - 1, 4, 8),
            Group::new(nodes - 1, nodes, 8, 8),
        ],
        true,
    );
    let subs = schedule.sub_batches();
    assert_eq!(
        subs,
        vec![2, 4, 8],
        "per-group sub-batches must be distinct"
    );

    let d = generate(8, 8, 0.3, 91);
    let (mut full, mut grouped) = lowered_pair(&net, 21);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..3 {
        let l_full = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let l_grp = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
        assert!(
            (l_full - l_grp).abs() < tol(1e-4),
            "losses {l_full} vs {l_grp}"
        );
    }
    let diff = max_param_diff(&mut full, &mut grouped);
    // Same tolerance `gn_mbs_step_equals_full_batch_step` pins for the
    // uniform executor.
    assert!(
        diff < tol(5e-4),
        "grouped GN training diverged from full-batch: {diff}"
    );
}

/// The same equivalence with the schedule chosen by the real scheduler
/// against a CPU cache budget — the full IR → schedule → runtime pipeline.
#[test]
fn scheduler_chosen_schedule_is_faithful() {
    let net = toy::runtime_mix(8, 8);
    // A small budget forces genuine serialization at toy scale; the exact
    // grouping is the scheduler's choice.
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    assert!(
        schedule.groups().len() >= 2,
        "budget should split the net: {:?}",
        schedule.sub_batches()
    );

    let d = generate(8, 8, 0.3, 92);
    let (mut full, mut grouped) = lowered_pair(&net, 22);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..2 {
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let _ = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
    }
    let diff = max_param_diff(&mut full, &mut grouped);
    assert!(
        diff < tol(5e-4),
        "scheduler-driven training diverged: {diff}"
    );
}

/// Grouped execution also agrees with the *uniform* serialized executor
/// (both accumulate the same gradients), and a single-group schedule
/// degenerates to it exactly.
#[test]
fn single_group_schedule_degenerates_to_uniform_mbs() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    let schedule = Schedule::new(ExecConfig::MbsFs, 8, vec![Group::new(0, nodes, 3, 8)], true);
    let d = generate(8, 8, 0.3, 93);
    let (mut uniform, mut grouped) = lowered_pair(&net, 23);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..2 {
        let l_u = train_step_mbs(&mut uniform, &d.images, &d.labels, 3, &mut opt_a);
        let l_g = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
        assert!((l_u - l_g).abs() < tol(1e-4), "losses {l_u} vs {l_g}");
    }
    let diff = max_param_diff(&mut uniform, &mut grouped);
    assert!(
        diff < tol(5e-4),
        "single-group grouped != uniform MBS: {diff}"
    );
}

/// The full equivalence matrix over the newly lowerable network shapes:
/// {InceptionV3 toy, AlexNet toy} × {hand-built, scheduler-chosen}
/// schedules × {stash, replay} backward. Every cell must match
/// `train_step_full` within the uniform executor's tolerance, and the two
/// backward strategies must agree with *each other* bitwise.
#[test]
fn equivalence_matrix_inception_and_alexnet_toys() {
    let nets = [toy::tiny_inception(8, 8), toy::tiny_alexnet(8, 8)];
    for (ni, net) in nets.iter().enumerate() {
        let nodes = net.nodes().len();
        let hand = Schedule::new(
            ExecConfig::Mbs1,
            8,
            vec![
                Group::new(0, nodes / 2, 2, 8),
                Group::new(nodes / 2, nodes, 4, 8),
            ],
            true,
        );
        // A small cache budget so the scheduler genuinely serializes the
        // toy; the exact grouping is its choice.
        let hw = HardwareConfig::cpu().with_global_buffer(2 * 1024);
        let chosen = MbsScheduler::new(net, &hw, ExecConfig::Mbs1)
            .with_batch(8)
            .schedule();
        assert!(
            chosen.groups().iter().any(|g| g.iterations > 1),
            "{}: budget must force serialization, got subs {:?}",
            net.name(),
            chosen.sub_batches()
        );
        let d = generate(8, 8, 0.3, 95 + ni as u64);
        for (si, schedule) in [&hand, &chosen].into_iter().enumerate() {
            let mut stash_params: Option<Vec<mbs_tensor::Tensor>> = None;
            for stashing in [true, false] {
                let (mut full, mut grouped) = lowered_pair(net, 31 + ni as u64);
                let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
                let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
                let mut exec = GroupedExecutor::new(schedule, grouped.len());
                exec.set_stashing(stashing);
                for _ in 0..2 {
                    let l_full = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
                    let l_grp = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
                    assert!(
                        (l_full - l_grp).abs() < tol(1e-4),
                        "{} sched{si} stash={stashing}: losses {l_full} vs {l_grp}",
                        net.name()
                    );
                }
                let diff = max_param_diff(&mut full, &mut grouped);
                assert!(
                    diff < tol(5e-4),
                    "{} sched{si} stash={stashing}: diverged from full batch by {diff}",
                    net.name()
                );
                // At f32 storage, stash and replay must agree bitwise, not
                // just in tolerance: replay recomputes exactly what
                // stashing saved. At bf16 the two quantize at different
                // points (stash re-encodes computed caches; replay
                // recomputes from the quantized boundary), so they are
                // only tolerance-equal.
                let mut params = Vec::new();
                grouped.visit_params(&mut |p| params.push(p.value.clone()));
                match &stash_params {
                    None => stash_params = Some(params),
                    Some(reference) => {
                        for (i, (a, b)) in reference.iter().zip(&params).enumerate() {
                            if mbs_tensor::prec::precision() == mbs_tensor::prec::Precision::F32 {
                                assert_eq!(
                                    a,
                                    b,
                                    "{} sched{si} param {i}: stash != replay",
                                    net.name()
                                );
                            } else {
                                let d = a.max_abs_diff(b);
                                assert!(
                                    d < tol(0.0),
                                    "{} sched{si} param {i}: stash vs replay diff {d}",
                                    net.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Full-network acceptance: a scheduler-chosen grouped train step on the
/// real `inception_v3()` (299×299, concat blocks, avg pools) and
/// `alexnet()` (227×227, LRN, big FCs) matches the uniform serialized
/// executor within tolerance. Full-size single-core compute — minutes in
/// release, far longer in the debug profile `cargo test` uses — so it is
/// opt-in:
///
/// ```sh
/// cargo test --release -p mbs-train --test grouped_exec -- --ignored
/// ```
#[test]
#[ignore = "full-size networks (minutes of compute): run with --release -- --ignored"]
fn full_networks_complete_scheduler_chosen_grouped_steps() {
    for (net, size) in [
        (mbs_cnn::networks::alexnet(), 227usize),
        (mbs_cnn::networks::inception_v3(), 299),
    ] {
        let hw = HardwareConfig::cpu();
        let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1)
            .with_batch(2)
            .schedule();
        let d = generate(2, size, 0.3, 99);
        let (mut uniform, mut grouped) = lowered_pair(&net, 41);
        let mut oa = Sgd::new(0.01, 0.9, 0.0);
        let mut ob = Sgd::new(0.01, 0.9, 0.0);
        let mut exec = GroupedExecutor::new(&schedule, grouped.len());
        let lu = train_step_mbs(
            &mut uniform,
            &d.images,
            &d.labels,
            schedule.min_sub_batch(),
            &mut oa,
        );
        let lg = exec.train_step(&mut grouped, &d.images, &d.labels, &mut ob);
        assert!(
            (lu - lg).abs() < 1e-3,
            "{}: losses {lu} vs {lg}",
            net.name()
        );
        let diff = max_param_diff(&mut uniform, &mut grouped);
        assert!(
            diff < 5e-4,
            "{}: grouped step diverged from uniform by {diff}",
            net.name()
        );
    }
}

/// Grouped training actually learns (loss falls over steps) on a network
/// built from `mbs_cnn::networks` — the lowered-IR path exercised
/// end-to-end.
#[test]
fn grouped_training_reduces_loss() {
    let net = toy::runtime_mix(8, 8);
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    let d = generate(32, 8, 0.25, 94);
    let mut model = lower(&net, &mut StdRng::seed_from_u64(7)).unwrap();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, model.len());
    let first = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
    let mut last = first;
    for _ in 0..12 {
        last = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
    }
    assert!(last < first, "loss should fall: {first} -> {last}");
}
