//! Pins the schedule-driven execution acceptance claims: for a GN model
//! lowered from the IR, a [`GroupedExecutor`] running a multi-group
//! schedule with *distinct* per-group sub-batch sizes produces parameter
//! updates matching `train_step_full` within the same tolerance the
//! uniform `train_step_mbs` already meets — whatever schedule the MBS
//! scheduler (or a hand-built grouping) picks.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::networks::toy;
use mbs_core::{ExecConfig, Group, HardwareConfig, MbsScheduler, Schedule};
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::grouped::GroupedExecutor;
use mbs_train::lower::{lower, LoweredNet};
use mbs_train::Module;
use mbs_train::{data::generate, Sgd};

fn lowered_pair(net: &mbs_cnn::Network, seed: u64) -> (LoweredNet, LoweredNet) {
    let a = lower(net, &mut StdRng::seed_from_u64(seed)).expect("net must lower");
    let b = lower(net, &mut StdRng::seed_from_u64(seed)).expect("net must lower");
    (a, b)
}

fn max_param_diff(a: &mut LoweredNet, b: &mut LoweredNet) -> f32 {
    let mut pa = Vec::new();
    a.visit_params(&mut |p| pa.push(p.value.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    b.visit_params(&mut |p| {
        worst = worst.max(pa[i].max_abs_diff(&p.value));
        i += 1;
    });
    worst
}

/// The headline equivalence: grouped execution over a hand-built
/// three-group schedule (sub-batches 2 / 4 / 8 over a batch of 8 — all
/// distinct, so every boundary genuinely re-slices) matches full-batch
/// training on a GN model.
#[test]
fn grouped_multi_group_step_matches_full_batch_step() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    assert!(nodes >= 3, "need at least three groups");
    let schedule = Schedule::new(
        ExecConfig::Mbs1,
        8,
        vec![
            Group::new(0, 2, 2, 8),
            Group::new(2, nodes - 1, 4, 8),
            Group::new(nodes - 1, nodes, 8, 8),
        ],
        true,
    );
    let subs = schedule.sub_batches();
    assert_eq!(
        subs,
        vec![2, 4, 8],
        "per-group sub-batches must be distinct"
    );

    let d = generate(8, 8, 0.3, 91);
    let (mut full, mut grouped) = lowered_pair(&net, 21);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..3 {
        let l_full = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let l_grp = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
        assert!((l_full - l_grp).abs() < 1e-4, "losses {l_full} vs {l_grp}");
    }
    let diff = max_param_diff(&mut full, &mut grouped);
    // Same tolerance `gn_mbs_step_equals_full_batch_step` pins for the
    // uniform executor.
    assert!(
        diff < 5e-4,
        "grouped GN training diverged from full-batch: {diff}"
    );
}

/// The same equivalence with the schedule chosen by the real scheduler
/// against a CPU cache budget — the full IR → schedule → runtime pipeline.
#[test]
fn scheduler_chosen_schedule_is_faithful() {
    let net = toy::runtime_mix(8, 8);
    // A small budget forces genuine serialization at toy scale; the exact
    // grouping is the scheduler's choice.
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    assert!(
        schedule.groups().len() >= 2,
        "budget should split the net: {:?}",
        schedule.sub_batches()
    );

    let d = generate(8, 8, 0.3, 92);
    let (mut full, mut grouped) = lowered_pair(&net, 22);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..2 {
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let _ = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
    }
    let diff = max_param_diff(&mut full, &mut grouped);
    assert!(diff < 5e-4, "scheduler-driven training diverged: {diff}");
}

/// Grouped execution also agrees with the *uniform* serialized executor
/// (both accumulate the same gradients), and a single-group schedule
/// degenerates to it exactly.
#[test]
fn single_group_schedule_degenerates_to_uniform_mbs() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    let schedule = Schedule::new(ExecConfig::MbsFs, 8, vec![Group::new(0, nodes, 3, 8)], true);
    let d = generate(8, 8, 0.3, 93);
    let (mut uniform, mut grouped) = lowered_pair(&net, 23);
    let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
    let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, grouped.len());
    for _ in 0..2 {
        let l_u = train_step_mbs(&mut uniform, &d.images, &d.labels, 3, &mut opt_a);
        let l_g = exec.train_step(&mut grouped, &d.images, &d.labels, &mut opt_b);
        assert!((l_u - l_g).abs() < 1e-4, "losses {l_u} vs {l_g}");
    }
    let diff = max_param_diff(&mut uniform, &mut grouped);
    assert!(diff < 5e-4, "single-group grouped != uniform MBS: {diff}");
}

/// Grouped training actually learns (loss falls over steps) on a network
/// built from `mbs_cnn::networks` — the lowered-IR path exercised
/// end-to-end.
#[test]
fn grouped_training_reduces_loss() {
    let net = toy::runtime_mix(8, 8);
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule = MbsScheduler::new(&net, &hw, ExecConfig::Mbs1).schedule();
    let d = generate(32, 8, 0.25, 94);
    let mut model = lower(&net, &mut StdRng::seed_from_u64(7)).unwrap();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, model.len());
    let first = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
    let mut last = first;
    for _ in 0..12 {
        last = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
    }
    assert!(last < first, "loss should fall: {first} -> {last}");
}
