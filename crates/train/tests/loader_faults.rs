//! Dataset format fault suite: every way a `*.mbsds` file can be damaged
//! — wrong magic, future version, truncation, mid-chunk tears, flipped
//! bytes in the index or the data region — must surface as a structured
//! [`LoaderError`], never a panic and never a garbage tensor. Plus the
//! format-pinning half: a property-based save → open round trip over
//! arbitrary shapes/labels/bit patterns, and a golden file committed to
//! the repo so accidental format drift breaks CI instead of silently
//! orphaning generated datasets.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use mbs_tensor::Tensor;
use mbs_train::data::{generate, Dataset};
use mbs_train::loader::{
    save_dataset_chunked, DiskDataset, LoaderError, StreamLoader, MBSDS_VERSION,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbsfault-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small valid file to damage: 10 samples of [3, 4, 4] in chunks of 4.
fn valid_file(dir: &Path) -> PathBuf {
    let path = dir.join("victim.mbsds");
    save_dataset_chunked(&generate(10, 4, 0.2, 99), &path, 4).unwrap();
    path
}

fn open_err(path: &Path) -> LoaderError {
    DiskDataset::open(path).expect_err("damaged file must not open")
}

#[test]
fn wrong_magic_is_a_format_error() {
    let dir = scratch("magic");
    let path = valid_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    bytes[0] = b'X'; // "MBSDS" -> "XBSDS"
    fs::write(&path, &bytes).unwrap();
    match open_err(&path) {
        LoaderError::Format(msg) => assert!(msg.contains("magic"), "{msg}"),
        other => panic!("want Format, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_version_is_a_structured_version_error() {
    let dir = scratch("version");
    let path = valid_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    assert_eq!(&bytes[..7], b"MBSDS 1");
    bytes[6] = b'7'; // version 1 -> 7, same header length
    fs::write(&path, &bytes).unwrap();
    match open_err(&path) {
        LoaderError::Version(v) => {
            assert_eq!(v, 7);
            assert!(
                v > MBSDS_VERSION,
                "test premise: 7 must be a FUTURE version"
            );
        }
        other => panic!("want Version, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_file_fails_the_length_check() {
    let dir = scratch("truncate");
    let path = valid_file(&dir);
    let bytes = fs::read(&path).unwrap();
    // Cut a whole trailing chunk plus a bit: the header + index still
    // parse, so only the total-length check can catch it.
    fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
    match open_err(&path) {
        LoaderError::Format(msg) => assert!(msg.contains("truncated"), "{msg}"),
        other => panic!("want Format, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_chunk_torn_write_fails_the_length_check() {
    let dir = scratch("torn");
    let path = valid_file(&dir);
    let bytes = fs::read(&path).unwrap();
    // Tear inside a record (7 bytes is mid-f32): the classic half-written
    // chunk a crash without the atomic rename would leave behind.
    fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    match open_err(&path) {
        LoaderError::Format(msg) => assert!(msg.contains("torn"), "{msg}"),
        other => panic!("want Format, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn file_ending_inside_the_index_is_a_format_error() {
    let dir = scratch("shortindex");
    let path = valid_file(&dir);
    let bytes = fs::read(&path).unwrap();
    let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    fs::write(&path, &bytes[..nl + 5]).unwrap(); // header + 5 index bytes
    match open_err(&path) {
        LoaderError::Format(msg) => assert!(msg.contains("index"), "{msg}"),
        other => panic!("want Format, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_index_byte_fails_the_index_checksum() {
    let dir = scratch("indexflip");
    let path = valid_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    bytes[nl + 3] ^= 0x20; // inside the JSON index
    fs::write(&path, &bytes).unwrap();
    match open_err(&path) {
        LoaderError::Format(msg) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("want Format, got {other}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_and_garbage_files_are_format_errors() {
    let dir = scratch("garbage");
    let empty = dir.join("empty.mbsds");
    fs::write(&empty, b"").unwrap();
    assert!(matches!(open_err(&empty), LoaderError::Format(_)));

    let garbage = dir.join("garbage.mbsds");
    fs::write(&garbage, vec![0xAAu8; 512]).unwrap();
    assert!(matches!(open_err(&garbage), LoaderError::Format(_)));
    let _ = fs::remove_dir_all(&dir);
}

/// A flipped byte in the data region passes `open` (chunks validate
/// lazily) but must fail the chunk checksum at read time — from both the
/// eager `load` path and the background prefetch thread — naming the
/// damaged chunk, never returning the mangled values.
#[test]
fn flipped_chunk_byte_is_chunk_corruption_on_every_read_path() {
    let dir = scratch("chunkflip");
    let path = valid_file(&dir);
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x01; // inside the final chunk (chunk 2: samples 8..10)
    fs::write(&path, &bytes).unwrap();

    let disk = DiskDataset::open(&path).expect("open validates header+index only");
    match disk.load().expect_err("load must validate chunks") {
        LoaderError::ChunkCorrupt { chunk, .. } => assert_eq!(chunk, 2),
        other => panic!("want ChunkCorrupt, got {other}"),
    }

    // The streamed path: the loader thread hits the bad chunk, reports
    // it once, and the loader must still shut down cleanly after.
    let mut loader = StreamLoader::new(&disk, 2).unwrap();
    loader.begin_epoch(&(0..10).rev().collect::<Vec<_>>(), 4, 0);
    let err = loop {
        match loader.next_batch() {
            Ok(b) => loader.recycle(b),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, LoaderError::ChunkCorrupt { chunk: 2, .. }),
        "{err}"
    );
    drop(loader); // must join, not hang, after an error mid-epoch
    let _ = fs::remove_dir_all(&dir);
}

/// Arbitrary-shape dataset with arbitrary f32 *bit patterns* (NaNs,
/// infinities, subnormals, -0.0 included) and out-of-range labels: the
/// record codec is raw little-endian bits, so everything must survive.
fn arbitrary_dataset(seed: u64, n: usize, c: usize, h: usize, w: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| f32::from_bits(rng.next_u32()))
        .collect();
    let labels: Vec<usize> = (0..n).map(|_| rng.next_u32() as usize).collect();
    Dataset {
        images: Tensor::from_vec(&[n, c, h, w], data),
        labels,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → open → load is the identity on every bit pattern, for
    /// arbitrary geometry and chunking (including chunks larger than the
    /// set and chunks of one sample).
    #[test]
    fn round_trip_is_bitwise(
        seed in 0u64..10_000,
        n in 1usize..7,
        c in 1usize..4,
        h in 1usize..5,
        w in 1usize..5,
        chunk in 1usize..9,
    ) {
        let dir = scratch(&format!("prop-{seed}-{n}-{c}-{h}-{w}-{chunk}"));
        let path = dir.join("prop.mbsds");
        let set = arbitrary_dataset(seed, n, c, h, w);
        save_dataset_chunked(&set, &path, chunk).expect("save");
        let disk = DiskDataset::open(&path).expect("open");
        prop_assert_eq!(disk.shape(), [n, c, h, w]);
        prop_assert_eq!(disk.num_chunks(), n.div_ceil(chunk));
        let loaded = disk.load().expect("load");
        prop_assert_eq!(&loaded.labels, &set.labels);
        for (a, b) in loaded.images.data().iter().zip(set.images.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// The writer is byte-deterministic: same dataset, same chunking,
    /// same file — the property rotation, golden pinning, and the
    /// generate-vs-save equivalence all stand on.
    #[test]
    fn writer_is_deterministic(seed in 0u64..10_000) {
        let dir = scratch(&format!("det-{seed}"));
        let set = arbitrary_dataset(seed, 5, 2, 3, 3);
        let a = dir.join("a.mbsds");
        let b = dir.join("b.mbsds");
        save_dataset_chunked(&set, &a, 2).expect("save a");
        save_dataset_chunked(&set, &b, 2).expect("save b");
        prop_assert_eq!(fs::read(&a).unwrap(), fs::read(&b).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The fixed dataset pinned in `tests/data/golden-v1.mbsds`: chosen bit
/// patterns (negative zero, a subnormal, a NaN payload, extremes) and an
/// out-of-range label, in two chunks of two plus a tail of one.
fn golden_dataset() -> Dataset {
    let data: Vec<f32> = vec![
        // sample 0
        1.0,
        -0.5,
        0.25,
        f32::MIN_POSITIVE,
        // sample 1
        -0.0,
        3.0e10,
        f32::from_bits(0x7fc0_1234),
        -1.5e-38,
        // sample 2
        0.0,
        f32::MAX,
        f32::MIN,
        42.0,
        // sample 3
        -2.0,
        0.125,
        6.0,
        -7.0,
        // sample 4
        9.0,
        -9.0,
        0.5,
        2.5,
    ];
    Dataset {
        images: Tensor::from_vec(&[5, 1, 2, 2], data),
        labels: vec![2, 0, 1, 3, 4_000_000],
    }
}

fn golden_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden-v1.mbsds")
}

/// Format-drift tripwire, both directions: the committed golden file
/// must still open and load to the known dataset bitwise, and re-saving
/// that dataset must reproduce the committed bytes exactly. Either
/// direction failing means the on-disk format changed — bump
/// `MBSDS_VERSION` and keep a reader for v1 instead of editing the
/// golden file in place.
#[test]
fn golden_file_pins_the_format() {
    let bytes = fs::read(golden_path()).expect(
        "golden dataset missing; run \
         `cargo test -p mbs-train --test loader_faults -- --ignored regenerate_golden`",
    );
    let disk = DiskDataset::open(golden_path()).expect("golden file must open");
    assert_eq!(disk.shape(), [5, 1, 2, 2]);
    assert_eq!(disk.chunk_samples(), 2);
    assert_eq!(disk.num_chunks(), 3);
    let loaded = disk.load().expect("golden file must load");
    let want = golden_dataset();
    assert_eq!(loaded.labels, want.labels);
    for (a, b) in loaded.images.data().iter().zip(want.images.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "golden value drifted");
    }

    let dir = scratch("golden-rewrite");
    let rewrite = dir.join("golden.mbsds");
    save_dataset_chunked(&want, &rewrite, 2).unwrap();
    assert_eq!(
        fs::read(&rewrite).unwrap(),
        bytes,
        "writer output drifted from the committed v1 golden file"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Writes the golden file. Run explicitly (and review the diff!) only
/// when the format version is intentionally bumped:
/// `cargo test -p mbs-train --test loader_faults -- --ignored regenerate_golden`
#[test]
#[ignore]
fn regenerate_golden() {
    let path = golden_path();
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    save_dataset_chunked(&golden_dataset(), &path, 2).unwrap();
}
