//! Pins the activation-planner claim: after a warm-up step, the MBS
//! serialized training loop runs with **zero arena misses** — every layer
//! output, gradient, backward cache, GEMM packing panel, and staging
//! buffer is served from the pooled arena, so steady-state sub-batch
//! iterations perform no fresh f32-storage allocations.
//!
//! This lives in its own integration-test binary because the arena's
//! hit/miss counters are process-global: unit tests running concurrently
//! would pollute them.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_tensor::arena;
use mbs_train::data::generate;
use mbs_train::executor::{evaluate, train_step_mbs};
use mbs_train::model::{ConvNet, MiniResNet};
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;

#[test]
fn steady_state_mbs_training_is_arena_miss_free() {
    let d = generate(16, 8, 0.3, 77);

    // GN residual model — the paper's Fig. 6 configuration.
    let mut resnet = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(2));
    let mut opt_r = Sgd::new(0.05, 0.9, 1e-4);
    // Fused conv-bias-ReLU stack — the epilogue showcase model.
    let mut convnet = ConvNet::new(3, 4, 16, 3, &mut StdRng::seed_from_u64(3));
    let mut opt_c = Sgd::new(0.05, 0.9, 1e-4);

    for sub in [2usize, 4] {
        // Warm the pool: the first step at each sub-batch size populates
        // it with every buffer shape the loop cycles through.
        for _ in 0..2 {
            let _ = train_step_mbs(&mut resnet, &d.images, &d.labels, sub, &mut opt_r);
            let _ = train_step_mbs(&mut convnet, &d.images, &d.labels, sub, &mut opt_c);
        }
        arena::reset_stats();
        let _ = train_step_mbs(&mut resnet, &d.images, &d.labels, sub, &mut opt_r);
        let _ = train_step_mbs(&mut convnet, &d.images, &d.labels, sub, &mut opt_c);
        let (hits, misses) = arena::stats();
        assert!(hits > 0, "the training step must route through the arena");
        assert_eq!(
            misses, 0,
            "steady-state sub-batch loop (sub={sub}) allocated fresh buffers"
        );
    }

    // Inference chunks reuse the same pools.
    let _ = evaluate(&mut resnet, &d.images, &d.labels, 4);
    arena::reset_stats();
    let _ = evaluate(&mut resnet, &d.images, &d.labels, 4);
    let (_, misses) = arena::stats();
    assert_eq!(misses, 0, "steady-state evaluation allocated fresh buffers");
}
