//! The streaming contract, end to end: training off a `*.mbsds` file
//! through the background-prefetch [`StreamLoader`] must be **bitwise**
//! identical to training off the same data in memory — loss curve and
//! final parameters — across {TinyResNet, TinyInception} × prefetch
//! depth {1, 2, 4} × {cache stashing, backward replay}, and a streamed
//! run killed mid-epoch and resumed from its checkpoints must reproduce
//! the uninterrupted curve bitwise, exactly as the in-memory path does.
//!
//! [`StreamLoader`]: mbs_train::loader::StreamLoader

use std::path::{Path, PathBuf};

use mbs_cnn::networks::toy;
use mbs_cnn::Network;
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler, Schedule};
use mbs_train::checkpoint;
use mbs_train::data::{generate, Dataset};
use mbs_train::loader::save_dataset_chunked;
use mbs_train::training::{
    train_grouped, train_grouped_source, DataSource, TrainConfig, TrainError,
};
use mbs_train::{CheckpointConfig, EpochStats, FaultPlan};

struct Case {
    name: &'static str,
    net: Network,
    schedule: Schedule,
    train_set: Dataset,
    val_set: Dataset,
}

fn cases() -> Vec<Case> {
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let resnet = toy::tiny_resnet(1, 8);
    let resnet_schedule = MbsScheduler::new(&resnet, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let inception = toy::tiny_inception(8, 8);
    let inception_schedule = MbsScheduler::new(&inception, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    vec![
        Case {
            name: "tiny_resnet",
            net: resnet,
            schedule: resnet_schedule,
            train_set: generate(16, 32, 0.3, 61),
            val_set: generate(8, 32, 0.3, 62),
        },
        Case {
            name: "tiny_inception",
            net: inception,
            schedule: inception_schedule,
            train_set: generate(16, 8, 0.3, 63),
            val_set: generate(8, 8, 0.3, 64),
        },
    ]
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbsequiv-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn base_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch: 8,
        lr_milestones: vec![1],
        ..TrainConfig::default()
    }
}

fn ckpt(dir: &Path) -> CheckpointConfig {
    CheckpointConfig {
        dir: dir.to_path_buf(),
        every_steps: 0, // epoch boundaries only: the final save IS the final params
        keep: 2,
        resume: true,
    }
}

/// Curves must match to the bit, not to a tolerance: compare the raw bit
/// patterns of every field (f32 `==` would already reject NaN and accept
/// -0.0 vs 0.0 — bitwise is the contract the whole repo pins).
fn assert_curves_bitwise(label: &str, got: &[EpochStats], want: &[EpochStats]) {
    assert_eq!(got.len(), want.len(), "{label}: epoch count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.epoch, w.epoch, "{label}");
        assert_eq!(
            g.train_loss.to_bits(),
            w.train_loss.to_bits(),
            "{label}: epoch {} train_loss {} vs {}",
            g.epoch,
            g.train_loss,
            w.train_loss
        );
        assert_eq!(
            g.val_error_pct.to_bits(),
            w.val_error_pct.to_bits(),
            "{label}: epoch {} val_error",
            g.epoch
        );
        assert_eq!(
            g.preact_first.to_bits(),
            w.preact_first.to_bits(),
            "{label}"
        );
        assert_eq!(g.preact_last.to_bits(), w.preact_last.to_bits(), "{label}");
    }
}

/// The final parameters, bitwise: the encoded bytes of the newest
/// (epoch-boundary) checkpoint — model state, momentum, RNG cursor, the
/// lot. Two runs that agree here ended in the same state, exactly.
fn final_state_bytes(dir: &Path, case: &Case) -> Vec<u8> {
    let fingerprint = case.schedule.fingerprint(&case.net);
    let (found, report) = checkpoint::load_latest(dir, fingerprint).expect("readable dir");
    assert!(report.is_clean(), "{}: {report}", dir.display());
    let (_, ckpt) = found.expect("final checkpoint exists");
    checkpoint::encode(&ckpt)
}

/// The headline matrix. The dataset goes to disk with a chunk size (5)
/// that divides neither the batch (8) nor the set (16), so every batch
/// crosses a chunk boundary — the layout the loader must get right.
#[test]
fn streamed_training_is_bitwise_equal_to_in_memory() {
    for case in cases() {
        let dir = scratch(case.name);
        let path = dir.join("train.mbsds");
        save_dataset_chunked(&case.train_set, &path, 5).unwrap();

        for stashing in [true, false] {
            let mut cfg = base_cfg();
            cfg.stashing = Some(stashing);
            let mem_dir = dir.join(format!("mem-stash{stashing}"));
            cfg.checkpoint = Some(ckpt(&mem_dir));
            let baseline = train_grouped(
                &case.net,
                &case.schedule,
                &case.train_set,
                &case.val_set,
                &cfg,
            )
            .expect("in-memory baseline");
            let baseline_state = final_state_bytes(&mem_dir, &case);

            for prefetch in [1usize, 2, 4] {
                let label = format!("{}-stash{stashing}-prefetch{prefetch}", case.name);
                let stream_dir = dir.join(format!("stream-{stashing}-{prefetch}"));
                cfg.checkpoint = Some(ckpt(&stream_dir));
                cfg.prefetch = Some(prefetch);
                let streamed = train_grouped_source(
                    &case.net,
                    &case.schedule,
                    &DataSource::Stream(path.clone()),
                    &case.val_set,
                    &cfg,
                )
                .expect("streamed run");
                assert_curves_bitwise(&label, &streamed, &baseline);
                assert_eq!(
                    final_state_bytes(&stream_dir, &case),
                    baseline_state,
                    "{label}: final params + optimizer state must match bitwise"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Kill/resume over a streamed source: a run killed after its first
/// mid-epoch checkpoint save, resumed from the directory, must reproduce
/// the *uninterrupted in-memory* curve bitwise — the two contracts
/// (crash safety and streamed equivalence) compose.
#[test]
fn streamed_kill_resume_reproduces_the_uninterrupted_curve() {
    let case = &cases()[1]; // inception is the cheaper of the two
    let dir = scratch("killresume");
    let path = dir.join("train.mbsds");
    save_dataset_chunked(&case.train_set, &path, 5).unwrap();
    let source = DataSource::Stream(path);

    let mut cfg = base_cfg();
    let baseline = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("uninterrupted in-memory baseline");

    let ck_dir = dir.join("ckpts");
    // 16 samples / batch 8 = 2 steps per epoch: every_steps = 1 puts the
    // first save mid-epoch, where the resume cursor meets the prefetch
    // plan's `skip`.
    cfg.checkpoint = Some(CheckpointConfig {
        dir: ck_dir.clone(),
        every_steps: 1,
        keep: 3,
        resume: true,
    });
    cfg.fault_plan = Some(FaultPlan::kill_after(1));
    let killed = train_grouped_source(&case.net, &case.schedule, &source, &case.val_set, &cfg);
    assert!(
        matches!(killed, Err(TrainError::Killed { saves: 1 })),
        "first streamed run should die after one save: {killed:?}"
    );

    // Kill the first resume too — recovery of a recovery, streamed.
    cfg.fault_plan = Some(FaultPlan::kill_after(1));
    let killed_again =
        train_grouped_source(&case.net, &case.schedule, &source, &case.val_set, &cfg);
    assert!(
        matches!(killed_again, Err(TrainError::Killed { .. })),
        "second streamed run should also die: {killed_again:?}"
    );

    cfg.fault_plan = None;
    let resumed = train_grouped_source(&case.net, &case.schedule, &source, &case.val_set, &cfg)
        .expect("streamed resume");
    assert_curves_bitwise("streamed-kill-resume", &resumed, &baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An in-memory `DataSource` is the same code path as `train_grouped` —
/// trivially, but it pins the wrapper against drift.
#[test]
fn memory_source_matches_train_grouped() {
    let case = &cases()[1];
    let cfg = base_cfg();
    let direct = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .unwrap();
    let via_source = train_grouped_source(
        &case.net,
        &case.schedule,
        &DataSource::Memory(case.train_set.clone()),
        &case.val_set,
        &cfg,
    )
    .unwrap();
    assert_curves_bitwise("memory-source", &via_source, &direct);
}
