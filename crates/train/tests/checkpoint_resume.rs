//! The crash-safety contract, end to end: a grouped training run killed
//! at a deterministic point and resumed from its checkpoint directory
//! must reproduce the unkilled run's epoch curve **bitwise** — across
//! both toy architectures and both backward strategies — and every
//! injected checkpoint fault must degrade gracefully (fall back to an
//! older checkpoint or a cold start) instead of panicking.

use std::path::{Path, PathBuf};

use mbs_cnn::networks::toy;
use mbs_cnn::Network;
use mbs_core::{ExecConfig, HardwareConfig, MbsScheduler, Schedule};
use mbs_train::data::{generate, Dataset};
use mbs_train::training::{train_grouped, TrainConfig, TrainError};
use mbs_train::{CheckpointConfig, CheckpointError, Fault, FaultPlan};

struct Case {
    name: &'static str,
    net: Network,
    schedule: Schedule,
    train_set: Dataset,
    val_set: Dataset,
}

fn cases() -> Vec<Case> {
    let hw = HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let resnet = toy::tiny_resnet(1, 8);
    let resnet_schedule = MbsScheduler::new(&resnet, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let inception = toy::tiny_inception(8, 8);
    let inception_schedule = MbsScheduler::new(&inception, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    vec![
        Case {
            name: "tiny_resnet",
            net: resnet,
            schedule: resnet_schedule,
            train_set: generate(16, 32, 0.3, 61),
            val_set: generate(8, 32, 0.3, 62),
        },
        Case {
            name: "tiny_inception",
            net: inception,
            schedule: inception_schedule,
            train_set: generate(16, 8, 0.3, 63),
            val_set: generate(8, 8, 0.3, 64),
        },
    ]
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbsresume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch: 8,
        lr_milestones: vec![1],
        ..TrainConfig::default()
    }
}

fn ckpt(dir: &Path, every: usize, keep: usize) -> CheckpointConfig {
    CheckpointConfig {
        dir: dir.to_path_buf(),
        every_steps: every,
        keep,
        resume: true,
    }
}

/// The tentpole guarantee, as a matrix: {TinyResNet, TinyInception} ×
/// {cache stashing, backward replay}. Each cell kills the run after its
/// first (mid-epoch) checkpoint save, kills the first resume again one
/// save later, and requires the second resume to finish with an epoch
/// curve identical to the never-killed baseline.
#[test]
fn killed_and_resumed_runs_reproduce_the_baseline_curve() {
    for case in cases() {
        for stashing in [true, false] {
            let mut cfg = base_cfg();
            cfg.stashing = Some(stashing);
            let baseline = train_grouped(
                &case.net,
                &case.schedule,
                &case.train_set,
                &case.val_set,
                &cfg,
            )
            .expect("baseline run");

            let label = format!("{}-stash{}", case.name, stashing);
            let dir = scratch(&label);
            // 16 samples / batch 8 = 2 steps per epoch: every_steps = 1
            // puts the first save mid-epoch, where resume is hardest.
            cfg.checkpoint = Some(ckpt(&dir, 1, 3));
            cfg.fault_plan = Some(FaultPlan::kill_after(1));
            let killed = train_grouped(
                &case.net,
                &case.schedule,
                &case.train_set,
                &case.val_set,
                &cfg,
            );
            assert!(
                matches!(killed, Err(TrainError::Killed { saves: 1 })),
                "{label}: first run should die after one save: {killed:?}"
            );

            // Kill the first resume too: crashes during recovery must
            // also be recoverable.
            cfg.fault_plan = Some(FaultPlan::kill_after(1));
            let killed_again = train_grouped(
                &case.net,
                &case.schedule,
                &case.train_set,
                &case.val_set,
                &cfg,
            );
            assert!(
                matches!(killed_again, Err(TrainError::Killed { .. })),
                "{label}: second run should also die: {killed_again:?}"
            );

            cfg.fault_plan = None;
            let resumed = train_grouped(
                &case.net,
                &case.schedule,
                &case.train_set,
                &case.val_set,
                &cfg,
            )
            .expect("resumed run");
            assert_eq!(
                resumed, baseline,
                "{label}: resumed curve must match the unkilled baseline bitwise"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Resuming a directory whose newest checkpoints are damaged must fall
/// back to the newest intact one — for every fault kind — and still
/// reproduce the baseline.
#[test]
fn corrupt_checkpoints_fall_back_without_losing_equivalence() {
    let case = &cases()[1]; // inception is the cheaper of the two
    let mut cfg = base_cfg();
    let baseline = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("baseline run");

    for (label, fault) in [
        ("torn", Fault::KillMidWrite),
        ("truncated", Fault::Truncate(25)),
        ("flipped", Fault::FlipByte(60)),
    ] {
        let dir = scratch(&format!("fault-{label}"));
        cfg.checkpoint = Some(ckpt(&dir, 1, 4));
        // Save 0 lands intact; save 1 is damaged; die after save 2.
        cfg.fault_plan = Some(FaultPlan {
            faults: vec![(1, fault)],
            kill_after_saves: Some(2),
        });
        let killed = train_grouped(
            &case.net,
            &case.schedule,
            &case.train_set,
            &case.val_set,
            &cfg,
        );
        assert!(killed.is_err(), "{label}: run should die");

        cfg.fault_plan = None;
        let resumed = train_grouped(
            &case.net,
            &case.schedule,
            &case.train_set,
            &case.val_set,
            &cfg,
        )
        .expect("resume must survive a damaged newest checkpoint");
        assert_eq!(resumed, baseline, "{label}: fallback resume must match");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// When *every* checkpoint in the directory is damaged, resume degrades
/// to a cold start — same curve, no panic, no error.
#[test]
fn all_corrupt_checkpoints_degrade_to_a_cold_start() {
    let case = &cases()[1];
    let mut cfg = base_cfg();
    let baseline = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("baseline run");

    let dir = scratch("all-corrupt");
    cfg.checkpoint = Some(ckpt(&dir, 1, 4));
    cfg.fault_plan = Some(FaultPlan {
        faults: vec![(0, Fault::Truncate(30)), (1, Fault::FlipByte(11))],
        kill_after_saves: Some(2),
    });
    assert!(train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .is_err());

    cfg.fault_plan = None;
    let resumed = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("cold start past corrupt files");
    assert_eq!(resumed, baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint directory from a *different* (network, schedule) pair is
/// a hard error, never a silent wrong-weights resume.
#[test]
fn mismatched_checkpoint_directory_is_refused() {
    let all = cases();
    let (a, b) = (&all[0], &all[1]);
    let dir = scratch("mismatch");
    let mut cfg = base_cfg();
    cfg.epochs = 1;
    cfg.checkpoint = Some(ckpt(&dir, 0, 3));
    train_grouped(&a.net, &a.schedule, &a.train_set, &a.val_set, &cfg).expect("seed the dir");

    let err = train_grouped(&b.net, &b.schedule, &b.train_set, &b.val_set, &cfg)
        .expect_err("resuming another net's directory must fail");
    match err {
        TrainError::Checkpoint(CheckpointError::FingerprintMismatch { net, .. }) => {
            assert_eq!(net, "TinyResNet1");
        }
        other => panic!("want FingerprintMismatch, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming a directory whose newest checkpoint is already at the final
/// epoch returns the stored curve without training further.
#[test]
fn resume_from_a_finished_run_returns_the_full_curve() {
    let case = &cases()[1];
    let dir = scratch("finished");
    let mut cfg = base_cfg();
    cfg.checkpoint = Some(ckpt(&dir, 0, 3));
    let first = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("first run");
    let second = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect("re-run resumes from the final checkpoint");
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The structured pre-validation errors: each input disagreement is
/// reported by name before any training work happens.
#[test]
fn input_mismatches_are_structured_errors() {
    let case = &cases()[0];
    let cfg = base_cfg();

    // Images whose spatial size does not match the network input.
    let wrong_images = generate(8, 8, 0.3, 71);
    let err = train_grouped(
        &case.net,
        &case.schedule,
        &wrong_images,
        &case.val_set,
        &cfg,
    )
    .expect_err("8x8 images into a 32x32 net");
    match err {
        TrainError::DatasetMismatch {
            net,
            split,
            expected,
            found,
        } => {
            assert_eq!(net, "TinyResNet1");
            assert_eq!(split, "train");
            assert_eq!(expected, [3, 32, 32]);
            assert_eq!(found, vec![8, 3, 8, 8]);
        }
        other => panic!("want DatasetMismatch, got {other}"),
    }

    // A label list that disagrees with the image count.
    let mut torn_labels = generate(8, 32, 0.3, 72);
    torn_labels.labels.pop();
    let err = train_grouped(
        &case.net,
        &case.schedule,
        &case.train_set,
        &torn_labels,
        &cfg,
    )
    .expect_err("missing label");
    match err {
        TrainError::LabelMismatch {
            split,
            images,
            labels,
        } => {
            assert_eq!((split, images, labels), ("validation", 8, 7));
        }
        other => panic!("want LabelMismatch, got {other}"),
    }

    // A schedule planned for a deeper network (more nodes).
    let deeper = toy::tiny_resnet(2, 8);
    let other_schedule = MbsScheduler::new(
        &deeper,
        &HardwareConfig::cpu().with_global_buffer(3 * 1024),
        ExecConfig::Mbs1,
    )
    .with_batch(8)
    .schedule();
    let err = train_grouped(
        &case.net,
        &other_schedule,
        &case.train_set,
        &case.val_set,
        &cfg,
    )
    .expect_err("schedule covers the wrong node count");
    match err {
        TrainError::ScheduleMismatch {
            net,
            schedule_nodes,
            net_nodes,
            first_uncovered,
        } => {
            assert_eq!(net, "TinyResNet1");
            assert_ne!(schedule_nodes, net_nodes);
            // The inception plan is shorter, so some resnet node is named.
            if schedule_nodes < net_nodes {
                assert!(first_uncovered.is_some());
            }
        }
        other => panic!("want ScheduleMismatch, got {other}"),
    }
}
