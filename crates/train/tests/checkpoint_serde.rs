//! Checkpoint format pinning: property-based round-trips (every finite
//! f32 bit pattern must survive encode → decode bitwise) and a golden
//! file committed to the repo so accidental format drift breaks CI
//! instead of silently orphaning users' saved checkpoints.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use mbs_train::checkpoint::{decode, encode};
use mbs_train::{EpochStats, StateEntry, TrainCheckpoint};

/// A finite f32 drawn uniformly from the *bit* space (subnormals,
/// negative zero, huge and tiny magnitudes included) — the values JSON
/// round-tripping is most likely to mangle.
fn finite_f32(rng: &mut StdRng) -> f32 {
    loop {
        let v = f32::from_bits(rng.next_u32());
        if v.is_finite() {
            return v;
        }
    }
}

fn arbitrary_checkpoint(seed: u64, entries: usize, elems: usize) -> TrainCheckpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let tensor = |rng: &mut StdRng| StateEntry {
        shape: vec![elems.max(1)],
        data: (0..elems.max(1)).map(|_| finite_f32(rng)).collect(),
    };
    TrainCheckpoint {
        fingerprint: rng.next_u64(),
        net: format!("Net{seed}"),
        epoch: rng.gen_range(0usize..100),
        step_in_epoch: rng.gen_range(0usize..50),
        loss_sum: finite_f32(&mut rng),
        steps: rng.gen_range(0usize..50),
        rng: (0..4).map(|_| rng.next_u64()).collect(),
        model: (0..entries).map(|_| tensor(&mut rng)).collect(),
        velocities: (0..entries).map(|_| tensor(&mut rng)).collect(),
        curve: (0..rng.gen_range(0usize..4))
            .map(|epoch| EpochStats {
                epoch,
                train_loss: finite_f32(&mut rng),
                val_error_pct: (rng.next_u64() % 10_000) as f64 / 100.0,
                preact_first: finite_f32(&mut rng),
                preact_last: finite_f32(&mut rng),
            })
            .collect(),
    }
}

fn assert_bitwise_eq(a: &TrainCheckpoint, b: &TrainCheckpoint) {
    // PartialEq is not enough: -0.0 == 0.0 under f32 comparison. Compare
    // every float through its bit pattern.
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.net, b.net);
    assert_eq!(a.epoch, b.epoch);
    assert_eq!(a.step_in_epoch, b.step_in_epoch);
    assert_eq!(a.loss_sum.to_bits(), b.loss_sum.to_bits());
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.rng, b.rng);
    for (x, y) in [(&a.model, &b.model), (&a.velocities, &b.velocities)] {
        assert_eq!(x.len(), y.len());
        for (ea, eb) in x.iter().zip(y) {
            assert_eq!(ea.shape, eb.shape);
            assert_eq!(ea.data.len(), eb.data.len());
            for (va, vb) in ea.data.iter().zip(&eb.data) {
                assert_eq!(va.to_bits(), vb.to_bits(), "tensor value drifted");
            }
        }
    }
    assert_eq!(a.curve.len(), b.curve.len());
    for (ca, cb) in a.curve.iter().zip(&b.curve) {
        assert_eq!(ca.epoch, cb.epoch);
        assert_eq!(ca.train_loss.to_bits(), cb.train_loss.to_bits());
        assert_eq!(ca.val_error_pct.to_bits(), cb.val_error_pct.to_bits());
        assert_eq!(ca.preact_first.to_bits(), cb.preact_first.to_bits());
        assert_eq!(ca.preact_last.to_bits(), cb.preact_last.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity on every finite bit pattern.
    #[test]
    fn round_trip_is_bitwise(
        seed in 0u64..10_000,
        entries in 1usize..5,
        elems in 1usize..40,
    ) {
        let ckpt = arbitrary_checkpoint(seed, entries, elems);
        let decoded = decode(&encode(&ckpt)).expect("self-encoded bytes must decode");
        assert_bitwise_eq(&ckpt, &decoded);
    }

    /// Encoding is deterministic: the same checkpoint always produces the
    /// same bytes (rotation, checksums, and the golden test rely on it).
    #[test]
    fn encoding_is_deterministic(seed in 0u64..10_000) {
        let ckpt = arbitrary_checkpoint(seed, 2, 8);
        assert_eq!(encode(&ckpt), encode(&ckpt));
    }
}

/// The fixed checkpoint pinned in `tests/data/golden-v1.mbsckpt`.
fn golden_checkpoint() -> TrainCheckpoint {
    TrainCheckpoint {
        fingerprint: 0x0123_4567_89ab_cdef,
        net: "GoldenNet".into(),
        epoch: 2,
        step_in_epoch: 3,
        loss_sum: 1.5,
        steps: 3,
        rng: vec![
            0x1111_1111_1111_1111,
            0x2222_2222_2222_2222,
            0x3333_3333_3333_3333,
            0x4444_4444_4444_4444,
        ],
        model: vec![
            StateEntry {
                shape: vec![2, 3],
                data: vec![1.0, -0.5, 0.25, f32::MIN_POSITIVE, -0.0, 3.0e10],
            },
            StateEntry {
                shape: vec![2],
                data: vec![0.1, -0.1],
            },
        ],
        velocities: vec![StateEntry {
            shape: vec![6],
            data: vec![0.0; 6],
        }],
        curve: vec![
            EpochStats {
                epoch: 0,
                train_loss: 2.0,
                val_error_pct: 75.0,
                preact_first: 0.5,
                preact_last: -0.25,
            },
            EpochStats {
                epoch: 1,
                train_loss: 1.75,
                val_error_pct: 60.0,
                preact_first: 0.5,
                preact_last: -0.25,
            },
        ],
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("golden-v1.mbsckpt")
}

/// Format-drift tripwire: the committed golden file must still decode to
/// the known checkpoint, and re-encoding that checkpoint must reproduce
/// the committed bytes exactly. Either direction failing means the
/// on-disk format changed — bump `CKPT_VERSION` and add a migration
/// instead of editing the golden file in place.
#[test]
fn golden_file_pins_the_format() {
    let bytes = std::fs::read(golden_path()).expect(
        "golden checkpoint missing; run \
         `cargo test -p mbs-train --test checkpoint_serde -- --ignored regenerate_golden`",
    );
    let decoded = decode(&bytes).expect("golden file must decode");
    assert_bitwise_eq(&decoded, &golden_checkpoint());
    assert_eq!(
        encode(&golden_checkpoint()),
        bytes,
        "encoder output drifted from the committed v1 golden file"
    );
}

/// Writes the golden file. Run explicitly (and review the diff!) only
/// when the format version is intentionally bumped:
/// `cargo test -p mbs-train --test checkpoint_serde -- --ignored regenerate_golden`
#[test]
#[ignore]
fn regenerate_golden() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, encode(&golden_checkpoint())).unwrap();
}
