//! Property-based test of the paper's central claim (§3): MBS sub-batch
//! serialization with GN is numerically equivalent to full-mini-batch
//! training for *any* sub-batch size, seed, and data.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_train::data::generate;
use mbs_train::executor::{train_step_full, train_step_mbs};
use mbs_train::model::MiniResNet;
use mbs_train::norm::NormChoice;
use mbs_train::optim::Sgd;
use mbs_train::Module;

fn max_param_diff(a: &mut MiniResNet, b: &mut MiniResNet) -> f32 {
    let mut pa = Vec::new();
    a.visit_params(&mut |p| pa.push(p.value.clone()));
    let mut i = 0;
    let mut worst = 0.0f32;
    b.visit_params(&mut |p| {
        worst = worst.max(pa[i].max_abs_diff(&p.value));
        i += 1;
    });
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// GN + MBS == GN full-batch, for arbitrary sub-batch sizes (including
    /// ones that do not divide the batch) and arbitrary seeds.
    #[test]
    fn gn_serialization_is_faithful(
        sub_batch in 1usize..9,
        data_seed in 0u64..500,
        model_seed in 0u64..500,
    ) {
        let d = generate(8, 8, 0.3, data_seed);
        let mut full =
            MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(model_seed));
        let mut mbs =
            MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(model_seed));
        let mut oa = Sgd::new(0.05, 0.9, 1e-4);
        let mut ob = Sgd::new(0.05, 0.9, 1e-4);
        for _ in 0..2 {
            let lf = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
            let lm = train_step_mbs(&mut mbs, &d.images, &d.labels, sub_batch, &mut ob);
            prop_assert!((lf - lm).abs() < 1e-3, "loss {lf} vs {lm}");
        }
        let diff = max_param_diff(&mut full, &mut mbs);
        prop_assert!(diff < 1e-3, "sub {sub_batch}: diff {diff}");
    }

    /// Without normalization the equivalence also holds (it is a property
    /// of gradient accumulation, not of GN specifically).
    #[test]
    fn no_norm_serialization_is_faithful(
        sub_batch in 1usize..9,
        model_seed in 0u64..500,
    ) {
        let d = generate(8, 8, 0.3, 777);
        let mut full =
            MiniResNet::new(3, 4, 1, NormChoice::None, &mut StdRng::seed_from_u64(model_seed));
        let mut mbs =
            MiniResNet::new(3, 4, 1, NormChoice::None, &mut StdRng::seed_from_u64(model_seed));
        let mut oa = Sgd::new(0.02, 0.9, 0.0);
        let mut ob = Sgd::new(0.02, 0.9, 0.0);
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
        let _ = train_step_mbs(&mut mbs, &d.images, &d.labels, sub_batch, &mut ob);
        let diff = max_param_diff(&mut full, &mut mbs);
        prop_assert!(diff < 1e-3, "sub {sub_batch}: diff {diff}");
    }

    /// BN breaks the equivalence whenever serialization actually splits the
    /// batch (the statistics differ).
    #[test]
    fn bn_serialization_differs(sub_batch in 2usize..5) {
        let d = generate(8, 8, 0.3, 888);
        let mut full =
            MiniResNet::new(3, 4, 1, NormChoice::Batch, &mut StdRng::seed_from_u64(3));
        let mut mbs =
            MiniResNet::new(3, 4, 1, NormChoice::Batch, &mut StdRng::seed_from_u64(3));
        let mut oa = Sgd::new(0.05, 0.9, 0.0);
        let mut ob = Sgd::new(0.05, 0.9, 0.0);
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
        let _ = train_step_mbs(&mut mbs, &d.images, &d.labels, sub_batch, &mut ob);
        let diff = max_param_diff(&mut full, &mut mbs);
        prop_assert!(diff > 1e-6, "BN should diverge, diff {diff}");
    }
}
