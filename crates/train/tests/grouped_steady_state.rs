//! Pins the grouped executor's memory-planning claim: after a warm-up
//! step, a schedule-driven grouped training step — boundary staging,
//! **cache stashing**, gradient re-slicing and all — runs with **zero
//! arena misses**: every chunk slice, layer output, boundary buffer,
//! gradient stage, and stashed cache tensor is served from the pooled
//! arena or from the executor's persistent staging buffers. Stashing
//! moves cache tensors by ownership (their arena storage travels with
//! them), so the stash path must be exactly as allocation-free as the
//! `MBS_STASH=0` replay path — the test pins both.
//!
//! Like `steady_state_alloc.rs`, this lives in its own integration-test
//! binary (with a single `#[test]`) because the arena's hit/miss counters
//! are process-global and concurrently running tests would pollute them.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::networks::toy;
use mbs_core::{ExecConfig, Group, Schedule};
use mbs_tensor::arena;
use mbs_train::data::generate;
use mbs_train::grouped::GroupedExecutor;
use mbs_train::lower::lower;
use mbs_train::Sgd;

#[test]
fn steady_state_grouped_training_is_arena_miss_free() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    // Distinct per-group sub-batches so every boundary re-slices, and
    // multi-iteration groups so the stash path genuinely engages.
    let schedule = Schedule::new(
        ExecConfig::Mbs1,
        8,
        vec![
            Group::new(0, 2, 2, 8),
            Group::new(2, nodes - 1, 4, 8),
            Group::new(nodes - 1, nodes, 8, 8),
        ],
        true,
    );
    assert!(schedule.groups().iter().any(|g| g.iterations > 1));
    let d = generate(8, 8, 0.3, 78);
    let mut model = lower(&net, &mut StdRng::seed_from_u64(4)).expect("runtime_mix lowers");
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, model.len());

    for (label, stashing) in [("stash", true), ("replay", false)] {
        exec.set_stashing(stashing);
        // Warm the pool, the executor's persistent boundary buffers, and
        // (in stash mode) the per-chunk stash slots.
        for _ in 0..2 {
            let _ = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
        }
        arena::reset_stats();
        let _ = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
        let (hits, misses) = arena::stats();
        assert!(
            hits > 0,
            "{label}: the grouped step must route through the arena"
        );
        assert_eq!(
            misses, 0,
            "{label}: steady-state grouped step allocated fresh buffers"
        );
    }
}
