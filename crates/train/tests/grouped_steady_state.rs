//! Pins the grouped executor's memory-planning claim: after a warm-up
//! step, a schedule-driven grouped training step — boundary staging,
//! **cache stashing**, gradient re-slicing and all — runs with **zero
//! arena misses**: every chunk slice, layer output, boundary buffer,
//! gradient stage, and stashed cache tensor is served from the pooled
//! arena or from the executor's persistent staging buffers. Stashing
//! moves cache tensors by ownership (their arena storage travels with
//! them), so the stash path must be exactly as allocation-free as the
//! `MBS_STASH=0` replay path — the test pins both.
//!
//! The streamed data path must not weaken the claim: a training step fed
//! by the background-prefetch [`StreamLoader`] — batch decode, cross-
//! thread buffer handoff and all — must also run with zero arena misses
//! after warm-up (the loader's fixed buffer ring is why), and the loader
//! must join its thread without leaking buffers even when training
//! errors out mid-epoch.
//!
//! Like `steady_state_alloc.rs`, this lives in its own integration-test
//! binary (with a single `#[test]`) because the arena's hit/miss counters
//! are process-global and concurrently running tests would pollute them.
//!
//! [`StreamLoader`]: mbs_train::loader::StreamLoader

use rand::rngs::StdRng;
use rand::SeedableRng;

use mbs_cnn::networks::toy;
use mbs_core::{ExecConfig, Group, Schedule};
use mbs_tensor::arena;
use mbs_train::data::generate;
use mbs_train::grouped::GroupedExecutor;
use mbs_train::loader::{save_dataset_chunked, DiskDataset, StreamLoader};
use mbs_train::lower::lower;
use mbs_train::training::{train_grouped_source, DataSource, TrainConfig, TrainError};
use mbs_train::{CheckpointConfig, FaultPlan, Sgd};

#[test]
fn steady_state_grouped_training_is_arena_miss_free() {
    let net = toy::runtime_mix(8, 8);
    let nodes = net.nodes().len();
    // Distinct per-group sub-batches so every boundary re-slices, and
    // multi-iteration groups so the stash path genuinely engages.
    let schedule = Schedule::new(
        ExecConfig::Mbs1,
        8,
        vec![
            Group::new(0, 2, 2, 8),
            Group::new(2, nodes - 1, 4, 8),
            Group::new(nodes - 1, nodes, 8, 8),
        ],
        true,
    );
    assert!(schedule.groups().iter().any(|g| g.iterations > 1));
    let d = generate(8, 8, 0.3, 78);
    let mut model = lower(&net, &mut StdRng::seed_from_u64(4)).expect("runtime_mix lowers");
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut exec = GroupedExecutor::new(&schedule, model.len());

    for (label, stashing) in [("stash", true), ("replay", false)] {
        exec.set_stashing(stashing);
        // Warm the pool, the executor's persistent boundary buffers, and
        // (in stash mode) the per-chunk stash slots.
        for _ in 0..2 {
            let _ = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
        }
        arena::reset_stats();
        let _ = exec.train_step(&mut model, &d.images, &d.labels, &mut opt);
        let (hits, misses) = arena::stats();
        assert!(
            hits > 0,
            "{label}: the grouped step must route through the arena"
        );
        assert_eq!(
            misses, 0,
            "{label}: steady-state grouped step allocated fresh buffers"
        );
    }

    // ---- Streamed leg: the same claim with batches coming off disk. ----
    // 16 samples / batch 8 keeps every batch the same shape, so after the
    // loader's buffer ring fills (prefetch + 2 buffers, all created in
    // the first few fills) the prefetch thread refills buffers in place
    // and performs no arena operation at all — the measured step's only
    // arena traffic is the executor's, which the legs above proved clean.
    let dir = std::env::temp_dir().join(format!("mbs-steady-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("train.mbsds");
    let streamed_set = generate(16, 8, 0.3, 79);
    save_dataset_chunked(&streamed_set, &path, 4).unwrap();
    let disk = DiskDataset::open(&path).unwrap();
    let mut loader = StreamLoader::new(&disk, 2).unwrap();
    let order: Vec<usize> = (0..16).collect();
    exec.set_stashing(true);
    // Warm-up: three full epochs (6 batches) — more than enough fills for
    // the ring to reach its fixed size, after which creation is disabled.
    for _ in 0..3 {
        loader.begin_epoch(&order, 8, 0);
        for _ in 0..2 {
            let batch = loader.next_batch().unwrap();
            let _ = exec.train_step(&mut model, &batch.images, &batch.labels, &mut opt);
            loader.recycle(batch);
        }
    }
    arena::reset_stats();
    loader.begin_epoch(&order, 8, 0);
    let batch = loader.next_batch().unwrap();
    let _ = exec.train_step(&mut model, &batch.images, &batch.labels, &mut opt);
    loader.recycle(batch);
    let (hits, misses) = arena::stats();
    assert!(
        hits > 0,
        "streamed: the grouped step must route through the arena"
    );
    assert_eq!(
        misses, 0,
        "streamed: steady-state step with a prefetch loader allocated fresh buffers"
    );
    // Drain the epoch so shutdown happens mid-flight with a full queue.
    let stats = loader.finish();
    assert!(
        stats.batches_filled >= 7,
        "prefetch thread should have run ahead"
    );

    // ---- Shutdown leg: training errors mid-epoch must still join the
    // loader thread (run_grouped drops the Feed — and with it the
    // loader, whose Drop closes every channel and joins; a leak or
    // deadlock would hang this test). The FaultPlan kills the run right
    // after the first mid-epoch checkpoint save, prefetch still full.
    let net2 = toy::runtime_mix(8, 8);
    let hw = mbs_core::HardwareConfig::cpu().with_global_buffer(3 * 1024);
    let schedule2 = mbs_core::MbsScheduler::new(&net2, &hw, ExecConfig::Mbs1)
        .with_batch(8)
        .schedule();
    let cfg = TrainConfig {
        epochs: 2,
        batch: 8,
        checkpoint: Some(CheckpointConfig {
            dir: dir.join("ckpts"),
            every_steps: 1,
            keep: 2,
            resume: true,
        }),
        fault_plan: Some(FaultPlan::kill_after(1)),
        prefetch: Some(4),
        ..TrainConfig::default()
    };
    let val_set = generate(8, 8, 0.3, 80);
    let killed = train_grouped_source(
        &net2,
        &schedule2,
        &DataSource::Stream(path.clone()),
        &val_set,
        &cfg,
    );
    assert!(
        matches!(killed, Err(TrainError::Killed { saves: 1 })),
        "streamed run should die mid-epoch: {killed:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
