//! Lowering: compile an [`mbs_cnn::Network`] (the analytical IR the MBS
//! scheduler consumes) into a runnable chain of [`Module`] layers.
//!
//! This is the bridge between the repo's two halves. The IR side describes
//! networks as shapes and layer kinds so `mbs_core::MbsScheduler` can size
//! sub-batches and form groups; this module turns the *same* description
//! into live `mbs_train` layers with initialized parameters, one
//! [`NodeModule`] per IR [`Node`] — exactly the granularity schedules are
//! expressed in, so a [`crate::grouped::GroupedExecutor`] can map each
//! schedule group straight onto a contiguous module range.
//!
//! Every [`LayerKind`] the IR can express lowers: convolution (bias-free,
//! rectangular kernels allowed), group / batch / local-response
//! normalization, ReLU, max and average pooling (padded or not), global
//! average pooling, fully-connected (with flattening), two-branch residual
//! blocks merged by `Add`, and N-branch Inception-style blocks merged by
//! `Concat` — which is what lets the full zoo networks
//! (`mbs_cnn::networks::{inception_v3, alexnet, resnet}`) lower and train.
//! The remaining rejections are shapes the IR builders never produce: a
//! *degenerate* pool whose padding reaches the window size (some windows
//! would lie entirely in padding — the [`LowerError`] names the layer and
//! its full geometry) and malformed blocks (an `Add` merge without
//! exactly two branches, a `Concat` with an empty branch).

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;

use mbs_cnn::{Block, Layer, LayerKind, Network, Node, NormKind, PoolKind};
use mbs_tensor::ops::{concat_channels, slice_channels, Conv2dCfg};
use mbs_tensor::Tensor;

use crate::layers::{AvgPool2d, Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu};
use crate::module::{stash_mismatch, CacheEntry, CacheStash, Module, Param, StateDict, StateError};
use crate::norm::{LocalResponseNorm, Norm, NormChoice};

/// Error raised when a network uses an IR construct the training runtime
/// does not implement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    layer: String,
    reason: String,
}

impl LowerError {
    fn new(layer: &str, reason: impl Into<String>) -> Self {
        Self {
            layer: layer.to_owned(),
            reason: reason.into(),
        }
    }

    /// Name of the IR layer that could not be lowered.
    pub fn layer(&self) -> &str {
        &self.layer
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lower layer {}: {}", self.layer, self.reason)
    }
}

impl std::error::Error for LowerError {}

/// Error raised by [`lower_inference`]: the network either does not lower
/// at all, or the supplied checkpoint state does not fit the lowered model.
#[derive(Debug)]
pub enum InferenceLowerError {
    /// The network uses an IR construct the runtime does not implement.
    Lower(LowerError),
    /// The state entries do not match the model (wrong count or shapes —
    /// typically a checkpoint from a different network).
    State(StateError),
}

impl fmt::Display for InferenceLowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lower(e) => write!(f, "{e}"),
            Self::State(e) => write!(f, "checkpoint state does not fit the model: {e}"),
        }
    }
}

impl std::error::Error for InferenceLowerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lower(e) => Some(e),
            Self::State(e) => Some(e),
        }
    }
}

impl From<LowerError> for InferenceLowerError {
    fn from(e: LowerError) -> Self {
        Self::Lower(e)
    }
}

impl From<StateError> for InferenceLowerError {
    fn from(e: StateError) -> Self {
        Self::State(e)
    }
}

/// One lowered IR layer: a thin dispatch wrapper so a whole branch or node
/// can be stored as `Vec<LayerModule>` without boxing.
#[derive(Debug, Clone)]
enum LayerModule {
    Conv(Conv2d),
    Norm(Norm),
    Relu(Relu),
    MaxPool(MaxPool2d),
    AvgPool(AvgPool2d),
    GlobalAvgPool(GlobalAvgPool),
    /// Fully-connected with flatten plumbing: remembers the (possibly 4-D)
    /// input shape of the last forward so backward can restore it on the
    /// gradient it hands upstream.
    Fc {
        linear: Linear,
        in_shape: Option<Vec<usize>>,
    },
}

impl Module for LayerModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            LayerModule::Conv(m) => m.forward_owned(x, train),
            LayerModule::Norm(m) => m.forward_owned(x, train),
            LayerModule::Relu(m) => m.forward_owned(x, train),
            LayerModule::MaxPool(m) => m.forward(&x, train),
            LayerModule::AvgPool(m) => m.forward(&x, train),
            LayerModule::GlobalAvgPool(m) => m.forward_owned(x, train),
            LayerModule::Fc { linear, in_shape } => {
                let x = if x.shape().len() > 2 {
                    *in_shape = Some(x.shape().to_vec());
                    let n = x.shape()[0];
                    let flat = x.len() / n.max(1);
                    x.into_reshaped(&[n, flat])
                } else {
                    *in_shape = None;
                    x
                };
                linear.forward_owned(x, train)
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self {
            LayerModule::Conv(m) => m.backward(dy),
            LayerModule::Norm(m) => m.backward(dy),
            LayerModule::Relu(m) => m.backward(dy),
            LayerModule::MaxPool(m) => m.backward(dy),
            LayerModule::AvgPool(m) => m.backward(dy),
            LayerModule::GlobalAvgPool(m) => m.backward(dy),
            LayerModule::Fc { linear, in_shape } => {
                let d = linear.backward(dy);
                match in_shape {
                    Some(shape) => d.into_reshaped(shape),
                    None => d,
                }
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            LayerModule::Conv(m) => m.visit_params(f),
            LayerModule::Norm(m) => m.visit_params(f),
            LayerModule::Relu(m) => m.visit_params(f),
            LayerModule::MaxPool(m) => m.visit_params(f),
            LayerModule::AvgPool(m) => m.visit_params(f),
            LayerModule::GlobalAvgPool(m) => m.visit_params(f),
            LayerModule::Fc { linear, .. } => linear.visit_params(f),
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        match self {
            LayerModule::Conv(m) => m.stash_caches(stash),
            LayerModule::Norm(m) => m.stash_caches(stash),
            LayerModule::Relu(m) => m.stash_caches(stash),
            LayerModule::MaxPool(m) => m.stash_caches(stash),
            LayerModule::AvgPool(m) => m.stash_caches(stash),
            LayerModule::GlobalAvgPool(m) => m.stash_caches(stash),
            LayerModule::Fc { linear, in_shape } => {
                stash.push(CacheEntry::Shape(in_shape.take()));
                linear.stash_caches(stash);
            }
        }
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match self {
            LayerModule::Conv(m) => m.unstash_caches(stash),
            LayerModule::Norm(m) => m.unstash_caches(stash),
            LayerModule::Relu(m) => m.unstash_caches(stash),
            LayerModule::MaxPool(m) => m.unstash_caches(stash),
            LayerModule::AvgPool(m) => m.unstash_caches(stash),
            LayerModule::GlobalAvgPool(m) => m.unstash_caches(stash),
            LayerModule::Fc { linear, in_shape } => {
                match stash.pop() {
                    CacheEntry::Shape(s) => *in_shape = s,
                    other => stash_mismatch("fc flatten shape", &other),
                }
                linear.unstash_caches(stash);
            }
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        // Dispatch (rather than the visit_params default) so norm layers
        // carrying non-parameter state export it.
        match self {
            LayerModule::Conv(m) => m.export_state(dict),
            LayerModule::Norm(m) => m.export_state(dict),
            LayerModule::Relu(m) => m.export_state(dict),
            LayerModule::MaxPool(m) => m.export_state(dict),
            LayerModule::AvgPool(m) => m.export_state(dict),
            LayerModule::GlobalAvgPool(m) => m.export_state(dict),
            LayerModule::Fc { linear, .. } => linear.export_state(dict),
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        match self {
            LayerModule::Conv(m) => m.import_state(dict),
            LayerModule::Norm(m) => m.import_state(dict),
            LayerModule::Relu(m) => m.import_state(dict),
            LayerModule::MaxPool(m) => m.import_state(dict),
            LayerModule::AvgPool(m) => m.import_state(dict),
            LayerModule::GlobalAvgPool(m) => m.import_state(dict),
            LayerModule::Fc { linear, .. } => linear.import_state(dict),
        }
    }
}

/// A lowered two-branch residual block: main chain, shortcut chain (empty
/// = identity), element-wise add, then the post-merge layers (the IR puts
/// the block's output ReLU there).
#[derive(Debug, Clone)]
struct LoweredBlock {
    main: Vec<LayerModule>,
    shortcut: Vec<LayerModule>,
    post: Vec<LayerModule>,
}

impl Module for LoweredBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        // As in `model::ResidualBlock`: the first main layer borrows `x`
        // (the shortcut still needs it), everything after runs owned.
        let mut h = match self.main.first_mut() {
            Some(first) => first.forward(&x, train),
            None => x.clone(),
        };
        for m in self.main.iter_mut().skip(1) {
            h = m.forward_owned(h, train);
        }
        let mut s = x;
        for m in &mut self.shortcut {
            s = m.forward_owned(s, train);
        }
        h.add_assign(&s);
        drop(s);
        for m in &mut self.post {
            h = m.forward_owned(h, train);
        }
        h
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = dy.clone();
        for m in self.post.iter_mut().rev() {
            g = m.backward(&g);
        }
        // Both add operands receive `g`.
        let mut d = g.clone();
        for m in self.main.iter_mut().rev() {
            d = m.backward(&d);
        }
        let mut ds = g;
        for m in self.shortcut.iter_mut().rev() {
            ds = m.backward(&ds);
        }
        d.add_assign(&ds);
        d
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in &mut self.main {
            m.visit_params(f);
        }
        for m in &mut self.shortcut {
            m.visit_params(f);
        }
        for m in &mut self.post {
            m.visit_params(f);
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        for m in self
            .main
            .iter_mut()
            .chain(&mut self.shortcut)
            .chain(&mut self.post)
        {
            m.stash_caches(stash);
        }
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        for m in self
            .main
            .iter_mut()
            .chain(&mut self.shortcut)
            .chain(&mut self.post)
        {
            m.unstash_caches(stash);
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        for m in self
            .main
            .iter_mut()
            .chain(&mut self.shortcut)
            .chain(&mut self.post)
        {
            m.export_state(dict);
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        for m in self
            .main
            .iter_mut()
            .chain(&mut self.shortcut)
            .chain(&mut self.post)
        {
            m.import_state(dict)?;
        }
        Ok(())
    }
}

/// A lowered N-branch Inception-style block: every branch runs from the
/// shared block input, branch outputs are concatenated channel-wise, then
/// any post-merge layers run. Backward splits the output gradient back
/// into per-branch channel ranges and sums the branch input gradients.
#[derive(Debug, Clone)]
struct LoweredConcat {
    branches: Vec<Vec<LayerModule>>,
    /// Output channels per branch — the concat/split ranges.
    branch_channels: Vec<usize>,
    post: Vec<LayerModule>,
}

impl Module for LoweredConcat {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let last = self.branches.len() - 1;
        let mut outs: Vec<Tensor> = Vec::with_capacity(self.branches.len());
        // Every branch but the last borrows the shared input...
        for branch in self.branches.iter_mut().take(last) {
            let mut h = branch[0].forward(&x, train);
            for m in branch.iter_mut().skip(1) {
                h = m.forward_owned(h, train);
            }
            outs.push(h);
        }
        // ...and the last consumes it, so the buffer recycles in place.
        let mut h = x;
        for m in &mut self.branches[last] {
            h = m.forward_owned(h, train);
        }
        outs.push(h);
        let refs: Vec<&Tensor> = outs.iter().collect();
        let mut y = concat_channels(&refs);
        drop(outs);
        for m in &mut self.post {
            y = m.forward_owned(y, train);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        // Inception-style blocks have no post-merge layers, so the common
        // path slices straight from `dy` without copying it.
        let mut g_owned: Option<Tensor> = None;
        for m in self.post.iter_mut().rev() {
            g_owned = Some(m.backward(g_owned.as_ref().unwrap_or(dy)));
        }
        let g: &Tensor = g_owned.as_ref().unwrap_or(dy);
        let mut dx: Option<Tensor> = None;
        let mut c_off = 0usize;
        for (branch, &cb) in self.branches.iter_mut().zip(&self.branch_channels) {
            let mut d = slice_channels(g, c_off, cb);
            c_off += cb;
            for m in branch.iter_mut().rev() {
                d = m.backward(&d);
            }
            match &mut dx {
                Some(acc) => acc.add_assign(&d),
                None => dx = Some(d),
            }
        }
        dx.expect("concat block has at least one branch")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in self.branches.iter_mut().flatten().chain(&mut self.post) {
            m.visit_params(f);
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        for m in self.branches.iter_mut().flatten().chain(&mut self.post) {
            m.stash_caches(stash);
        }
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        for m in self.branches.iter_mut().flatten().chain(&mut self.post) {
            m.unstash_caches(stash);
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        for m in self.branches.iter_mut().flatten().chain(&mut self.post) {
            m.export_state(dict);
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        for m in self.branches.iter_mut().flatten().chain(&mut self.post) {
            m.import_state(dict)?;
        }
        Ok(())
    }
}

/// One lowered scheduling unit: the runtime mirror of [`mbs_cnn::Node`].
#[derive(Debug, Clone)]
pub struct NodeModule {
    name: String,
    body: NodeBody,
}

#[derive(Debug, Clone)]
enum NodeBody {
    Single(Box<LayerModule>),
    Block(LoweredBlock),
    Concat(LoweredConcat),
}

impl NodeModule {
    /// Name of the IR node this module was lowered from.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Module for NodeModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match &mut self.body {
            NodeBody::Single(m) => m.forward_owned(x, train),
            NodeBody::Block(b) => b.forward_owned(x, train),
            NodeBody::Concat(b) => b.forward_owned(x, train),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &mut self.body {
            NodeBody::Single(m) => m.backward(dy),
            NodeBody::Block(b) => b.backward(dy),
            NodeBody::Concat(b) => b.backward(dy),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match &mut self.body {
            NodeBody::Single(m) => m.visit_params(f),
            NodeBody::Block(b) => b.visit_params(f),
            NodeBody::Concat(b) => b.visit_params(f),
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        match &mut self.body {
            NodeBody::Single(m) => m.stash_caches(stash),
            NodeBody::Block(b) => b.stash_caches(stash),
            NodeBody::Concat(b) => b.stash_caches(stash),
        }
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match &mut self.body {
            NodeBody::Single(m) => m.unstash_caches(stash),
            NodeBody::Block(b) => b.unstash_caches(stash),
            NodeBody::Concat(b) => b.unstash_caches(stash),
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        match &mut self.body {
            NodeBody::Single(m) => m.export_state(dict),
            NodeBody::Block(b) => b.export_state(dict),
            NodeBody::Concat(b) => b.export_state(dict),
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        match &mut self.body {
            NodeBody::Single(m) => m.import_state(dict),
            NodeBody::Block(b) => b.import_state(dict),
            NodeBody::Concat(b) => b.import_state(dict),
        }
    }
}

/// A network lowered from the IR: one [`NodeModule`] per IR node, runnable
/// whole (it implements [`Module`]) or range-wise (the entry points the
/// grouped executor uses).
#[derive(Debug, Clone)]
pub struct LoweredNet {
    name: String,
    nodes: Vec<NodeModule>,
}

impl LoweredNet {
    /// Name of the source network.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scheduling units — equals `net.nodes().len()` of the
    /// source IR, so schedule node indices map 1:1.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The lowered scheduling units in execution order.
    pub fn nodes(&self) -> &[NodeModule] {
        &self.nodes
    }

    /// Forward through nodes `range` only, consuming the input — the
    /// grouped executor streams each schedule group through this.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn forward_range(&mut self, range: Range<usize>, mut x: Tensor, train: bool) -> Tensor {
        for node in &mut self.nodes[range] {
            x = node.forward_owned(x, train);
        }
        x
    }

    /// Backward through nodes `range` in reverse, returning the gradient
    /// with respect to the range's input.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or a node in the range has no
    /// cached training forward.
    pub fn backward_range(&mut self, range: Range<usize>, dy: &Tensor) -> Tensor {
        let mut iter = self.nodes[range].iter_mut().rev();
        let mut d = match iter.next() {
            Some(node) => node.backward(dy),
            None => dy.clone(),
        };
        for node in iter {
            d = node.backward(&d);
        }
        d
    }

    /// Moves the backward caches of nodes `range` (the state the last
    /// training forward through that range left behind) into `stash`, in
    /// node order. The grouped executor calls this after each chunk of a
    /// multi-iteration group so the next chunk's forward cannot overwrite
    /// the caches — see [`crate::grouped::GroupedExecutor`].
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn stash_range(&mut self, range: Range<usize>, stash: &mut CacheStash) {
        for node in &mut self.nodes[range] {
            node.stash_caches(stash);
        }
    }

    /// Restores caches previously moved out by [`LoweredNet::stash_range`]
    /// for the same node range, consuming the stash's entries.
    ///
    /// # Panics
    ///
    /// Panics if the stash was produced by a different range (entry
    /// sequence mismatch).
    pub fn unstash_range(&mut self, range: Range<usize>, stash: &mut CacheStash) {
        for node in &mut self.nodes[range] {
            node.unstash_caches(stash);
        }
    }

    /// Mean output of the first and last **top-level** normalization nodes
    /// on `probe`, evaluated in inference mode — the lowered-net analogue
    /// of `MiniResNet::preactivation_means` (the Fig. 6 diagnostic).
    /// Returns `(0.0, 0.0)` if the network has no top-level norm node
    /// (norms inside blocks are not probed).
    pub fn preactivation_means(&mut self, probe: &Tensor) -> (f32, f32) {
        let mut x = probe.clone();
        let mut first = None;
        let mut last = None;
        for node in &mut self.nodes {
            x = node.forward_owned(x, false);
            if matches!(&node.body, NodeBody::Single(m) if matches!(**m, LayerModule::Norm(_))) {
                let mean = x.mean();
                first.get_or_insert(mean);
                last = Some(mean);
            }
        }
        (first.unwrap_or(0.0), last.unwrap_or(0.0))
    }

    /// Folds every batch norm that directly follows a convolution into
    /// that convolution's weights and bias, replacing the norm with an
    /// identity. Returns the number of norms folded.
    ///
    /// This is an **inference-only** transform: eval-mode batch norm is
    /// the affine `y = scale · x + shift` per channel (see
    /// [`crate::norm::BatchNorm2d::eval_affine`]), which commutes into
    /// the preceding conv. Group and local-response norms are per-sample
    /// and data-dependent, so they are left in place (they already run
    /// batch-invariantly in eval mode). Call this only after importing
    /// trained state — folding bakes the *current* running statistics
    /// into the weights — and never export state from a folded net.
    ///
    /// Covers conv→norm pairs inside block main/shortcut/post chains,
    /// inside concat branches and post chains, and across adjacent
    /// top-level single-layer nodes (the builders emit conv and norm as
    /// separate nodes).
    pub fn fold_batch_norms(&mut self) -> usize {
        let mut folded = 0;
        for node in &mut self.nodes {
            match &mut node.body {
                NodeBody::Single(_) => {}
                NodeBody::Block(b) => {
                    folded += fold_chain(&mut b.main);
                    folded += fold_chain(&mut b.shortcut);
                    folded += fold_chain(&mut b.post);
                }
                NodeBody::Concat(b) => {
                    for branch in &mut b.branches {
                        folded += fold_chain(branch);
                    }
                    folded += fold_chain(&mut b.post);
                }
            }
        }
        for i in 1..self.nodes.len() {
            let (head, tail) = self.nodes.split_at_mut(i);
            if let (NodeBody::Single(a), NodeBody::Single(b)) =
                (&mut head[i - 1].body, &mut tail[0].body)
            {
                if fold_pair(a, b) {
                    folded += 1;
                }
            }
        }
        folded
    }
}

/// If `a` is a conv and `b` a batch norm, folds the norm into the conv
/// and replaces it with [`Norm::None`]. Returns whether a fold happened.
fn fold_pair(a: &mut LayerModule, b: &mut LayerModule) -> bool {
    let LayerModule::Conv(conv) = a else {
        return false;
    };
    let LayerModule::Norm(norm) = b else {
        return false;
    };
    let Norm::Batch(bn) = &*norm else {
        return false;
    };
    let (scale, shift) = bn.eval_affine();
    conv.fold_affine(&scale, &shift);
    *norm = Norm::None;
    true
}

/// Folds every adjacent conv→batch-norm pair in a layer chain.
fn fold_chain(layers: &mut [LayerModule]) -> usize {
    let mut folded = 0;
    for i in 1..layers.len() {
        let (head, tail) = layers.split_at_mut(i);
        if fold_pair(&mut head[i - 1], &mut tail[0]) {
            folded += 1;
        }
    }
    folded
}

impl Module for LoweredNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let len = self.len();
        self.forward_range(0..len, x, train)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let len = self.len();
        self.backward_range(0..len, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for node in &mut self.nodes {
            node.visit_params(f);
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let len = self.len();
        self.stash_range(0..len, stash);
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let len = self.len();
        self.unstash_range(0..len, stash);
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        for node in &mut self.nodes {
            node.export_state(dict);
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        for node in &mut self.nodes {
            node.import_state(dict)?;
        }
        Ok(())
    }
}

/// Compiles `net` into a [`LoweredNet`], initializing parameters from
/// `rng` (Kaiming for convolutions and the classifier, ones/zeros for norm
/// scale/shift — the same scheme the hand-built models use).
///
/// Every IR construct the zoo uses lowers: conv, GN/BN/LRN, ReLU, max and
/// average pooling (padded or not), GAP, FC, residual (`Add`) blocks, and
/// Inception-style (`Concat`) blocks — so `inception_v3()`, `alexnet()`,
/// and `resnet(50)` all compile to runnable models.
///
/// # Examples
///
/// ```
/// use mbs_train::lower::lower;
/// use mbs_train::Module;
/// use mbs_tensor::Tensor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // A toy Inception-style network: concat block + padded pools.
/// let net = mbs_cnn::networks::toy::tiny_inception(16, 4);
/// let mut model = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
/// assert_eq!(model.len(), net.nodes().len()); // one module per IR node
/// let y = model.forward(&Tensor::full(&[2, 3, 16, 16], 0.1), false);
/// assert_eq!(y.shape(), &[2, net.output().channels]);
/// ```
///
/// # Errors
///
/// Returns a [`LowerError`] naming the offending layer for degenerate
/// pools (`pad >= kernel`) and for malformed block shapes the builders
/// never produce (an `Add` block without exactly two branches, a `Concat`
/// block with an empty branch, or a merge that is neither).
pub fn lower(net: &Network, rng: &mut StdRng) -> Result<LoweredNet, LowerError> {
    let nodes = net
        .nodes()
        .iter()
        .map(|node| {
            let body = match node {
                Node::Single(layer) => NodeBody::Single(Box::new(lower_layer(layer, rng)?)),
                Node::Block(block) => lower_block(block, rng)?,
            };
            Ok(NodeModule {
                name: node.name().to_owned(),
                body,
            })
        })
        .collect::<Result<Vec<_>, LowerError>>()?;
    Ok(LoweredNet {
        name: net.name().to_owned(),
        nodes,
    })
}

fn lower_layer(layer: &Layer, rng: &mut StdRng) -> Result<LayerModule, LowerError> {
    match layer.kind {
        LayerKind::Conv {
            kernel_h,
            kernel_w,
            stride,
            pad_h,
            pad_w,
        } => {
            let cfg = Conv2dCfg {
                kernel_h,
                kernel_w,
                stride,
                pad_h,
                pad_w,
            };
            Ok(LayerModule::Conv(Conv2d::from_cfg(
                layer.input.channels,
                layer.output.channels,
                cfg,
                rng,
            )))
        }
        LayerKind::Norm { kind } => {
            let channels = layer.input.channels;
            let norm = match kind {
                NormKind::Group { groups } => Norm::new(NormChoice::Group(groups), channels),
                NormKind::Batch => Norm::new(NormChoice::Batch, channels),
                NormKind::Local => Norm::Local(LocalResponseNorm::alexnet()),
            };
            Ok(LayerModule::Norm(norm))
        }
        LayerKind::Relu => Ok(LayerModule::Relu(Relu::new())),
        LayerKind::Pool {
            kind,
            kernel,
            stride,
            pad,
        } => {
            if pad >= kernel {
                // A window at the padded edge would contain no input cell.
                return Err(LowerError::new(
                    &layer.name,
                    format!(
                        "degenerate pool geometry: pad {pad} >= kernel {kernel} leaves \
                         all-padding windows ({kind:?} pool, kernel {kernel}x{kernel}, \
                         stride {stride}, pad {pad})"
                    ),
                ));
            }
            Ok(match kind {
                PoolKind::Max => LayerModule::MaxPool(MaxPool2d::with_pad(kernel, stride, pad)),
                PoolKind::Avg => LayerModule::AvgPool(AvgPool2d::new(kernel, stride, pad)),
            })
        }
        LayerKind::GlobalAvgPool => Ok(LayerModule::GlobalAvgPool(GlobalAvgPool::new())),
        LayerKind::FullyConnected => Ok(LayerModule::Fc {
            linear: Linear::new(layer.input.elems(), layer.output.channels, rng),
            in_shape: None,
        }),
        LayerKind::Add | LayerKind::Concat => Err(LowerError::new(
            &layer.name,
            "merge layers only occur inside blocks; a top-level merge has no second operand",
        )),
    }
}

/// Compiles `net` into an inference-ready [`LoweredNet`]: lowers the IR,
/// imports the trained `state` (consuming it), verifies nothing is left
/// over, and folds batch norms into their convolutions
/// ([`LoweredNet::fold_batch_norms`]). The serving front-end loads models
/// through this entry point.
///
/// `rng` only seeds the throwaway initial parameters that `state`
/// immediately overwrites, so any seed yields the same model.
///
/// # Examples
///
/// ```
/// use mbs_train::lower::{lower, lower_inference};
/// use mbs_train::{Module, StateDict};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let net = mbs_cnn::networks::toy::fig1_toy();
/// let mut trained = lower(&net, &mut StdRng::seed_from_u64(1)).unwrap();
/// let mut state = StateDict::default();
/// trained.export_state(&mut state);
/// let model = lower_inference(&net, &mut state, &mut StdRng::seed_from_u64(99)).unwrap();
/// assert_eq!(model.len(), net.nodes().len());
/// ```
///
/// # Errors
///
/// [`InferenceLowerError::Lower`] if the network does not lower, and
/// [`InferenceLowerError::State`] if `state` has too few entries, a shape
/// mismatch, or leftover entries — the symptoms of a checkpoint from a
/// different architecture.
pub fn lower_inference(
    net: &Network,
    state: &mut StateDict,
    rng: &mut StdRng,
) -> Result<LoweredNet, InferenceLowerError> {
    let mut model = lower(net, rng)?;
    model.import_state(state)?;
    if !state.is_empty() {
        return Err(StateError::Leftover {
            remaining: state.len(),
        }
        .into());
    }
    model.fold_batch_norms();
    Ok(model)
}

fn lower_chain(layers: &[Layer], rng: &mut StdRng) -> Result<Vec<LayerModule>, LowerError> {
    layers
        .iter()
        .map(|l| lower_layer(l, rng))
        .collect::<Result<Vec<_>, _>>()
}

fn lower_block(block: &Block, rng: &mut StdRng) -> Result<NodeBody, LowerError> {
    match block.merge.kind {
        LayerKind::Add => {
            if block.branches.len() != 2 {
                return Err(LowerError::new(
                    &block.name,
                    format!(
                        "residual lowering expects 2 branches, found {}",
                        block.branches.len()
                    ),
                ));
            }
            Ok(NodeBody::Block(LoweredBlock {
                main: lower_chain(&block.branches[0], rng)?,
                shortcut: lower_chain(&block.branches[1], rng)?,
                post: lower_chain(&block.post, rng)?,
            }))
        }
        LayerKind::Concat => {
            if block.branches.iter().any(Vec::is_empty) {
                return Err(LowerError::new(
                    &block.name,
                    "concat lowering requires non-empty branches",
                ));
            }
            let branch_channels = (0..block.branches.len())
                .map(|b| block.branch_output(b).channels)
                .collect();
            Ok(NodeBody::Concat(LoweredConcat {
                branches: block
                    .branches
                    .iter()
                    .map(|b| lower_chain(b, rng))
                    .collect::<Result<Vec<_>, _>>()?,
                branch_channels,
                post: lower_chain(&block.post, rng)?,
            }))
        }
        _ => Err(LowerError::new(
            &block.merge.name,
            "block merge must be Add (residual) or Concat (inception)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::toy;
    use mbs_cnn::{FeatureShape, NetworkBuilder};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn lowers_the_runtime_mix_network() {
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).expect("runtime_mix must lower");
        assert_eq!(m.len(), net.nodes().len());
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 13) as f32 - 6.0) / 4.0)
                .collect(),
        );
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, net.output().channels]);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn lowered_forward_shapes_match_ir_shape_inference() {
        // Every node's runtime output must agree with the IR's per-node
        // shape inference — the property the grouped executor relies on
        // when it sizes boundary buffers from live chunks.
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).unwrap();
        let mut x = Tensor::full(&[2, 3, 8, 8], 0.5);
        for (i, node) in net.nodes().iter().enumerate() {
            x = m.forward_range(i..i + 1, x, false);
            let out = node.output();
            let want: Vec<usize> = if x.shape().len() == 4 {
                vec![2, out.channels, out.height, out.width]
            } else {
                vec![2, out.elems()]
            };
            assert_eq!(x.shape(), &want[..], "node {}", node.name());
        }
    }

    #[test]
    fn range_execution_composes_to_full_execution() {
        let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4);
        let mut a = lower(&net, &mut rng()).unwrap();
        let mut b = lower(&net, &mut rng()).unwrap();
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 11) as f32 - 5.0) / 3.0)
                .collect(),
        );
        let y_full = a.forward(&x, true);
        let mid = net.nodes().len() / 2;
        let h = b.forward_range(0..mid, x.clone(), true);
        let y_split = b.forward_range(mid..net.nodes().len(), h, true);
        assert_eq!(y_full, y_split);

        let dy = Tensor::full(y_full.shape(), 0.25);
        let dx_full = a.backward(&dy);
        let dmid = b.backward_range(mid..net.nodes().len(), &dy);
        let dx_split = b.backward_range(0..mid, &dmid);
        assert_eq!(dx_full, dx_split);
    }

    #[test]
    fn param_counts_match_the_ir() {
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).unwrap();
        let mut elems = 0usize;
        m.visit_params(&mut |p| elems += p.value.len());
        assert_eq!(elems, net.param_elems());
    }

    #[test]
    fn concat_blocks_lower_and_round_trip_gradients() {
        let net = toy::tiny_inception(8, 2);
        let mut m = lower(&net, &mut rng()).expect("tiny_inception must lower");
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 13) as f32 - 6.0) / 4.0)
                .collect(),
        );
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, net.output().channels]);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn padded_and_average_pooling_lower() {
        let net = NetworkBuilder::new("p", FeatureShape::new(3, 8, 8), 4)
            .pool("maxp", mbs_cnn::PoolKind::Max, 3, 2, 1)
            .unwrap()
            .pool("avgp", mbs_cnn::PoolKind::Avg, 3, 1, 1)
            .unwrap()
            .build();
        let mut m = lower(&net, &mut rng()).expect("padded pools must lower");
        let x = Tensor::full(&[1, 3, 8, 8], 0.5);
        let y = m.forward(&x, true);
        // 8 -> (8+2-3)/2+1 = 4, then 3x3/1 pad 1 preserves 4.
        assert_eq!(y.shape(), &[1, 3, 4, 4]);
    }

    #[test]
    fn degenerate_pool_error_names_layer_and_geometry() {
        let net = NetworkBuilder::new("p", FeatureShape::new(3, 8, 8), 4)
            .pool("stem.pool", mbs_cnn::PoolKind::Avg, 2, 2, 2)
            .unwrap()
            .build();
        let err = lower(&net, &mut rng()).unwrap_err();
        assert_eq!(err.layer(), "stem.pool");
        let msg = err.to_string();
        // The message must carry the node name and the full geometry.
        for needle in [
            "stem.pool",
            "Avg",
            "kernel 2x2",
            "stride 2",
            "pad 2",
            "all-padding windows",
        ] {
            assert!(msg.contains(needle), "missing {needle:?} in {msg:?}");
        }
    }

    #[test]
    fn full_zoo_networks_lower() {
        // The acceptance bar of the full-network-lowering PR: InceptionV3
        // (concat blocks, avg pools, rectangular kernels) and AlexNet
        // (LRN, big FCs) compile without LowerError, with one module per
        // scheduling unit and IR-truthful parameter counts.
        for net in [
            mbs_cnn::networks::inception_v3(),
            mbs_cnn::networks::alexnet(),
        ] {
            let mut m = lower(&net, &mut rng())
                .unwrap_or_else(|e| panic!("{} must lower: {e}", net.name()));
            assert_eq!(m.len(), net.nodes().len(), "{}", net.name());
            let mut elems = 0usize;
            m.visit_params(&mut |p| elems += p.value.len());
            assert_eq!(elems, net.param_elems(), "{}", net.name());
        }
    }

    #[test]
    fn stash_range_round_trip_matches_unstashed_backward() {
        let net = toy::runtime_mix(8, 4);
        let mut a = lower(&net, &mut rng()).unwrap();
        let mut b = lower(&net, &mut rng()).unwrap();
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 7) as f32 - 3.0) / 2.0)
                .collect(),
        );
        let ya = a.forward(&x, true);
        let _ = b.forward(&x, true);
        // Stash b's caches, clobber them with a second forward, restore.
        let mut stash = CacheStash::default();
        let len = b.len();
        b.stash_range(0..len, &mut stash);
        let _ = b.forward(&Tensor::full(x.shape(), 0.25), true);
        b.unstash_range(0..len, &mut stash);
        assert!(stash.is_empty(), "every entry must be consumed");
        let dy = Tensor::full(ya.shape(), 0.5);
        // Restored caches must reproduce the original backward bitwise.
        assert_eq!(a.backward(&dy), b.backward(&dy));
    }

    /// A small conv→BN net with a second BN that does *not* follow a conv
    /// (it follows a ReLU), so exactly one fold must happen.
    fn bn_net() -> Network {
        NetworkBuilder::new("bn_fold", FeatureShape::new(3, 8, 8), 4)
            .conv("c1", 6, 3, 1, 1)
            .unwrap()
            .norm("n1", NormKind::Batch)
            .relu("r1")
            .norm("n2", NormKind::Batch)
            .global_avg_pool("gap")
            .fully_connected("fc", 5)
            .build()
    }

    /// Eval-output tolerance for fold comparisons: folding rearranges the
    /// weight arithmetic, so at f32 the two sides agree to rounding
    /// (1e-4); under `MBS_PREC=bf16` each side also quantizes its
    /// (different) packed weights, widening agreement to the 2⁻⁸ budget.
    fn fold_tol() -> f32 {
        match mbs_tensor::prec::precision() {
            mbs_tensor::prec::Precision::F32 => 1e-4,
            mbs_tensor::prec::Precision::Bf16 => 2e-2,
        }
    }

    fn probe(shape: &[usize]) -> Tensor {
        Tensor::from_vec(
            shape,
            (0..shape.iter().product::<usize>())
                .map(|v| ((v % 11) as f32 - 5.0) / 3.0)
                .collect(),
        )
    }

    #[test]
    fn fold_batch_norms_matches_unfolded_eval() {
        let net = bn_net();
        let mut m = lower(&net, &mut rng()).unwrap();
        // Move the running statistics off their init so the fold bakes in
        // non-trivial means/vars.
        for step in 0..4 {
            let mut x = probe(&[4, 3, 8, 8]);
            x.scale(1.0 + step as f32 * 0.3);
            let _ = m.forward_owned(x, true);
        }
        let mut folded = m.clone();
        // Only the conv→BN pair folds; the BN after the ReLU stays.
        assert_eq!(folded.fold_batch_norms(), 1);
        let x = probe(&[2, 3, 8, 8]);
        let ye = m.forward(&x, false);
        let yf = folded.forward(&x, false);
        assert_eq!(ye.shape(), yf.shape());
        for (a, b) in ye.data().iter().zip(yf.data()) {
            assert!((a - b).abs() < fold_tol(), "unfolded {a} vs folded {b}");
        }
        // Folding is idempotent: nothing left to fold.
        assert_eq!(folded.fold_batch_norms(), 0);
    }

    #[test]
    fn fold_batch_norms_reaches_inside_residual_blocks() {
        let input = FeatureShape::new(4, 8, 8);
        let main = vec![
            Layer::conv("b_c1", input, 4, 3, 1, 1).unwrap(),
            Layer::norm("b_n1", input, NormKind::Batch),
            Layer::relu("b_r1", input),
        ];
        let block = Block::residual("res", input, main, vec![]).unwrap();
        let net = NetworkBuilder::new("bn_block", input, 4)
            .conv("stem", 4, 3, 1, 1)
            .unwrap()
            .norm("stem_n", NormKind::Batch)
            .block(block)
            .global_avg_pool("gap")
            .fully_connected("fc", 3)
            .build();
        let mut m = lower(&net, &mut rng()).unwrap();
        for _ in 0..3 {
            let _ = m.forward_owned(probe(&[4, 4, 8, 8]), true);
        }
        let mut folded = m.clone();
        // One fold inside the block chain, one across the top-level
        // stem conv → stem norm node pair.
        assert_eq!(folded.fold_batch_norms(), 2);
        let x = probe(&[2, 4, 8, 8]);
        let ye = m.forward(&x, false);
        let yf = folded.forward(&x, false);
        for (a, b) in ye.data().iter().zip(yf.data()) {
            assert!((a - b).abs() < fold_tol(), "unfolded {a} vs folded {b}");
        }
    }

    #[test]
    fn fold_leaves_group_and_local_norms_alone() {
        // tiny_resnet is all group norms; tiny_alexnet has LRN. Neither
        // folds, and both still evaluate identically afterwards.
        for net in [toy::tiny_resnet(1, 4), toy::tiny_alexnet(8, 4)] {
            let mut m = lower(&net, &mut rng()).unwrap();
            let mut folded = m.clone();
            assert_eq!(folded.fold_batch_norms(), 0, "{}", net.name());
            let sh = net.input();
            let x = probe(&[2, sh.channels, sh.height, sh.width]);
            assert_eq!(m.forward(&x, false), folded.forward(&x, false));
        }
    }

    #[test]
    fn lower_inference_round_trips_state_and_rejects_mismatches() {
        let net = bn_net();
        let mut trained = lower(&net, &mut rng()).unwrap();
        for _ in 0..3 {
            let _ = trained.forward_owned(probe(&[4, 3, 8, 8]), true);
        }
        let mut state = StateDict::default();
        trained.export_state(&mut state);
        let entries = state.clone();
        let mut served = lower_inference(&net, &mut state, &mut StdRng::seed_from_u64(99)).unwrap();
        // The served model must agree with the trained model's eval path
        // up to fold rounding (different init seed proves state wins).
        let x = probe(&[2, 3, 8, 8]);
        let ye = trained.forward(&x, false);
        let yf = served.forward(&x, false);
        for (a, b) in ye.data().iter().zip(yf.data()) {
            assert!((a - b).abs() < fold_tol(), "trained {a} vs served {b}");
        }
        // Leftover entries are an error (state from a bigger model)...
        let mut extra = entries.clone();
        extra.push_slice(&[1.0, 2.0]);
        match lower_inference(&net, &mut extra, &mut rng()) {
            Err(InferenceLowerError::State(StateError::Leftover { remaining: 1 })) => {}
            other => panic!("expected leftover error, got {other:?}"),
        }
        // ...and so is running dry (state from a smaller model).
        let mut short = StateDict::default();
        let mut n = entries.len();
        let mut full = entries;
        while n > 1 {
            short.push(full.pop(0).unwrap());
            n -= 1;
        }
        match lower_inference(&net, &mut short, &mut rng()) {
            Err(InferenceLowerError::State(StateError::Missing { .. })) => {}
            other => panic!("expected missing error, got {other:?}"),
        }
    }
}
