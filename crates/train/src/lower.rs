//! Lowering: compile an [`mbs_cnn::Network`] (the analytical IR the MBS
//! scheduler consumes) into a runnable chain of [`Module`] layers.
//!
//! This is the bridge between the repo's two halves. The IR side describes
//! networks as shapes and layer kinds so `mbs_core::MbsScheduler` can size
//! sub-batches and form groups; this module turns the *same* description
//! into live `mbs_train` layers with initialized parameters, one
//! [`NodeModule`] per IR [`Node`] — exactly the granularity schedules are
//! expressed in, so a [`crate::grouped::GroupedExecutor`] can map each
//! schedule group straight onto a contiguous module range.
//!
//! The supported subset is the set of [`LayerKind`]s the training substrate
//! implements: convolution (bias-free, rectangular kernels allowed), group
//! and batch normalization, ReLU, unpadded max pooling, global average
//! pooling, fully-connected (with flattening), and two-branch residual
//! blocks merged by `Add`. Inception-style `Concat` blocks, local response
//! norm, average (non-global) pooling, and padded pooling produce a
//! [`LowerError`] naming the offending layer.

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;

use mbs_cnn::{Block, Layer, LayerKind, Network, Node, NormKind, PoolKind};
use mbs_tensor::ops::Conv2dCfg;
use mbs_tensor::Tensor;

use crate::layers::{Conv2d, GlobalAvgPool, Linear, MaxPool2d, Relu};
use crate::module::{Module, Param};
use crate::norm::{Norm, NormChoice};

/// Error raised when a network uses an IR construct the training runtime
/// does not implement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    layer: String,
    reason: String,
}

impl LowerError {
    fn new(layer: &str, reason: impl Into<String>) -> Self {
        Self {
            layer: layer.to_owned(),
            reason: reason.into(),
        }
    }

    /// Name of the IR layer that could not be lowered.
    pub fn layer(&self) -> &str {
        &self.layer
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot lower layer {}: {}", self.layer, self.reason)
    }
}

impl std::error::Error for LowerError {}

/// One lowered IR layer: a thin dispatch wrapper so a whole branch or node
/// can be stored as `Vec<LayerModule>` without boxing.
#[derive(Debug, Clone)]
enum LayerModule {
    Conv(Conv2d),
    Norm(Norm),
    Relu(Relu),
    MaxPool(MaxPool2d),
    GlobalAvgPool(GlobalAvgPool),
    /// Fully-connected with flatten plumbing: remembers the (possibly 4-D)
    /// input shape of the last forward so backward can restore it on the
    /// gradient it hands upstream.
    Fc {
        linear: Linear,
        in_shape: Option<Vec<usize>>,
    },
}

impl Module for LayerModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            LayerModule::Conv(m) => m.forward_owned(x, train),
            LayerModule::Norm(m) => m.forward_owned(x, train),
            LayerModule::Relu(m) => m.forward_owned(x, train),
            LayerModule::MaxPool(m) => m.forward(&x, train),
            LayerModule::GlobalAvgPool(m) => m.forward_owned(x, train),
            LayerModule::Fc { linear, in_shape } => {
                let x = if x.shape().len() > 2 {
                    *in_shape = Some(x.shape().to_vec());
                    let n = x.shape()[0];
                    let flat = x.len() / n.max(1);
                    x.into_reshaped(&[n, flat])
                } else {
                    *in_shape = None;
                    x
                };
                linear.forward_owned(x, train)
            }
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self {
            LayerModule::Conv(m) => m.backward(dy),
            LayerModule::Norm(m) => m.backward(dy),
            LayerModule::Relu(m) => m.backward(dy),
            LayerModule::MaxPool(m) => m.backward(dy),
            LayerModule::GlobalAvgPool(m) => m.backward(dy),
            LayerModule::Fc { linear, in_shape } => {
                let d = linear.backward(dy);
                match in_shape {
                    Some(shape) => d.into_reshaped(shape),
                    None => d,
                }
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            LayerModule::Conv(m) => m.visit_params(f),
            LayerModule::Norm(m) => m.visit_params(f),
            LayerModule::Relu(m) => m.visit_params(f),
            LayerModule::MaxPool(m) => m.visit_params(f),
            LayerModule::GlobalAvgPool(m) => m.visit_params(f),
            LayerModule::Fc { linear, .. } => linear.visit_params(f),
        }
    }
}

/// A lowered two-branch residual block: main chain, shortcut chain (empty
/// = identity), element-wise add, then the post-merge layers (the IR puts
/// the block's output ReLU there).
#[derive(Debug, Clone)]
struct LoweredBlock {
    main: Vec<LayerModule>,
    shortcut: Vec<LayerModule>,
    post: Vec<LayerModule>,
}

impl Module for LoweredBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        // As in `model::ResidualBlock`: the first main layer borrows `x`
        // (the shortcut still needs it), everything after runs owned.
        let mut h = match self.main.first_mut() {
            Some(first) => first.forward(&x, train),
            None => x.clone(),
        };
        for m in self.main.iter_mut().skip(1) {
            h = m.forward_owned(h, train);
        }
        let mut s = x;
        for m in &mut self.shortcut {
            s = m.forward_owned(s, train);
        }
        h.add_assign(&s);
        drop(s);
        for m in &mut self.post {
            h = m.forward_owned(h, train);
        }
        h
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mut g = dy.clone();
        for m in self.post.iter_mut().rev() {
            g = m.backward(&g);
        }
        // Both add operands receive `g`.
        let mut d = g.clone();
        for m in self.main.iter_mut().rev() {
            d = m.backward(&d);
        }
        let mut ds = g;
        for m in self.shortcut.iter_mut().rev() {
            ds = m.backward(&ds);
        }
        d.add_assign(&ds);
        d
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for m in &mut self.main {
            m.visit_params(f);
        }
        for m in &mut self.shortcut {
            m.visit_params(f);
        }
        for m in &mut self.post {
            m.visit_params(f);
        }
    }
}

/// One lowered scheduling unit: the runtime mirror of [`mbs_cnn::Node`].
#[derive(Debug, Clone)]
pub struct NodeModule {
    name: String,
    body: NodeBody,
}

#[derive(Debug, Clone)]
enum NodeBody {
    Single(Box<LayerModule>),
    Block(LoweredBlock),
}

impl NodeModule {
    /// Name of the IR node this module was lowered from.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Module for NodeModule {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match &mut self.body {
            NodeBody::Single(m) => m.forward_owned(x, train),
            NodeBody::Block(b) => b.forward_owned(x, train),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &mut self.body {
            NodeBody::Single(m) => m.backward(dy),
            NodeBody::Block(b) => b.backward(dy),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match &mut self.body {
            NodeBody::Single(m) => m.visit_params(f),
            NodeBody::Block(b) => b.visit_params(f),
        }
    }
}

/// A network lowered from the IR: one [`NodeModule`] per IR node, runnable
/// whole (it implements [`Module`]) or range-wise (the entry points the
/// grouped executor uses).
#[derive(Debug, Clone)]
pub struct LoweredNet {
    name: String,
    nodes: Vec<NodeModule>,
}

impl LoweredNet {
    /// Name of the source network.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of scheduling units — equals `net.nodes().len()` of the
    /// source IR, so schedule node indices map 1:1.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The lowered scheduling units in execution order.
    pub fn nodes(&self) -> &[NodeModule] {
        &self.nodes
    }

    /// Forward through nodes `range` only, consuming the input — the
    /// grouped executor streams each schedule group through this.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn forward_range(&mut self, range: Range<usize>, mut x: Tensor, train: bool) -> Tensor {
        for node in &mut self.nodes[range] {
            x = node.forward_owned(x, train);
        }
        x
    }

    /// Backward through nodes `range` in reverse, returning the gradient
    /// with respect to the range's input.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or a node in the range has no
    /// cached training forward.
    pub fn backward_range(&mut self, range: Range<usize>, dy: &Tensor) -> Tensor {
        let mut iter = self.nodes[range].iter_mut().rev();
        let mut d = match iter.next() {
            Some(node) => node.backward(dy),
            None => dy.clone(),
        };
        for node in iter {
            d = node.backward(&d);
        }
        d
    }
}

impl Module for LoweredNet {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let len = self.len();
        self.forward_range(0..len, x, train)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let len = self.len();
        self.backward_range(0..len, dy)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for node in &mut self.nodes {
            node.visit_params(f);
        }
    }
}

/// Compiles `net` into a [`LoweredNet`], initializing parameters from
/// `rng` (Kaiming for convolutions and the classifier, ones/zeros for norm
/// scale/shift — the same scheme the hand-built models use).
///
/// # Errors
///
/// Returns a [`LowerError`] naming the first layer whose kind the training
/// runtime does not implement.
pub fn lower(net: &Network, rng: &mut StdRng) -> Result<LoweredNet, LowerError> {
    let nodes = net
        .nodes()
        .iter()
        .map(|node| {
            let body = match node {
                Node::Single(layer) => NodeBody::Single(Box::new(lower_layer(layer, rng)?)),
                Node::Block(block) => NodeBody::Block(lower_block(block, rng)?),
            };
            Ok(NodeModule {
                name: node.name().to_owned(),
                body,
            })
        })
        .collect::<Result<Vec<_>, LowerError>>()?;
    Ok(LoweredNet {
        name: net.name().to_owned(),
        nodes,
    })
}

fn lower_layer(layer: &Layer, rng: &mut StdRng) -> Result<LayerModule, LowerError> {
    match layer.kind {
        LayerKind::Conv {
            kernel_h,
            kernel_w,
            stride,
            pad_h,
            pad_w,
        } => {
            let cfg = Conv2dCfg {
                kernel_h,
                kernel_w,
                stride,
                pad_h,
                pad_w,
            };
            Ok(LayerModule::Conv(Conv2d::from_cfg(
                layer.input.channels,
                layer.output.channels,
                cfg,
                rng,
            )))
        }
        LayerKind::Norm { kind } => {
            let channels = layer.input.channels;
            let choice = match kind {
                NormKind::Group { groups } => NormChoice::Group(groups),
                NormKind::Batch => NormChoice::Batch,
                NormKind::Local => {
                    return Err(LowerError::new(
                        &layer.name,
                        "local response normalization is not implemented by the runtime",
                    ))
                }
            };
            Ok(LayerModule::Norm(Norm::new(choice, channels)))
        }
        LayerKind::Relu => Ok(LayerModule::Relu(Relu::new())),
        LayerKind::Pool {
            kind: PoolKind::Max,
            kernel,
            stride,
            pad: 0,
        } => Ok(LayerModule::MaxPool(MaxPool2d::new(kernel, stride))),
        LayerKind::Pool { kind, pad, .. } => Err(LowerError::new(
            &layer.name,
            format!("only unpadded max pooling is implemented (kind {kind:?}, pad {pad})"),
        )),
        LayerKind::GlobalAvgPool => Ok(LayerModule::GlobalAvgPool(GlobalAvgPool::new())),
        LayerKind::FullyConnected => Ok(LayerModule::Fc {
            linear: Linear::new(layer.input.elems(), layer.output.channels, rng),
            in_shape: None,
        }),
        LayerKind::Add | LayerKind::Concat => Err(LowerError::new(
            &layer.name,
            "merge layers only occur inside blocks; a top-level merge has no second operand",
        )),
    }
}

fn lower_block(block: &Block, rng: &mut StdRng) -> Result<LoweredBlock, LowerError> {
    if !matches!(block.merge.kind, LayerKind::Add) {
        return Err(LowerError::new(
            &block.merge.name,
            "only residual (Add-merged) blocks are implemented; Concat is not",
        ));
    }
    if block.branches.len() != 2 {
        return Err(LowerError::new(
            &block.name,
            format!(
                "residual lowering expects 2 branches, found {}",
                block.branches.len()
            ),
        ));
    }
    let chain = |layers: &[Layer], rng: &mut StdRng| {
        layers
            .iter()
            .map(|l| lower_layer(l, rng))
            .collect::<Result<Vec<_>, _>>()
    };
    Ok(LoweredBlock {
        main: chain(&block.branches[0], rng)?,
        shortcut: chain(&block.branches[1], rng)?,
        post: chain(&block.post, rng)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbs_cnn::networks::toy;
    use mbs_cnn::{FeatureShape, NetworkBuilder};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn lowers_the_runtime_mix_network() {
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).expect("runtime_mix must lower");
        assert_eq!(m.len(), net.nodes().len());
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 13) as f32 - 6.0) / 4.0)
                .collect(),
        );
        let y = m.forward(&x, true);
        assert_eq!(y.shape(), &[2, net.output().channels]);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let dx = m.backward(&Tensor::full(y.shape(), 0.1));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn lowered_forward_shapes_match_ir_shape_inference() {
        // Every node's runtime output must agree with the IR's per-node
        // shape inference — the property the grouped executor relies on
        // when it sizes boundary buffers from live chunks.
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).unwrap();
        let mut x = Tensor::full(&[2, 3, 8, 8], 0.5);
        for (i, node) in net.nodes().iter().enumerate() {
            x = m.forward_range(i..i + 1, x, false);
            let out = node.output();
            let want: Vec<usize> = if x.shape().len() == 4 {
                vec![2, out.channels, out.height, out.width]
            } else {
                vec![2, out.elems()]
            };
            assert_eq!(x.shape(), &want[..], "node {}", node.name());
        }
    }

    #[test]
    fn range_execution_composes_to_full_execution() {
        let net = toy::conv_chain(&[4, 8], FeatureShape::new(3, 8, 8), 4);
        let mut a = lower(&net, &mut rng()).unwrap();
        let mut b = lower(&net, &mut rng()).unwrap();
        let x = Tensor::from_vec(
            &[2, 3, 8, 8],
            (0..2 * 3 * 64)
                .map(|v| ((v % 11) as f32 - 5.0) / 3.0)
                .collect(),
        );
        let y_full = a.forward(&x, true);
        let mid = net.nodes().len() / 2;
        let h = b.forward_range(0..mid, x.clone(), true);
        let y_split = b.forward_range(mid..net.nodes().len(), h, true);
        assert_eq!(y_full, y_split);

        let dy = Tensor::full(y_full.shape(), 0.25);
        let dx_full = a.backward(&dy);
        let dmid = b.backward_range(mid..net.nodes().len(), &dy);
        let dx_split = b.backward_range(0..mid, &dmid);
        assert_eq!(dx_full, dx_split);
    }

    #[test]
    fn param_counts_match_the_ir() {
        let net = toy::runtime_mix(8, 4);
        let mut m = lower(&net, &mut rng()).unwrap();
        let mut elems = 0usize;
        m.visit_params(&mut |p| elems += p.value.len());
        assert_eq!(elems, net.param_elems());
    }

    #[test]
    fn concat_blocks_are_rejected() {
        let net = mbs_cnn::networks::inception_v3();
        let err = lower(&net, &mut rng()).unwrap_err();
        assert!(err.to_string().contains("cannot lower"));
    }

    #[test]
    fn padded_pooling_is_rejected() {
        let net = NetworkBuilder::new("p", FeatureShape::new(3, 8, 8), 4)
            .pool("pool", mbs_cnn::PoolKind::Max, 3, 2, 1)
            .unwrap()
            .build();
        let err = lower(&net, &mut rng()).unwrap_err();
        assert_eq!(err.layer(), "pool");
    }
}
