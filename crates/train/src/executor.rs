//! Training-step executors: conventional full-mini-batch propagation and
//! the MBS sub-batch-serialized flow.
//!
//! The serialized executor is the algorithmic core of the paper's
//! correctness claim (§3): if the synchronization points are maintained —
//! loss gradients scaled by the *total* mini-batch size and parameter
//! gradients accumulated across sub-batches before the optimizer step —
//! serialization does not alter the training result for per-sample
//! normalizations like GN. [`train_step_mbs`] and [`train_step_full`]
//! produce identical parameter updates (up to f32 rounding) for GN models,
//! and the test suite pins that equivalence.

use mbs_tensor::ops::{cross_entropy, softmax, softmax_xent_backward};
use mbs_tensor::Tensor;

use crate::module::{slice_batch_into, slice_batch_owned, Module};
use crate::optim::Sgd;

/// One conventional training step over the full mini-batch. Returns the
/// mean loss.
///
/// # Panics
///
/// Panics if `labels` length differs from the batch size.
pub fn train_step_full(model: &mut dyn Module, x: &Tensor, labels: &[usize], opt: &mut Sgd) -> f32 {
    let n = x.shape()[0];
    assert_eq!(labels.len(), n, "one label per sample");
    model.zero_grad();
    let logits = model.forward(x, true);
    let probs = softmax(&logits);
    let loss = cross_entropy(&probs, labels);
    let dlogits = softmax_xent_backward(&probs, labels, n);
    let _ = model.backward(&dlogits);
    opt.step(model);
    loss
}

/// One MBS-serialized training step: the mini-batch is propagated
/// `sub_batch` samples at a time, loss gradients are scaled by the *total*
/// batch size, and parameter gradients accumulate across sub-batches; the
/// optimizer runs once at the end (the paper's synchronization point).
/// Returns the mean loss over the whole mini-batch.
///
/// # Panics
///
/// Panics if `sub_batch` is zero or `labels` length differs from the batch
/// size.
pub fn train_step_mbs(
    model: &mut dyn Module,
    x: &Tensor,
    labels: &[usize],
    sub_batch: usize,
    opt: &mut Sgd,
) -> f32 {
    let n = x.shape()[0];
    assert!(sub_batch > 0, "sub_batch must be positive");
    assert_eq!(labels.len(), n, "one label per sample");
    model.zero_grad();
    let mut loss_sum = 0.0f32;
    let mut start = 0;
    // One reusable sub-batch buffer for the whole serialized loop; the
    // kernels' scratch (packing panels, column gradients) is pooled in
    // `mbs_tensor::arena`, so steady-state sub-batches allocate nothing new.
    let mut xs = Tensor::zeros(&[0]);
    while start < n {
        let end = (start + sub_batch).min(n);
        slice_batch_into(x, start, end, &mut xs);
        let ls = &labels[start..end];
        let logits = model.forward(&xs, true);
        let probs = softmax(&logits);
        loss_sum += cross_entropy(&probs, ls) * (end - start) as f32;
        // Scale by the full mini-batch so accumulated gradients equal the
        // full-batch gradient exactly.
        let dlogits = softmax_xent_backward(&probs, ls, n);
        let _ = model.backward(&dlogits);
        start = end;
    }
    opt.step(model);
    loss_sum / n as f32
}

/// Mean loss and classification error (%) of `model` on a labeled set,
/// evaluated in inference mode in chunks of `batch`.
pub fn evaluate(
    model: &mut dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch: usize,
) -> (f32, f64) {
    let n = images.shape()[0];
    let mut loss_sum = 0.0f32;
    let mut hits = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + batch.max(1)).min(n);
        // The chunk is a private arena-pooled staging buffer, so hand the
        // chain ownership: ReLUs clamp it in place instead of allocating,
        // and no layer pays a defensive clone. Dropping each chunk returns
        // its storage to the pool for the next one (pure hits).
        let xs = slice_batch_owned(images, start, end);
        let ls = &labels[start..end];
        let logits = model.forward_owned(xs, false);
        let probs = softmax(&logits);
        loss_sum += cross_entropy(&probs, ls) * (end - start) as f32;
        // Count top-1 hits directly — reconstructing them by rounding
        // `accuracy * chunk` mis-counts when the product lands on a .5
        // boundary in f64.
        hits += mbs_tensor::ops::correct(&logits, ls);
        start = end;
    }
    let loss = loss_sum / n as f32;
    let err = 100.0 * (1.0 - hits as f64 / n as f64);
    (loss, err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::generate;
    use crate::model::MiniResNet;
    use crate::norm::NormChoice;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn models(choice: NormChoice) -> (MiniResNet, MiniResNet) {
        // Same seed => identical initial weights.
        let a = MiniResNet::new(3, 4, 1, choice, &mut StdRng::seed_from_u64(11));
        let b = MiniResNet::new(3, 4, 1, choice, &mut StdRng::seed_from_u64(11));
        (a, b)
    }

    fn max_param_diff(a: &mut MiniResNet, b: &mut MiniResNet) -> f32 {
        let mut pa = Vec::new();
        a.visit_params(&mut |p| pa.push(p.value.clone()));
        let mut i = 0;
        let mut worst = 0.0f32;
        b.visit_params(&mut |p| {
            worst = worst.max(pa[i].max_abs_diff(&p.value));
            i += 1;
        });
        worst
    }

    /// The paper's central correctness claim: GN + MBS == GN unserialized.
    #[test]
    fn gn_mbs_step_equals_full_batch_step() {
        let d = generate(8, 8, 0.3, 21);
        let (mut full, mut mbs) = models(NormChoice::Group(4));
        let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
        let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
        for _ in 0..3 {
            let l_full = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
            let l_mbs = train_step_mbs(&mut mbs, &d.images, &d.labels, 3, &mut opt_b);
            assert!((l_full - l_mbs).abs() < 1e-4, "losses {l_full} vs {l_mbs}");
        }
        let diff = max_param_diff(&mut full, &mut mbs);
        assert!(diff < 5e-4, "GN+MBS diverged from full-batch GN: {diff}");
    }

    /// And the reason BN is incompatible: serialized BN sees different
    /// statistics, so the updates differ.
    #[test]
    fn bn_mbs_step_differs_from_full_batch_step() {
        let d = generate(8, 8, 0.3, 22);
        let (mut full, mut mbs) = models(NormChoice::Batch);
        let mut opt_a = Sgd::new(0.05, 0.9, 0.0);
        let mut opt_b = Sgd::new(0.05, 0.9, 0.0);
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let _ = train_step_mbs(&mut mbs, &d.images, &d.labels, 2, &mut opt_b);
        let diff = max_param_diff(&mut full, &mut mbs);
        assert!(diff > 1e-5, "BN should NOT be sub-batch invariant: {diff}");
    }

    #[test]
    fn sub_batch_size_one_also_matches() {
        // Full serialization (one sample at a time) — the extreme case the
        // paper discusses in §3.
        let d = generate(6, 8, 0.3, 23);
        let (mut full, mut mbs) = models(NormChoice::Group(4));
        let mut opt_a = Sgd::new(0.05, 0.9, 0.0);
        let mut opt_b = Sgd::new(0.05, 0.9, 0.0);
        let _ = train_step_full(&mut full, &d.images, &d.labels, &mut opt_a);
        let _ = train_step_mbs(&mut mbs, &d.images, &d.labels, 1, &mut opt_b);
        let diff = max_param_diff(&mut full, &mut mbs);
        assert!(diff < 5e-4, "full serialization diverged: {diff}");
    }

    #[test]
    fn training_reduces_loss() {
        let d = generate(32, 8, 0.25, 24);
        let mut m = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(9));
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let first = train_step_mbs(&mut m, &d.images, &d.labels, 8, &mut opt);
        let mut last = first;
        for _ in 0..15 {
            last = train_step_mbs(&mut m, &d.images, &d.labels, 8, &mut opt);
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn evaluate_reports_loss_and_error() {
        let d = generate(16, 8, 0.3, 25);
        let mut m = MiniResNet::new(
            3,
            4,
            1,
            NormChoice::Group(4),
            &mut StdRng::seed_from_u64(10),
        );
        let (loss, err) = evaluate(&mut m, &d.images, &d.labels, 4);
        assert!(loss > 0.0);
        assert!((0.0..=100.0).contains(&err));
    }
}
