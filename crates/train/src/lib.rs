#![warn(missing_docs)]

//! CNN training substrate for the MBS reproduction (paper §3.1 / Fig. 6).
//!
//! Implements from scratch everything the Fig. 6 experiment needs:
//! trainable layers with backward passes ([`layers`]), batch and group
//! normalization ([`norm`]), a residual CNN ([`model`]), SGD with momentum
//! ([`optim`]), a seeded synthetic dataset ([`data`]), and — centrally —
//! the **MBS serialized executor** ([`executor`]): sub-batch propagation
//! with cross-sub-batch gradient accumulation that is numerically
//! equivalent to full-mini-batch training for group normalization and
//! provably *not* equivalent for batch normalization.
//!
//! Since the schedule-driven-execution PR this crate is also where the
//! repo's two halves meet: [`lower::lower`] compiles an
//! [`mbs_cnn::Network`] (the IR the scheduler consumes — including
//! Inception-style `Concat` blocks, padded/average pooling, and local
//! response norm, so the full zoo lowers) into a runnable [`LoweredNet`],
//! [`grouped::GroupedExecutor`] runs the training step exactly as an
//! `mbs_core` [`mbs_core::Schedule`] prescribes — per-group sub-batch
//! sizes, boundary staging, and a **cache-stashing** backward that keeps
//! every chunk's layer caches alive instead of re-running forwards
//! (`MBS_STASH=0` restores the replay strategy) — and
//! [`training::train_grouped`] drives the full epoch loop (shuffling,
//! evaluation, stepped LR) through that executor.
//!
//! Grouped training is **crash-safe**: [`checkpoint`] provides durable,
//! atomically written, checksummed checkpoints (model state, momentum,
//! shuffle-RNG position, epoch/step cursor) guarded by a
//! schedule fingerprint, and `train_grouped` resumes from the newest
//! valid one — a killed-and-resumed run reproduces the unkilled epoch
//! curve bitwise. See `docs/ARCHITECTURE.md` § Durable state.
//!
//! The training set no longer has to fit in memory: [`loader`] defines
//! the chunked, checksummed `*.mbsds` on-disk dataset format (same
//! atomic-write discipline as checkpoints), a streaming synthetic-
//! ImageNet generator, and a background-prefetch [`loader::StreamLoader`]
//! feeding recycled arena-pooled batch buffers.
//! [`training::train_grouped_source`] trains off either source; the
//! streamed path is **bitwise identical** to the in-memory one — loss
//! curve, final parameters, and checkpoint kill/resume — across every
//! prefetch depth. See `docs/ARCHITECTURE.md` § Data pipeline.
//!
//! # Examples
//!
//! ```
//! use mbs_train::data::generate;
//! use mbs_train::executor::{train_step_full, train_step_mbs};
//! use mbs_train::model::MiniResNet;
//! use mbs_train::norm::NormChoice;
//! use mbs_train::optim::Sgd;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let d = generate(8, 8, 0.3, 7);
//! // Identical seeds => identical models.
//! let mut full = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
//! let mut mbs = MiniResNet::new(3, 4, 1, NormChoice::Group(4), &mut StdRng::seed_from_u64(1));
//! let (mut oa, mut ob) = (Sgd::new(0.05, 0.9, 0.0), Sgd::new(0.05, 0.9, 0.0));
//!
//! let loss_full = train_step_full(&mut full, &d.images, &d.labels, &mut oa);
//! let loss_mbs = train_step_mbs(&mut mbs, &d.images, &d.labels, 2, &mut ob);
//! assert!((loss_full - loss_mbs).abs() < 1e-4); // MBS does not change training
//! ```

pub mod checkpoint;
pub mod data;
pub mod executor;
pub mod grouped;
pub mod layers;
pub mod loader;
pub mod lower;
pub mod model;
pub mod module;
pub mod norm;
pub mod optim;
pub mod training;

pub use checkpoint::{
    CheckpointConfig, CheckpointError, Fault, FaultPlan, LoadReport, TrainCheckpoint,
};
pub use executor::{evaluate, train_step_full, train_step_mbs};
pub use grouped::{stash_enabled, GroupedExecutor};
pub use loader::{generate_to, save_dataset, DiskDataset, LoaderError, LoaderStats, StreamLoader};
pub use lower::{lower, lower_inference, InferenceLowerError, LowerError, LoweredNet};
pub use model::MiniResNet;
pub use module::{CacheStash, Module, Param, StateDict, StateEntry, StateError};
pub use norm::{Norm, NormChoice};
pub use optim::Sgd;
pub use training::{
    train, train_grouped, train_grouped_source, train_grouped_source_with_stats, DataSource,
    EpochStats, TrainConfig, TrainError,
};
