//! Feature normalization: batch normalization and group normalization.
//!
//! BN normalizes each channel over the whole per-processor mini-batch, so
//! it fundamentally cannot be serialized into sub-batches — the statistics
//! change. GN normalizes channel groups *within a single sample* (Wu & He
//! 2018), which is why the paper adopts it for MBS (§3.1): sub-batch
//! serialization leaves GN's arithmetic bit-for-bit unchanged.

#![allow(clippy::needless_range_loop)] // indexed loops read several parallel buffers

use mbs_tensor::Tensor;

use crate::module::{Module, Param};

const EPS: f32 = 1e-5;

/// Batch normalization over `[n, c, h, w]`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    ivar: Vec<f32>,
}

impl BatchNorm2d {
    /// BN over `channels` with running-stat momentum 0.1.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cache: None,
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("bn expects 4-D");
        let m = (n * h * w) as f32;
        let xd = x.data();
        let mut y = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut ivar = vec![0.0f32; c];
        let gd = self.gamma.value.data().to_vec();
        let bd = self.beta.value.data().to_vec();

        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &xd[base..base + h * w] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let iv = 1.0 / (var + EPS).sqrt();
            ivar[ci] = iv;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let xh = (xd[i] - mean) * iv;
                    xhat.data_mut()[i] = xh;
                    y.data_mut()[i] = gd[ci] * xh + bd[ci];
                }
            }
        }
        if train {
            self.cache = Some(BnCache { xhat, ivar });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        let [n, c, h, w]: [usize; 4] = dy.shape().try_into().expect("bn expects 4-D");
        let m = (n * h * w) as f32;
        let dyd = dy.data();
        let xh = cache.xhat.data();
        let gd = self.gamma.value.data().to_vec();
        let mut dx = Tensor::zeros(dy.shape());

        for ci in 0..c {
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    sum_dy += dyd[i];
                    sum_dy_xhat += dyd[i] * xh[i];
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            let scale = gd[ci] * cache.ivar[ci] / m;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    dx.data_mut()[i] = scale * (m * dyd[i] - sum_dy - xh[i] * sum_dy_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// Group normalization over `[n, c, h, w]` with `groups` channel groups.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    groups: usize,
    gamma: Param,
    beta: Param,
    cache: Option<GnCache>,
}

#[derive(Debug, Clone)]
struct GnCache {
    xhat: Tensor,
    ivar: Vec<f32>, // per (sample, group)
}

impl GroupNorm {
    /// GN with the given group count.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels`.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "groups must divide channels"
        );
        Self {
            groups,
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            cache: None,
        }
    }
}

impl Module for GroupNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("gn expects 4-D");
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let xd = x.data();
        let mut y = Tensor::uninit(x.shape());
        let mut xhat = Tensor::uninit(x.shape());
        let mut ivar = vec![0.0f32; n * self.groups];
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();

        let yd = y.data_mut();
        let xhd = xhat.data_mut();
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    for &v in &xd[base..base + h * w] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                let iv = 1.0 / (var + EPS).sqrt();
                ivar[ni * self.groups + gi] = iv;
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let (gcc, bcc) = (gd[cc], bd[cc]);
                    let xs = &xd[base..base + h * w];
                    let xh = &mut xhd[base..base + h * w];
                    let ys = &mut yd[base..base + h * w];
                    for ((&v, xh_i), y_i) in xs.iter().zip(xh.iter_mut()).zip(ys.iter_mut()) {
                        let t = (v - mean) * iv;
                        *xh_i = t;
                        *y_i = gcc * t + bcc;
                    }
                }
            }
        }
        if train {
            self.cache = Some(GnCache { xhat, ivar });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        let [n, c, h, w]: [usize; 4] = dy.shape().try_into().expect("gn expects 4-D");
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let dyd = dy.data();
        let xh = cache.xhat.data();
        let gd = self.gamma.value.data();
        // Every element of dx is written below (all groups × all channels
        // cover the tensor), so the buffer starts uninitialized.
        let mut dx = Tensor::uninit(dy.shape());

        // Per-channel parameter gradients.
        for cc in 0..c {
            let mut s_dy = 0.0;
            let mut s_dyx = 0.0;
            for ni in 0..n {
                let base = (ni * c + cc) * h * w;
                for (&d, &xv) in dyd[base..base + h * w].iter().zip(&xh[base..base + h * w]) {
                    s_dy += d;
                    s_dyx += d * xv;
                }
            }
            self.beta.grad.data_mut()[cc] += s_dy;
            self.gamma.grad.data_mut()[cc] += s_dyx;
        }

        // Per-(sample, group) input gradients.
        let dxd = dx.data_mut();
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut sum_g = 0.0; // Σ γ·dy
                let mut sum_gx = 0.0; // Σ γ·dy·xhat
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let gcc = gd[cc];
                    for (&d, &xv) in dyd[base..base + h * w].iter().zip(&xh[base..base + h * w]) {
                        let g = gcc * d;
                        sum_g += g;
                        sum_gx += g * xv;
                    }
                }
                let iv = cache.ivar[ni * self.groups + gi];
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let gcc = gd[cc];
                    let dys = &dyd[base..base + h * w];
                    let xs = &xh[base..base + h * w];
                    let dst = &mut dxd[base..base + h * w];
                    for ((&d, &xv), out) in dys.iter().zip(xs).zip(dst.iter_mut()) {
                        let g = gcc * d;
                        *out = iv / m * (m * g - sum_g - xv * sum_gx);
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

/// The normalization choice for a model (paper Fig. 6 compares all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormChoice {
    /// Batch normalization (incompatible with MBS).
    Batch,
    /// Group normalization with the given group count (MBS-compatible).
    Group(usize),
    /// No normalization (Fig. 6a's divergent pre-activations).
    None,
}

/// A pluggable normalization module.
#[derive(Debug, Clone)]
pub enum Norm {
    /// Batch normalization.
    Batch(BatchNorm2d),
    /// Group normalization.
    Group(GroupNorm),
    /// Identity.
    None,
}

impl Norm {
    /// Builds the chosen normalization for `channels`.
    pub fn new(choice: NormChoice, channels: usize) -> Self {
        match choice {
            NormChoice::Batch => Norm::Batch(BatchNorm2d::new(channels)),
            NormChoice::Group(g) => Norm::Group(GroupNorm::new(channels, g)),
            NormChoice::None => Norm::None,
        }
    }
}

impl Module for Norm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            Norm::Batch(b) => b.forward(x, train),
            Norm::Group(g) => g.forward(x, train),
            Norm::None => x.clone(),
        }
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            Norm::Batch(b) => b.forward(&x, train),
            Norm::Group(g) => g.forward(&x, train),
            // The identity norm passes the owned activation straight
            // through — no clone, no allocation.
            Norm::None => x,
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self {
            Norm::Batch(b) => b.backward(dy),
            Norm::Group(g) => g.backward(dy),
            Norm::None => dy.clone(),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Norm::Batch(b) => b.visit_params(f),
            Norm::Group(g) => g.visit_params(f),
            Norm::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::slice_batch;

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 29 + salt * 13) % 31) as f32 - 15.0) / 6.0)
                .collect(),
        )
    }

    #[test]
    fn bn_normalizes_channel_statistics() {
        let mut bn = BatchNorm2d::new(3);
        let x = seeded(&[4, 3, 5, 5], 1);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for h in 0..5 {
                    for w in 0..5 {
                        vals.push(y.get(&[n, c, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gn_normalizes_per_sample_groups() {
        let mut gn = GroupNorm::new(4, 2);
        let x = seeded(&[2, 4, 3, 3], 2);
        let y = gn.forward(&x, true);
        for n in 0..2 {
            for g in 0..2 {
                let mut vals = Vec::new();
                for c in g * 2..(g + 1) * 2 {
                    for h in 0..3 {
                        for w in 0..3 {
                            vals.push(y.get(&[n, c, h, w]));
                        }
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                assert!(mean.abs() < 1e-4, "sample {n} group {g} mean {mean}");
            }
        }
    }

    /// The property MBS relies on (§3.1): GN of a sub-batch equals the
    /// corresponding rows of GN of the full batch; BN does not.
    #[test]
    fn gn_is_subbatch_invariant_bn_is_not() {
        let x = seeded(&[4, 4, 3, 3], 3);
        let first_two = slice_batch(&x, 0, 2);

        let mut gn = GroupNorm::new(4, 2);
        let full = gn.forward(&x, false);
        let mut gn2 = GroupNorm::new(4, 2);
        let part = gn2.forward(&first_two, false);
        assert!(slice_batch(&full, 0, 2).max_abs_diff(&part) < 1e-6);

        let mut bn = BatchNorm2d::new(4);
        let full = bn.forward(&x, true);
        let mut bn2 = BatchNorm2d::new(4);
        let part = bn2.forward(&first_two, true);
        assert!(slice_batch(&full, 0, 2).max_abs_diff(&part) > 1e-3);
    }

    fn grad_check_norm(norm: &mut dyn Module, shape: &[usize]) {
        let x = seeded(shape, 4);
        let y = norm.forward(&x, true);
        let dy = seeded(y.shape(), 5);
        let dx = norm.backward(&dy);
        let eps = 1e-2;
        for idx in [0usize, x.len() / 3, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f32 = norm
                .forward(&xp, true)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f32 = norm
                .forward(&xm, true)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
        // Restore the cache for callers (forward mutated it).
        let _ = norm.forward(&x, true);
    }

    #[test]
    fn bn_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        grad_check_norm(&mut bn, &[3, 2, 4, 4]);
    }

    #[test]
    fn gn_gradient_matches_finite_difference() {
        let mut gn = GroupNorm::new(4, 2);
        grad_check_norm(&mut gn, &[2, 4, 4, 4]);
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = seeded(&[4, 2, 3, 3], 6);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let train_out = bn.forward(&x, true);
        let eval_out = bn.forward(&x, false);
        // After many updates the running stats converge to batch stats.
        assert!(train_out.max_abs_diff(&eval_out) < 0.05);
    }

    #[test]
    #[should_panic(expected = "groups must divide")]
    fn gn_rejects_bad_groups() {
        let _ = GroupNorm::new(6, 4);
    }
}
