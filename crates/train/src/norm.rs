//! Feature normalization: batch, group, and local response normalization.
//!
//! BN normalizes each channel over the whole per-processor mini-batch, so
//! it fundamentally cannot be serialized into sub-batches — the statistics
//! change. GN normalizes channel groups *within a single sample* (Wu & He
//! 2018), which is why the paper adopts it for MBS (§3.1): sub-batch
//! serialization leaves GN's arithmetic bit-for-bit unchanged. LRN
//! (AlexNet's cross-channel normalization) is likewise per-sample and
//! MBS-compatible; the IR models it as `NormKind::Local` and the lowering
//! maps it onto [`LocalResponseNorm`].

#![allow(clippy::needless_range_loop)] // indexed loops read several parallel buffers

use mbs_tensor::Tensor;

use crate::module::{stash_mismatch, CacheEntry, CacheStash, Module, Param, StateDict, StateError};

const EPS: f32 = 1e-5;

/// Batch normalization over `[n, c, h, w]`.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    ivar: Vec<f32>,
}

impl BatchNorm2d {
    /// BN over `channels` with running-stat momentum 0.1.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            cache: None,
        }
    }

    /// The per-channel affine `(scale, shift)` an inference forward
    /// applies: `y[c] = scale[c]·x[c] + shift[c]` with
    /// `scale[c] = γ_c/√(var_c + ε)` and `shift[c] = β_c − mean_c·scale[c]`
    /// over the **running** statistics. This is what norm folding bakes
    /// into the preceding convolution's weights at model-load time (see
    /// [`crate::lower::LoweredNet::fold_batch_norms`]) — eval-mode BN is a
    /// fixed elementwise transform, unlike the data-dependent train mode.
    pub fn eval_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();
        let mut scale = Vec::with_capacity(gd.len());
        let mut shift = Vec::with_capacity(gd.len());
        for c in 0..gd.len() {
            let s = gd[c] / (self.running_var[c] + EPS).sqrt();
            scale.push(s);
            shift.push(bd[c] - self.running_mean[c] * s);
        }
        (scale, shift)
    }
}

impl Module for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("bn expects 4-D");
        let m = (n * h * w) as f32;
        let xd = x.data();
        let mut y = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut ivar = vec![0.0f32; c];
        let gd = self.gamma.value.data().to_vec();
        let bd = self.beta.value.data().to_vec();

        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &xd[base..base + h * w] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                self.running_mean[ci] =
                    (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                self.running_var[ci] =
                    (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let iv = 1.0 / (var + EPS).sqrt();
            ivar[ci] = iv;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let xh = (xd[i] - mean) * iv;
                    xhat.data_mut()[i] = xh;
                    y.data_mut()[i] = gd[ci] * xh + bd[ci];
                }
            }
        }
        if train {
            self.cache = Some(BnCache { xhat, ivar });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        let [n, c, h, w]: [usize; 4] = dy.shape().try_into().expect("bn expects 4-D");
        let m = (n * h * w) as f32;
        let dyd = dy.data();
        let xh = cache.xhat.data();
        let gd = self.gamma.value.data().to_vec();
        let mut dx = Tensor::zeros(dy.shape());

        for ci in 0..c {
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    sum_dy += dyd[i];
                    sum_dy_xhat += dyd[i] * xh[i];
                }
            }
            self.beta.grad.data_mut()[ci] += sum_dy;
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            let scale = gd[ci] * cache.ivar[ci] / m;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    dx.data_mut()[i] = scale * (m * dyd[i] - sum_dy - xh[i] * sum_dy_xhat);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let (xhat, ivar) = match self.cache.take() {
            Some(c) => (Some(c.xhat), Some(c.ivar)),
            None => (None, None),
        };
        stash.push(CacheEntry::Tensor(xhat));
        stash.push(CacheEntry::Stats(ivar));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let xhat = match stash.pop() {
            CacheEntry::Tensor(t) => t,
            other => stash_mismatch("bn xhat", &other),
        };
        let ivar = match stash.pop() {
            CacheEntry::Stats(s) => s,
            other => stash_mismatch("bn ivar", &other),
        };
        self.cache = match (xhat, ivar) {
            (Some(xhat), Some(ivar)) => Some(BnCache { xhat, ivar }),
            _ => None,
        };
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        // Scale/shift parameters, then the running statistics — the
        // inference-time state `visit_params` cannot see.
        dict.push_tensor(&self.gamma.value);
        dict.push_tensor(&self.beta.value);
        dict.push_slice(&self.running_mean);
        dict.push_slice(&self.running_var);
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        dict.pop_into_tensor(&mut self.gamma.value)?;
        dict.pop_into_tensor(&mut self.beta.value)?;
        dict.pop_into_slice(&mut self.running_mean)?;
        dict.pop_into_slice(&mut self.running_var)
    }
}

/// Group normalization over `[n, c, h, w]` with `groups` channel groups.
#[derive(Debug, Clone)]
pub struct GroupNorm {
    groups: usize,
    gamma: Param,
    beta: Param,
    cache: Option<GnCache>,
}

#[derive(Debug, Clone)]
struct GnCache {
    xhat: Tensor,
    ivar: Vec<f32>, // per (sample, group)
}

impl GroupNorm {
    /// GN with the given group count.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide `channels`.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "groups must divide channels"
        );
        Self {
            groups,
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            cache: None,
        }
    }
}

impl Module for GroupNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("gn expects 4-D");
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let xd = x.data();
        let mut y = Tensor::uninit(x.shape());
        let mut xhat = Tensor::uninit(x.shape());
        let mut ivar = vec![0.0f32; n * self.groups];
        let gd = self.gamma.value.data();
        let bd = self.beta.value.data();

        let yd = y.data_mut();
        let xhd = xhat.data_mut();
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    for &v in &xd[base..base + h * w] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                let iv = 1.0 / (var + EPS).sqrt();
                ivar[ni * self.groups + gi] = iv;
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let (gcc, bcc) = (gd[cc], bd[cc]);
                    let xs = &xd[base..base + h * w];
                    let xh = &mut xhd[base..base + h * w];
                    let ys = &mut yd[base..base + h * w];
                    for ((&v, xh_i), y_i) in xs.iter().zip(xh.iter_mut()).zip(ys.iter_mut()) {
                        let t = (v - mean) * iv;
                        *xh_i = t;
                        *y_i = gcc * t + bcc;
                    }
                }
            }
        }
        if train {
            self.cache = Some(GnCache { xhat, ivar });
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        let [n, c, h, w]: [usize; 4] = dy.shape().try_into().expect("gn expects 4-D");
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let dyd = dy.data();
        let xh = cache.xhat.data();
        let gd = self.gamma.value.data();
        // Every element of dx is written below (all groups × all channels
        // cover the tensor), so the buffer starts uninitialized.
        let mut dx = Tensor::uninit(dy.shape());

        // Per-channel parameter gradients.
        for cc in 0..c {
            let mut s_dy = 0.0;
            let mut s_dyx = 0.0;
            for ni in 0..n {
                let base = (ni * c + cc) * h * w;
                for (&d, &xv) in dyd[base..base + h * w].iter().zip(&xh[base..base + h * w]) {
                    s_dy += d;
                    s_dyx += d * xv;
                }
            }
            self.beta.grad.data_mut()[cc] += s_dy;
            self.gamma.grad.data_mut()[cc] += s_dyx;
        }

        // Per-(sample, group) input gradients.
        let dxd = dx.data_mut();
        for ni in 0..n {
            for gi in 0..self.groups {
                let mut sum_g = 0.0; // Σ γ·dy
                let mut sum_gx = 0.0; // Σ γ·dy·xhat
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let gcc = gd[cc];
                    for (&d, &xv) in dyd[base..base + h * w].iter().zip(&xh[base..base + h * w]) {
                        let g = gcc * d;
                        sum_g += g;
                        sum_gx += g * xv;
                    }
                }
                let iv = cache.ivar[ni * self.groups + gi];
                for cc in gi * cpg..(gi + 1) * cpg {
                    let base = (ni * c + cc) * h * w;
                    let gcc = gd[cc];
                    let dys = &dyd[base..base + h * w];
                    let xs = &xh[base..base + h * w];
                    let dst = &mut dxd[base..base + h * w];
                    for ((&d, &xv), out) in dys.iter().zip(xs).zip(dst.iter_mut()) {
                        let g = gcc * d;
                        *out = iv / m * (m * g - sum_g - xv * sum_gx);
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let (xhat, ivar) = match self.cache.take() {
            Some(c) => (Some(c.xhat), Some(c.ivar)),
            None => (None, None),
        };
        stash.push(CacheEntry::Tensor(xhat));
        stash.push(CacheEntry::Stats(ivar));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let xhat = match stash.pop() {
            CacheEntry::Tensor(t) => t,
            other => stash_mismatch("gn xhat", &other),
        };
        let ivar = match stash.pop() {
            CacheEntry::Stats(s) => s,
            other => stash_mismatch("gn ivar", &other),
        };
        self.cache = match (xhat, ivar) {
            (Some(xhat), Some(ivar)) => Some(GnCache { xhat, ivar }),
            _ => None,
        };
    }
}

/// Local response normalization (Krizhevsky et al. 2012): each activation
/// is scaled by a power of the sum of squares of its cross-channel
/// neighborhood,
///
/// ```text
/// y[c] = x[c] · (k + α/n · Σ_{c' ∈ W(c)} x[c']²)^(-β)
/// ```
///
/// with `W(c)` the `n`-wide channel window centered on `c` (clamped at the
/// edges). Per-sample and parameterless, so — like GN — it is exactly
/// invariant under MBS sub-batch serialization. Defaults are AlexNet's
/// (`n = 5`, `α = 1e-4`, `β = 0.75`, `k = 2`); the IR's
/// `NormKind::Local` lowers to exactly this configuration.
///
/// # Examples
///
/// ```
/// use mbs_train::norm::LocalResponseNorm;
/// use mbs_train::module::Module;
/// use mbs_tensor::Tensor;
///
/// let mut lrn = LocalResponseNorm::alexnet();
/// let x = Tensor::full(&[2, 8, 4, 4], 1.0);
/// let y = lrn.forward(&x, false);
/// // Every output shrinks toward zero but keeps the input's sign.
/// assert!(y.data().iter().all(|&v| v > 0.0 && v < 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct LocalResponseNorm {
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    /// (input, per-element scale denominator `k + α/n·Σx²`).
    cache: Option<(Tensor, Tensor)>,
}

impl LocalResponseNorm {
    /// LRN with an explicit window size and constants.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        assert!(size > 0, "window size must be positive");
        Self {
            size,
            alpha,
            beta,
            k,
            cache: None,
        }
    }

    /// The AlexNet configuration: `n = 5`, `α = 1e-4`, `β = 0.75`, `k = 2`.
    pub fn alexnet() -> Self {
        Self::new(5, 1e-4, 0.75, 2.0)
    }

    /// The per-element scale denominator `s = k + α/n · Σ_{W(c)} x²`.
    fn scales(&self, x: &Tensor) -> Tensor {
        let [n, c, h, w]: [usize; 4] = x.shape().try_into().expect("lrn expects 4-D");
        let hw = h * w;
        let half = self.size / 2;
        let coef = self.alpha / self.size as f32;
        let xd = x.data();
        let mut s = Tensor::uninit(x.shape());
        let sd = s.data_mut();
        for ni in 0..n {
            for ci in 0..c {
                let lo = ci.saturating_sub(half);
                let hi = (ci + half + 1).min(c);
                let base = (ni * c + ci) * hw;
                for p in 0..hw {
                    let mut sq = 0.0f32;
                    for cj in lo..hi {
                        let v = xd[(ni * c + cj) * hw + p];
                        sq += v * v;
                    }
                    sd[base + p] = self.k + coef * sq;
                }
            }
        }
        s
    }
}

impl Module for LocalResponseNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let s = self.scales(x);
        let mut y = Tensor::uninit(x.shape());
        let yd = y.data_mut();
        for ((&xv, &sv), out) in x.data().iter().zip(s.data()).zip(yd.iter_mut()) {
            *out = xv * sv.powf(-self.beta);
        }
        if train {
            self.cache = Some((x.clone(), s));
        }
        y
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let s = self.scales(&x);
        let mut y = Tensor::uninit(x.shape());
        let yd = y.data_mut();
        for ((&xv, &sv), out) in x.data().iter().zip(s.data()).zip(yd.iter_mut()) {
            *out = xv * sv.powf(-self.beta);
        }
        if train {
            // Move the input into the cache instead of cloning it.
            self.cache = Some((x, s));
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (x, s) = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        let [n, c, h, w]: [usize; 4] = dy.shape().try_into().expect("lrn expects 4-D");
        let hw = h * w;
        let half = self.size / 2;
        let coef = 2.0 * self.alpha * self.beta / self.size as f32;
        let xd = x.data();
        let sd = s.data();
        let dyd = dy.data();
        // u[c] = dy[c]·x[c]·s[c]^(-β-1); the cross-channel term of dx[j]
        // is a windowed sum of u (the window relation is symmetric).
        let mut u = Tensor::uninit(dy.shape());
        let ud = u.data_mut();
        for i in 0..dy.len() {
            ud[i] = dyd[i] * xd[i] * sd[i].powf(-self.beta - 1.0);
        }
        let mut dx = Tensor::uninit(dy.shape());
        let dxd = dx.data_mut();
        for ni in 0..n {
            for cj in 0..c {
                let lo = cj.saturating_sub(half);
                let hi = (cj + half + 1).min(c);
                let base = (ni * c + cj) * hw;
                for p in 0..hw {
                    let mut cross = 0.0f32;
                    for ci in lo..hi {
                        cross += ud[(ni * c + ci) * hw + p];
                    }
                    let i = base + p;
                    dxd[i] = dyd[i] * sd[i].powf(-self.beta) - coef * xd[i] * cross;
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        let (x, s) = match self.cache.take() {
            Some((x, s)) => (Some(x), Some(s)),
            None => (None, None),
        };
        stash.push(CacheEntry::Tensor(x));
        stash.push(CacheEntry::Tensor(s));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        let x = match stash.pop() {
            CacheEntry::Tensor(t) => t,
            other => stash_mismatch("lrn input", &other),
        };
        let s = match stash.pop() {
            CacheEntry::Tensor(t) => t,
            other => stash_mismatch("lrn scale", &other),
        };
        self.cache = match (x, s) {
            (Some(x), Some(s)) => Some((x, s)),
            _ => None,
        };
    }
}

/// The normalization choice for a model (paper Fig. 6 compares all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormChoice {
    /// Batch normalization (incompatible with MBS).
    Batch,
    /// Group normalization with the given group count (MBS-compatible).
    Group(usize),
    /// No normalization (Fig. 6a's divergent pre-activations).
    None,
}

/// A pluggable normalization module.
#[derive(Debug, Clone)]
pub enum Norm {
    /// Batch normalization.
    Batch(BatchNorm2d),
    /// Group normalization.
    Group(GroupNorm),
    /// Local response normalization (the IR's `NormKind::Local`).
    Local(LocalResponseNorm),
    /// Identity.
    None,
}

impl Norm {
    /// Builds the chosen normalization for `channels`.
    pub fn new(choice: NormChoice, channels: usize) -> Self {
        match choice {
            NormChoice::Batch => Norm::Batch(BatchNorm2d::new(channels)),
            NormChoice::Group(g) => Norm::Group(GroupNorm::new(channels, g)),
            NormChoice::None => Norm::None,
        }
    }
}

impl Module for Norm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        match self {
            Norm::Batch(b) => b.forward(x, train),
            Norm::Group(g) => g.forward(x, train),
            Norm::Local(l) => l.forward(x, train),
            Norm::None => x.clone(),
        }
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        match self {
            Norm::Batch(b) => b.forward(&x, train),
            Norm::Group(g) => g.forward(&x, train),
            Norm::Local(l) => l.forward_owned(x, train),
            // The identity norm passes the owned activation straight
            // through — no clone, no allocation.
            Norm::None => x,
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self {
            Norm::Batch(b) => b.backward(dy),
            Norm::Group(g) => g.backward(dy),
            Norm::Local(l) => l.backward(dy),
            Norm::None => dy.clone(),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Norm::Batch(b) => b.visit_params(f),
            Norm::Group(g) => g.visit_params(f),
            Norm::Local(l) => l.visit_params(f),
            Norm::None => {}
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        match self {
            Norm::Batch(b) => b.stash_caches(stash),
            Norm::Group(g) => g.stash_caches(stash),
            Norm::Local(l) => l.stash_caches(stash),
            Norm::None => {}
        }
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match self {
            Norm::Batch(b) => b.unstash_caches(stash),
            Norm::Group(g) => g.unstash_caches(stash),
            Norm::Local(l) => l.unstash_caches(stash),
            Norm::None => {}
        }
    }

    fn export_state(&mut self, dict: &mut StateDict) {
        // Dispatch so `BatchNorm2d`'s running-statistics override is
        // reached (the trait default would walk `visit_params` and skip
        // them).
        match self {
            Norm::Batch(b) => b.export_state(dict),
            Norm::Group(g) => g.export_state(dict),
            Norm::Local(l) => l.export_state(dict),
            Norm::None => {}
        }
    }

    fn import_state(&mut self, dict: &mut StateDict) -> Result<(), StateError> {
        match self {
            Norm::Batch(b) => b.import_state(dict),
            Norm::Group(g) => g.import_state(dict),
            Norm::Local(l) => l.import_state(dict),
            Norm::None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::slice_batch;

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 29 + salt * 13) % 31) as f32 - 15.0) / 6.0)
                .collect(),
        )
    }

    #[test]
    fn bn_normalizes_channel_statistics() {
        let mut bn = BatchNorm2d::new(3);
        let x = seeded(&[4, 3, 5, 5], 1);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1.
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for h in 0..5 {
                    for w in 0..5 {
                        vals.push(y.get(&[n, c, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gn_normalizes_per_sample_groups() {
        let mut gn = GroupNorm::new(4, 2);
        let x = seeded(&[2, 4, 3, 3], 2);
        let y = gn.forward(&x, true);
        for n in 0..2 {
            for g in 0..2 {
                let mut vals = Vec::new();
                for c in g * 2..(g + 1) * 2 {
                    for h in 0..3 {
                        for w in 0..3 {
                            vals.push(y.get(&[n, c, h, w]));
                        }
                    }
                }
                let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
                assert!(mean.abs() < 1e-4, "sample {n} group {g} mean {mean}");
            }
        }
    }

    /// The property MBS relies on (§3.1): GN of a sub-batch equals the
    /// corresponding rows of GN of the full batch; BN does not.
    #[test]
    fn gn_is_subbatch_invariant_bn_is_not() {
        let x = seeded(&[4, 4, 3, 3], 3);
        let first_two = slice_batch(&x, 0, 2);

        let mut gn = GroupNorm::new(4, 2);
        let full = gn.forward(&x, false);
        let mut gn2 = GroupNorm::new(4, 2);
        let part = gn2.forward(&first_two, false);
        assert!(slice_batch(&full, 0, 2).max_abs_diff(&part) < 1e-6);

        let mut bn = BatchNorm2d::new(4);
        let full = bn.forward(&x, true);
        let mut bn2 = BatchNorm2d::new(4);
        let part = bn2.forward(&first_two, true);
        assert!(slice_batch(&full, 0, 2).max_abs_diff(&part) > 1e-3);
    }

    fn grad_check_norm(norm: &mut dyn Module, shape: &[usize]) {
        let x = seeded(shape, 4);
        let y = norm.forward(&x, true);
        let dy = seeded(y.shape(), 5);
        let dx = norm.backward(&dy);
        let eps = 1e-2;
        for idx in [0usize, x.len() / 3, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f32 = norm
                .forward(&xp, true)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f32 = norm
                .forward(&xm, true)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < 2e-2,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
        // Restore the cache for callers (forward mutated it).
        let _ = norm.forward(&x, true);
    }

    #[test]
    fn bn_gradient_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        grad_check_norm(&mut bn, &[3, 2, 4, 4]);
    }

    #[test]
    fn gn_gradient_matches_finite_difference() {
        let mut gn = GroupNorm::new(4, 2);
        grad_check_norm(&mut gn, &[2, 4, 4, 4]);
    }

    #[test]
    fn bn_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        let x = seeded(&[4, 2, 3, 3], 6);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let train_out = bn.forward(&x, true);
        let eval_out = bn.forward(&x, false);
        // After many updates the running stats converge to batch stats.
        assert!(train_out.max_abs_diff(&eval_out) < 0.05);
    }

    #[test]
    #[should_panic(expected = "groups must divide")]
    fn gn_rejects_bad_groups() {
        let _ = GroupNorm::new(6, 4);
    }

    #[test]
    fn lrn_gradient_matches_finite_difference() {
        // Exaggerated constants so the cross-channel term is visible above
        // the finite-difference tolerance.
        let mut lrn = LocalResponseNorm::new(3, 0.5, 0.75, 2.0);
        grad_check_norm(&mut lrn, &[2, 5, 3, 3]);
    }

    #[test]
    fn lrn_is_subbatch_invariant() {
        // Like GN: per-sample arithmetic, so sub-batch rows match exactly.
        let x = seeded(&[4, 6, 3, 3], 7);
        let first_two = slice_batch(&x, 0, 2);
        let mut a = LocalResponseNorm::alexnet();
        let full = a.forward(&x, false);
        let mut b = LocalResponseNorm::alexnet();
        let part = b.forward(&first_two, false);
        assert_eq!(slice_batch(&full, 0, 2), part);
    }

    #[test]
    fn lrn_stash_round_trip_preserves_backward() {
        use crate::module::CacheStash;
        let x = seeded(&[2, 5, 3, 3], 8);
        let dy = seeded(&[2, 5, 3, 3], 9);
        let mut a = LocalResponseNorm::alexnet();
        let mut b = LocalResponseNorm::alexnet();
        let _ = a.forward(&x, true);
        let _ = b.forward(&x, true);
        let mut stash = CacheStash::default();
        b.stash_caches(&mut stash);
        // A second forward overwrites b's live caches...
        let _ = b.forward(&seeded(&[2, 5, 3, 3], 10), true);
        b.unstash_caches(&mut stash);
        // ...but the restored stash reproduces a's backward bitwise.
        assert_eq!(a.backward(&dy), b.backward(&dy));
    }
}
