//! Basic trainable layers: convolution, linear, ReLU, pooling.

use rand::rngs::StdRng;

use mbs_tensor::init::kaiming_normal;
use mbs_tensor::ops::{
    conv2d, conv2d_backward_data, conv2d_backward_weights, global_avg_pool,
    global_avg_pool_backward, matmul, matmul_a_bt, matmul_at_b, maxpool2d, maxpool2d_backward,
    relu, relu_backward, BitMask, Conv2dCfg,
};
use mbs_tensor::Tensor;

use crate::module::{Module, Param};

/// 2-D convolution without bias (the zoo pairs convs with norms).
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    cfg: Conv2dCfg,
    cache_x: Option<Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        Self {
            weight,
            cfg: Conv2dCfg::square(kernel, stride, pad),
            cache_x: None,
        }
    }

    /// The convolution geometry.
    pub fn cfg(&self) -> Conv2dCfg {
        self.cfg
    }

    /// Immutable access to the weights (tests, inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_x = Some(x.clone());
        }
        conv2d(x, &self.weight.value, self.cfg)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward requires a training forward");
        let dw = conv2d_backward_weights(x, dy, self.cfg);
        self.weight.grad.add_assign(&dw);
        conv2d_backward_data(dy, &self.weight.value, x.shape(), self.cfg)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }
}

/// Fully-connected layer with bias.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Kaiming-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: Param::new(kaiming_normal(
                &[out_features, in_features],
                in_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cache_x: None,
        }
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_x = Some(x.clone());
        }
        let mut y = matmul_a_bt(x, &self.weight.value); // [n, out]
        let (n, o) = (y.shape()[0], y.shape()[1]);
        let bd = self.bias.value.data().to_vec();
        let yd = y.data_mut();
        for i in 0..n {
            for j in 0..o {
                yd[i * o + j] += bd[j];
            }
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward requires a training forward");
        let dw = matmul_at_b(dy, x); // [out, in]
        self.weight.grad.add_assign(&dw);
        let (n, o) = (dy.shape()[0], dy.shape()[1]);
        let dyd = dy.data();
        let gb = self.bias.grad.data_mut();
        for i in 0..n {
            for j in 0..o {
                gb[j] += dyd[i * o + j];
            }
        }
        matmul(dy, &self.weight.value) // [n, in]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// ReLU with the paper's 1-bit backward mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<BitMask>,
}

impl Relu {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, mask) = relu(x);
        if train {
            self.mask = Some(mask);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward requires a training forward");
        relu_backward(dy, mask)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Max pooling.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// A `kernel × kernel` max pool with the given stride.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self {
            kernel,
            stride,
            cache: None,
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, arg) = maxpool2d(x, self.kernel, self.stride);
        if train {
            self.cache = Some((arg, x.shape().to_vec()));
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        maxpool2d_backward(dy, arg, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling to `[n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cache_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// A fresh pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        global_avg_pool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("backward requires a training forward");
        global_avg_pool_backward(dy, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 13 + salt * 7) % 19) as f32 - 9.0) / 5.0)
                .collect(),
        )
    }

    /// Generic finite-difference gradient check through a module.
    fn grad_check(m: &mut dyn Module, x: &Tensor, tol: f32) {
        let y = m.forward(x, true);
        let dy = seeded(y.shape(), 99);
        let dx = m.backward(&dy);
        let eps = 1e-2;
        let loss = |m: &mut dyn Module, x: &Tensor| -> f32 {
            m.forward(x, false)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp = loss(m, &xp);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm = loss(m, &xm);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < tol,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_module_gradient() {
        let mut m = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        grad_check(&mut m, &seeded(&[2, 2, 5, 5], 1), 1e-2);
    }

    #[test]
    fn linear_module_gradient() {
        let mut m = Linear::new(6, 4, &mut rng());
        grad_check(&mut m, &seeded(&[3, 6], 2), 1e-2);
    }

    #[test]
    fn gap_module_gradient() {
        let mut m = GlobalAvgPool::new();
        grad_check(&mut m, &seeded(&[2, 3, 4, 4], 3), 1e-3);
    }

    #[test]
    fn relu_module_masks_gradient() {
        let mut m = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let _ = m.forward(&x, true);
        let dx = m.backward(&Tensor::full(&[4], 1.0));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_accumulates_gradients_across_backwards() {
        let mut m = Conv2d::new(1, 1, 3, 1, 1, &mut rng());
        let x = seeded(&[1, 1, 4, 4], 5);
        let y = m.forward(&x, true);
        let dy = Tensor::full(y.shape(), 1.0);
        let _ = m.backward(&dy);
        let g1 = m.weight().grad.clone();
        let _ = m.forward(&x, true);
        let _ = m.backward(&dy);
        let mut twice = g1.clone();
        twice.add_assign(&g1);
        assert!(m.weight().grad.max_abs_diff(&twice) < 1e-5);
    }

    #[test]
    fn zero_grad_clears_all_params() {
        let mut m = Linear::new(3, 2, &mut rng());
        let x = seeded(&[2, 3], 6);
        let y = m.forward(&x, true);
        let _ = m.backward(&Tensor::full(y.shape(), 1.0));
        m.zero_grad();
        m.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }
}
