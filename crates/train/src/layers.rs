//! Basic trainable layers: convolution (with optional fused bias +
//! activation), linear (fused bias, optional fused activation), ReLU,
//! pooling.

use rand::rngs::StdRng;

use mbs_tensor::init::kaiming_normal;
use mbs_tensor::ops::{
    avgpool2d, avgpool2d_backward, conv2d_backward_data, conv2d_backward_weights,
    conv2d_fused_with, fuse_enabled, global_avg_pool, global_avg_pool_backward, matmul,
    matmul_a_bt_fused_with, matmul_at_b, maxpool2d_backward, maxpool2d_padded, relu_backward,
    relu_clamp, relu_inplace, BitMask, Conv2dCfg,
};
use mbs_tensor::Tensor;

use crate::module::{stash_mismatch, CacheEntry, CacheStash, Module, Param};

/// 2-D convolution, optionally with a per-channel bias and a fused ReLU.
///
/// The model zoo's default ([`Conv2d::new`]) is bias-free and
/// activation-free because convs there pair with normalization layers. A
/// conv built with [`Conv2d::with_bias_relu`] runs conv + bias + ReLU as
/// one op: the bias rides the GEMM epilogue and the clamp (plus its 1-bit
/// backward mask) rides the flat→NCHW transpose, so neither costs a pass
/// over the output. The `MBS_FUSE=0` knob (or [`Conv2d::set_fused`])
/// switches to the separate-pass path, which is bitwise identical.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    cfg: Conv2dCfg,
    fuse_relu: bool,
    fused: bool,
    cache_x: Option<Tensor>,
    mask: Option<BitMask>,
}

impl Conv2d {
    /// Kaiming-initialized convolution, bias-free, no activation.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self::with_bias_relu(
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            false,
            false,
            rng,
        )
    }

    /// Kaiming-initialized convolution with an optional zero-initialized
    /// bias and an optional fused ReLU.
    #[allow(clippy::too_many_arguments)]
    pub fn with_bias_relu(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        relu: bool,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Param::new(kaiming_normal(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        Self {
            weight,
            bias: bias.then(|| Param::new(Tensor::zeros(&[out_channels]))),
            cfg: Conv2dCfg::square(kernel, stride, pad),
            fuse_relu: relu,
            fused: fuse_enabled(),
            cache_x: None,
            mask: None,
        }
    }

    /// Kaiming-initialized convolution over an arbitrary (possibly
    /// rectangular-kernel, asymmetrically padded) geometry, bias-free and
    /// activation-free. The IR lowering path uses this: `mbs_cnn` conv
    /// layers carry a full [`Conv2dCfg`]-shaped geometry rather than the
    /// square kernels [`Conv2d::new`] assumes.
    pub fn from_cfg(
        in_channels: usize,
        out_channels: usize,
        cfg: Conv2dCfg,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_channels * cfg.kernel_h * cfg.kernel_w;
        let weight = Param::new(kaiming_normal(
            &[out_channels, in_channels, cfg.kernel_h, cfg.kernel_w],
            fan_in,
            rng,
        ));
        Self {
            weight,
            bias: None,
            cfg,
            fuse_relu: false,
            fused: fuse_enabled(),
            cache_x: None,
            mask: None,
        }
    }

    /// The convolution geometry.
    pub fn cfg(&self) -> Conv2dCfg {
        self.cfg
    }

    /// Immutable access to the weights (tests, inspection).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Overrides the process-wide `MBS_FUSE` decision for this layer (the
    /// bench sweeps fused vs unfused in one process; results are bitwise
    /// identical either way).
    pub fn set_fused(&mut self, fused: bool) {
        self.fused = fused;
    }

    /// Folds a per-output-channel affine transform into the layer so that
    /// the folded forward computes `scale[o]·conv(x)[o] + shift[o]` in one
    /// pass — the norm-folding primitive inference lowering uses to erase
    /// an eval-mode BatchNorm that follows this convolution. Scales each
    /// output channel's weights and rewrites (installing if absent) the
    /// bias as `b'[o] = scale[o]·b[o] + shift[o]`.
    ///
    /// A folded layer's parameter list may grow by the installed bias, so
    /// fold only *after* any `import_state` and never export the result —
    /// the state layout no longer matches the training-time module.
    ///
    /// # Panics
    ///
    /// Panics if `scale`/`shift` lengths differ from the output-channel
    /// count.
    pub fn fold_affine(&mut self, scale: &[f32], shift: &[f32]) {
        let out_channels = self.weight.value.shape()[0];
        assert_eq!(scale.len(), out_channels, "scale length");
        assert_eq!(shift.len(), out_channels, "shift length");
        let per_channel = self.weight.value.len() / out_channels;
        let wd = self.weight.value.data_mut();
        for (o, &s) in scale.iter().enumerate() {
            for w in &mut wd[o * per_channel..(o + 1) * per_channel] {
                *w *= s;
            }
        }
        match &mut self.bias {
            Some(bias) => {
                let bd = bias.value.data_mut();
                for o in 0..out_channels {
                    bd[o] = bd[o] * scale[o] + shift[o];
                }
            }
            None => {
                self.bias = Some(Param::new(Tensor::from_vec(
                    &[out_channels],
                    shift.to_vec(),
                )));
            }
        }
    }

    /// Forward body shared by the borrowed and owned entry points. Only a
    /// training forward records the backward sign mask; inference applies
    /// a mask-free clamp instead of building bits nobody will read.
    fn run_forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (mut y, mask) = conv2d_fused_with(
            x,
            &self.weight.value,
            self.bias.as_ref().map(|b| b.value.data()),
            self.fuse_relu && train,
            self.cfg,
            self.fused,
        );
        if train {
            self.mask = mask;
        } else if self.fuse_relu {
            relu_clamp(&mut y);
        }
        y
    }
}

impl Module for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.run_forward(x, train);
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let y = self.run_forward(&x, train);
        if train {
            // Move the input into the cache — the clone `forward` pays is
            // the only difference between the two entry points.
            self.cache_x = Some(x);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward requires a training forward");
        // Undo the fused activation first: dL/d(pre-activation) is dy
        // masked by the stored sign bits.
        let masked;
        let dy = if self.fuse_relu {
            let mask = self.mask.as_ref().expect("fused ReLU stores a mask");
            masked = relu_backward(dy, mask);
            &masked
        } else {
            dy
        };
        if let Some(bias) = &mut self.bias {
            // dL/db[c] = Σ_{n,h,w} dy[n,c,h,w].
            let [_, co, ho, wo]: [usize; 4] = dy.shape().try_into().expect("conv dy must be 4-D");
            let hw = ho * wo;
            let gb = bias.grad.data_mut();
            for (chunk_idx, chunk) in dy.data().chunks_exact(hw).enumerate() {
                gb[chunk_idx % co] += chunk.iter().sum::<f32>();
            }
        }
        let dw = conv2d_backward_weights(x, dy, self.cfg);
        self.weight.grad.add_assign(&dw);
        conv2d_backward_data(dy, &self.weight.value, x.shape(), self.cfg)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(bias) = &mut self.bias {
            f(bias);
        }
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Tensor(self.cache_x.take()));
        stash.push(CacheEntry::Mask(self.mask.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Tensor(t) => self.cache_x = t,
            other => stash_mismatch("conv input", &other),
        }
        match stash.pop() {
            CacheEntry::Mask(m) => self.mask = m,
            other => stash_mismatch("conv mask", &other),
        }
    }
}

/// Fully-connected layer with bias and an optional fused ReLU.
///
/// The bias is always folded into the GEMM's C write-back
/// ([`mbs_tensor::ops::Epilogue`]) — the seed's separate `y += b` pass over
/// the output is gone. [`Linear::with_relu`] additionally fuses the
/// activation (and its 1-bit backward mask) into the same store. The
/// `MBS_FUSE=0` knob (or [`Linear::set_fused`]) selects the bitwise
/// identical separate-pass path.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    fuse_relu: bool,
    fused: bool,
    cache_x: Option<Tensor>,
    mask: Option<BitMask>,
}

impl Linear {
    /// Kaiming-initialized linear layer (no activation).
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let mut layer = Self::with_relu(in_features, out_features, rng);
        layer.fuse_relu = false;
        layer
    }

    /// Kaiming-initialized linear layer with a fused ReLU activation.
    pub fn with_relu(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Self {
            weight: Param::new(kaiming_normal(
                &[out_features, in_features],
                in_features,
                rng,
            )),
            bias: Param::new(Tensor::zeros(&[out_features])),
            fuse_relu: true,
            fused: fuse_enabled(),
            cache_x: None,
            mask: None,
        }
    }

    /// Overrides the process-wide `MBS_FUSE` decision for this layer.
    pub fn set_fused(&mut self, fused: bool) {
        self.fused = fused;
    }

    /// Forward body shared by the borrowed and owned entry points. As for
    /// [`Conv2d`], inference skips the mask machinery and clamps instead.
    fn run_forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (mut y, mask) = matmul_a_bt_fused_with(
            x,
            &self.weight.value,
            self.bias.value.data(),
            self.fuse_relu && train,
            self.fused,
        );
        if train {
            self.mask = mask;
        } else if self.fuse_relu {
            relu_clamp(&mut y);
        }
        y
    }
}

impl Module for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.run_forward(x, train);
        if train {
            self.cache_x = Some(x.clone());
        }
        y
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let y = self.run_forward(&x, train);
        if train {
            self.cache_x = Some(x);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self
            .cache_x
            .as_ref()
            .expect("backward requires a training forward");
        let masked;
        let dy = if self.fuse_relu {
            let mask = self.mask.as_ref().expect("fused ReLU stores a mask");
            masked = relu_backward(dy, mask);
            &masked
        } else {
            dy
        };
        let dw = matmul_at_b(dy, x); // [out, in]
        self.weight.grad.add_assign(&dw);
        let (n, o) = (dy.shape()[0], dy.shape()[1]);
        let dyd = dy.data();
        let gb = self.bias.grad.data_mut();
        for i in 0..n {
            for j in 0..o {
                gb[j] += dyd[i * o + j];
            }
        }
        matmul(dy, &self.weight.value) // [n, in]
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Tensor(self.cache_x.take()));
        stash.push(CacheEntry::Mask(self.mask.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Tensor(t) => self.cache_x = t,
            other => stash_mismatch("linear input", &other),
        }
        match stash.pop() {
            CacheEntry::Mask(m) => self.mask = m,
            other => stash_mismatch("linear mask", &other),
        }
    }
}

/// ReLU with the paper's 1-bit backward mask.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<BitMask>,
}

impl Relu {
    /// A fresh ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, mut x: Tensor, train: bool) -> Tensor {
        // Owned input → clamp in place; no output tensor is allocated.
        let mask = relu_inplace(&mut x);
        if train {
            self.mask = Some(mask);
        }
        x
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let mask = self
            .mask
            .as_ref()
            .expect("backward requires a training forward");
        relu_backward(dy, mask)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Mask(self.mask.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Mask(m) => self.mask = m,
            other => stash_mismatch("relu mask", &other),
        }
    }
}

/// Max pooling, optionally with symmetric zero padding (windows are
/// clipped to the valid region, so padding never wins an argmax).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax, input shape)
}

impl MaxPool2d {
    /// A `kernel × kernel` max pool with the given stride, unpadded.
    pub fn new(kernel: usize, stride: usize) -> Self {
        Self::with_pad(kernel, stride, 0)
    }

    /// A `kernel × kernel` max pool with `pad` zero rows/columns on each
    /// edge (the ResNet-stem `3×3/2 pad 1` geometry).
    ///
    /// # Examples
    ///
    /// ```
    /// use mbs_train::layers::MaxPool2d;
    /// use mbs_train::module::Module;
    /// use mbs_tensor::Tensor;
    ///
    /// let mut pool = MaxPool2d::with_pad(3, 2, 1);
    /// let x = Tensor::from_vec(&[1, 1, 7, 7], (0..49).map(|v| v as f32).collect());
    /// let y = pool.forward(&x, false);
    /// assert_eq!(y.shape(), &[1, 1, 4, 4]); // 7 -> 4, the ResNet pool1 rule
    /// ```
    pub fn with_pad(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kernel,
            stride,
            pad,
            cache: None,
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (y, arg) = maxpool2d_padded(x, self.kernel, self.stride, self.pad);
        if train {
            self.cache = Some((arg, x.shape().to_vec()));
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (arg, shape) = self
            .cache
            .as_ref()
            .expect("backward requires a training forward");
        maxpool2d_backward(dy, arg, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Pool(self.cache.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Pool(p) => self.cache = p,
            other => stash_mismatch("max-pool argmax", &other),
        }
    }
}

/// Average pooling over square windows with symmetric zero padding. The
/// divisor is the full window area (padding included), matching the
/// Inception-style `Pool { kind: Avg }` IR layers this lowers from;
/// backward needs only the input shape, not the activations.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    cache_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// A `kernel × kernel` average pool with the given stride and padding.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbs_train::layers::AvgPool2d;
    /// use mbs_train::module::Module;
    /// use mbs_tensor::Tensor;
    ///
    /// // The Inception pooled-projection geometry: 3x3/1 pad 1 preserves
    /// // the spatial extent.
    /// let mut pool = AvgPool2d::new(3, 1, 1);
    /// let x = Tensor::full(&[1, 2, 5, 5], 1.0);
    /// let y = pool.forward(&x, false);
    /// assert_eq!(y.shape(), x.shape());
    /// assert_eq!(y.get(&[0, 0, 2, 2]), 1.0); // interior window: 9/9
    /// ```
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kernel,
            stride,
            pad,
            cache_shape: None,
        }
    }
}

impl Module for AvgPool2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        avgpool2d(x, self.kernel, self.stride, self.pad)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("backward requires a training forward");
        avgpool2d_backward(dy, shape, self.kernel, self.stride, self.pad)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Shape(self.cache_shape.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Shape(s) => self.cache_shape = s,
            other => stash_mismatch("avg-pool shape", &other),
        }
    }
}

/// Global average pooling to `[n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cache_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// A fresh pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Module for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cache_shape = Some(x.shape().to_vec());
        }
        global_avg_pool(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let shape = self
            .cache_shape
            .as_ref()
            .expect("backward requires a training forward");
        global_avg_pool_backward(dy, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn stash_caches(&mut self, stash: &mut CacheStash) {
        stash.push(CacheEntry::Shape(self.cache_shape.take()));
    }

    fn unstash_caches(&mut self, stash: &mut CacheStash) {
        match stash.pop() {
            CacheEntry::Shape(s) => self.cache_shape = s,
            other => stash_mismatch("gap shape", &other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn seeded(shape: &[usize], salt: usize) -> Tensor {
        let len: usize = shape.iter().product();
        Tensor::from_vec(
            shape,
            (0..len)
                .map(|v| (((v * 13 + salt * 7) % 19) as f32 - 9.0) / 5.0)
                .collect(),
        )
    }

    /// Generic finite-difference gradient check through a module.
    ///
    /// Only meaningful at f32: under `MBS_PREC=bf16` the packed-operand
    /// quantization makes the forward a step function at the ±1e-2 probe
    /// scale, so the finite difference is noise, not a gradient. The
    /// analytic gradient code being checked is precision-independent, and
    /// bf16 numerics are pinned by the precision equivalence tests.
    fn grad_check(m: &mut dyn Module, x: &Tensor, tol: f32) {
        if mbs_tensor::prec::precision() != mbs_tensor::prec::Precision::F32 {
            return;
        }
        let y = m.forward(x, true);
        let dy = seeded(y.shape(), 99);
        let dx = m.backward(&dy);
        let eps = 1e-2;
        let loss = |m: &mut dyn Module, x: &Tensor| -> f32 {
            m.forward(x, false)
                .data()
                .iter()
                .zip(dy.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in [0usize, x.len() / 2, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp = loss(m, &xp);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm = loss(m, &xm);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[idx]).abs() < tol,
                "idx {idx}: fd {fd} analytic {}",
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn conv_module_gradient() {
        let mut m = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        grad_check(&mut m, &seeded(&[2, 2, 5, 5], 1), 1e-2);
    }

    #[test]
    fn linear_module_gradient() {
        let mut m = Linear::new(6, 4, &mut rng());
        grad_check(&mut m, &seeded(&[3, 6], 2), 1e-2);
    }

    #[test]
    fn gap_module_gradient() {
        let mut m = GlobalAvgPool::new();
        grad_check(&mut m, &seeded(&[2, 3, 4, 4], 3), 1e-3);
    }

    #[test]
    fn relu_module_masks_gradient() {
        let mut m = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let _ = m.forward(&x, true);
        let dx = m.backward(&Tensor::full(&[4], 1.0));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_with_bias_gradient() {
        // Bias but no ReLU: the layer is smooth, so the generic
        // finite-difference check covers the bias-gradient path too.
        let mut m = Conv2d::with_bias_relu(2, 3, 3, 1, 1, true, false, &mut rng());
        m.visit_params(&mut |p| {
            // Perturb the zero-init bias so the check exercises it.
            if p.value.shape().len() == 1 {
                for (i, v) in p.value.data_mut().iter_mut().enumerate() {
                    *v = (i as f32 - 1.0) / 4.0;
                }
            }
        });
        grad_check(&mut m, &seeded(&[2, 2, 5, 5], 4), 1e-2);
    }

    #[test]
    fn conv_bias_gradient_sums_output_gradient() {
        let mut m = Conv2d::with_bias_relu(1, 2, 3, 1, 1, true, false, &mut rng());
        let x = seeded(&[2, 1, 4, 4], 7);
        let y = m.forward(&x, true);
        let _ = m.backward(&Tensor::full(y.shape(), 1.0));
        // db[c] = Σ dy over (n, h, w) = 2·4·4 = 32 per channel.
        let mut biases = Vec::new();
        m.visit_params(&mut |p| {
            if p.value.shape().len() == 1 {
                biases.push(p.grad.clone());
            }
        });
        assert_eq!(biases.len(), 1);
        assert!(biases[0].max_abs_diff(&Tensor::full(&[2], 32.0)) < 1e-4);
    }

    /// A fused conv+bias+ReLU layer must match the composition the zoo
    /// previously ran (conv, separate bias, Relu module) bitwise — forward
    /// output, input gradient, and weight gradient.
    #[test]
    fn fused_conv_relu_layer_matches_composition() {
        let x = seeded(&[2, 2, 6, 6], 8);
        let dy = seeded(&[2, 3, 6, 6], 9);
        let mut fused = Conv2d::with_bias_relu(2, 3, 3, 1, 1, false, true, &mut rng());
        let mut plain = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let mut act = Relu::new();

        let y_f = fused.forward(&x, true);
        let y_p = act.forward_owned(plain.forward(&x, true), true);
        assert_eq!(y_f, y_p, "fused forward must equal conv-then-ReLU");

        let dx_f = fused.backward(&dy);
        let dx_p = plain.backward(&act.backward(&dy));
        assert_eq!(dx_f, dx_p, "fused backward must equal conv-then-ReLU");
        assert_eq!(fused.weight().grad, plain.weight().grad);
    }

    /// `set_fused(false)` (the per-layer `MBS_FUSE=0` path) is bitwise
    /// identical to the fused path, gradients included.
    #[test]
    fn conv_fused_and_unfused_layers_agree_bitwise() {
        let x = seeded(&[1, 2, 5, 5], 10);
        let mut a = Conv2d::with_bias_relu(2, 4, 3, 1, 1, true, true, &mut rng());
        let mut b = a.clone();
        a.set_fused(true);
        b.set_fused(false);
        let ya = a.forward(&x, true);
        let yb = b.forward(&x, true);
        assert_eq!(ya, yb);
        let dy = seeded(ya.shape(), 11);
        assert_eq!(a.backward(&dy), b.backward(&dy));
        let mut ga = Vec::new();
        a.visit_params(&mut |p| ga.push(p.grad.clone()));
        let mut i = 0;
        b.visit_params(&mut |p| {
            assert_eq!(ga[i], p.grad, "param {i} gradient");
            i += 1;
        });
    }

    #[test]
    fn fused_linear_relu_matches_composition() {
        let x = seeded(&[3, 6], 12);
        let dy = seeded(&[3, 4], 13);
        let mut fused = Linear::with_relu(6, 4, &mut rng());
        let mut plain = Linear::new(6, 4, &mut rng());
        let mut act = Relu::new();

        let y_f = fused.forward(&x, true);
        let y_p = act.forward_owned(plain.forward(&x, true), true);
        assert_eq!(y_f, y_p);

        let dx_f = fused.backward(&dy);
        let dx_p = plain.backward(&act.backward(&dy));
        assert_eq!(dx_f, dx_p);
    }

    #[test]
    fn inference_forward_matches_training_forward_values() {
        // train=false skips the mask machinery (relu_clamp path) but must
        // produce the same activations as a training forward.
        let x = seeded(&[2, 2, 5, 5], 16);
        let mut m = Conv2d::with_bias_relu(2, 3, 3, 1, 1, true, true, &mut rng());
        let y_train = m.forward(&x, true);
        let y_eval = m.forward(&x, false);
        assert_eq!(y_train, y_eval);

        let mut l = Linear::with_relu(6, 4, &mut rng());
        let x = seeded(&[3, 6], 17);
        assert_eq!(l.forward(&x, true), l.forward(&x, false));
    }

    #[test]
    fn forward_owned_matches_forward_and_caches_for_backward() {
        let x = seeded(&[2, 2, 5, 5], 14);
        let dy = seeded(&[2, 3, 5, 5], 15);
        let mut a = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let mut b = a.clone();
        let ya = a.forward(&x, true);
        let yb = b.forward_owned(x.clone(), true);
        assert_eq!(ya, yb);
        assert_eq!(a.backward(&dy), b.backward(&dy));
    }

    #[test]
    fn conv_accumulates_gradients_across_backwards() {
        let mut m = Conv2d::new(1, 1, 3, 1, 1, &mut rng());
        let x = seeded(&[1, 1, 4, 4], 5);
        let y = m.forward(&x, true);
        let dy = Tensor::full(y.shape(), 1.0);
        let _ = m.backward(&dy);
        let g1 = m.weight().grad.clone();
        let _ = m.forward(&x, true);
        let _ = m.backward(&dy);
        let mut twice = g1.clone();
        twice.add_assign(&g1);
        assert!(m.weight().grad.max_abs_diff(&twice) < 1e-5);
    }

    #[test]
    fn zero_grad_clears_all_params() {
        let mut m = Linear::new(3, 2, &mut rng());
        let x = seeded(&[2, 3], 6);
        let y = m.forward(&x, true);
        let _ = m.backward(&Tensor::full(y.shape(), 1.0));
        m.zero_grad();
        m.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }
}
